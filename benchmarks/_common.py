"""Shared helpers for the figure-reproduction benchmarks.

Every bench delegates to a runner in :mod:`repro.experiments`, prints
the resulting table, and persists it under ``benchmarks/results/`` so
the numbers survive the pytest run.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
