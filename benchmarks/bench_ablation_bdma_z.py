"""Ablation A bench: BDMA objective versus alternation depth z.

Thin wrapper over :func:`repro.experiments.run_ablation_bdma_z`.
"""

from repro.experiments import run_ablation_bdma_z

from _common import emit


def bench_ablation_bdma_z(benchmark) -> None:
    result = benchmark.pedantic(run_ablation_bdma_z, rounds=1, iterations=1)
    emit("ablation_bdma_z", result.table())
    result.verify()
