"""Ablation D bench: demand-weighted budget pacing vs a constant budget.

Thin wrapper over :func:`repro.experiments.run_ablation_budget_pacing`.
Expected outcome: a *negative* result that validates the DPP mechanism
-- the virtual queue already paces energy spending through P2-B's
price/demand response, so static schedules with the same average change
neither the latency nor the constraint satisfaction.
"""

from repro.experiments import run_ablation_budget_pacing

from _common import emit


def bench_ablation_budget_pacing(benchmark) -> None:
    result = benchmark.pedantic(
        run_ablation_budget_pacing, rounds=1, iterations=1
    )
    emit("ablation_budget_pacing", result.table())
    result.verify()
