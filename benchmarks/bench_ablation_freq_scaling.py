"""Ablation B bench: the value of online clock-frequency scaling.

Thin wrapper over :func:`repro.experiments.run_ablation_freq_scaling`:
DPP meets the budget with latency close to the always-full-speed
policy, beating every budget-feasible fixed clock.
"""

from repro.experiments import run_ablation_freq_scaling

from _common import emit


def bench_ablation_freq_scaling(benchmark) -> None:
    result = benchmark.pedantic(
        run_ablation_freq_scaling, rounds=1, iterations=1
    )
    emit("ablation_freq_scaling", result.table())
    result.verify()
