"""Ablation C bench: CGBA versus one-pass greedy selection.

Thin wrapper over :func:`repro.experiments.run_ablation_greedy`.
"""

from repro.experiments import run_ablation_greedy

from _common import emit


def bench_ablation_greedy(benchmark) -> None:
    result = benchmark.pedantic(run_ablation_greedy, rounds=1, iterations=1)
    emit("ablation_greedy", result.table())
    result.verify()
