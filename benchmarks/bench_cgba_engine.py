"""Engine bench: reference vs fast best-response engine under CGBA(0).

Times ``solve_p2a_cgba`` end to end (game construction included) with
the per-player reference engine and the vectorized incremental engine on
the paper's default topology (K=6, M=2, N=16), from identical initial
profiles, and checks the two reach the same final potential.  Writes a
machine-readable ``BENCH_cgba_engine.json`` next to the text table so
speedups and work counters (moves, gap recomputations, candidate
evaluations) are tracked across commits, not just wall-clock.

Run directly (``python benchmarks/bench_cgba_engine.py [--quick]``) or
via pytest (``pytest benchmarks/bench_cgba_engine.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, emit  # noqa: E402

JSON_PATH = RESULTS_DIR / "BENCH_cgba_engine.json"
QUICK_JSON_PATH = RESULTS_DIR / "BENCH_cgba_engine_quick.json"

DEVICE_COUNTS = (50, 100, 200)
QUICK_DEVICE_COUNTS = (20, 50)


def _run_once(network, state, space, frequencies, initial, engine: str):
    from repro.core.cgba import solve_p2a_cgba

    started = time.perf_counter()
    result = solve_p2a_cgba(
        network,
        state,
        space,
        frequencies,
        rng=None,
        initial=initial,
        engine=engine,
    )
    elapsed = time.perf_counter() - started
    return elapsed, result


def run_engine_bench(*, quick: bool = False) -> dict:
    """Time both engines at several instance sizes; return the report."""
    import repro
    from repro.core.congestion_game import OffloadingCongestionGame
    from repro.experiments.common import paper_scenario, single_state
    from repro.network.connectivity import StrategySpace

    device_counts = QUICK_DEVICE_COUNTS if quick else DEVICE_COUNTS
    repeats = 1 if quick else 3
    rows = []
    for idx, num_devices in enumerate(device_counts):
        scenario = paper_scenario(300 + idx, num_devices)
        network, state = scenario.network, single_state(scenario)
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()

        ref_seconds, fast_seconds = [], []
        ref_stats = fast_stats = None
        ref_potential = fast_potential = float("nan")
        for repeat in range(repeats):
            bs_of, server_of = space.random_assignment(
                np.random.default_rng(1000 * num_devices + repeat)
            )
            initial = repro.Assignment(bs_of=bs_of, server_of=server_of)
            if repeat == 0:
                # Warm the flattened-candidate caches so the fast engine's
                # once-per-space setup is not billed to the first repeat.
                _run_once(network, state, space, frequencies, initial, "fast")
            t_ref, r_ref = _run_once(
                network, state, space, frequencies, initial, "reference"
            )
            t_fast, r_fast = _run_once(
                network, state, space, frequencies, initial, "fast"
            )
            ref_seconds.append(t_ref)
            fast_seconds.append(t_fast)
            ref_stats, fast_stats = r_ref.engine_stats, r_fast.engine_stats
            game = OffloadingCongestionGame(
                network, state, space, frequencies, initial=r_ref.assignment
            )
            ref_potential = game.potential()
            game = OffloadingCongestionGame(
                network, state, space, frequencies, initial=r_fast.assignment
            )
            fast_potential = game.potential()
            if not np.isclose(ref_potential, fast_potential, rtol=1e-9):
                raise AssertionError(
                    f"engines disagree at I={num_devices}: "
                    f"{ref_potential} vs {fast_potential}"
                )
        rows.append(
            {
                "num_devices": num_devices,
                "reference_seconds": min(ref_seconds),
                "fast_seconds": min(fast_seconds),
                "speedup": min(ref_seconds) / min(fast_seconds),
                "final_potential_reference": ref_potential,
                "final_potential_fast": fast_potential,
                "reference_stats": ref_stats.to_dict() if ref_stats else None,
                "fast_stats": fast_stats.to_dict() if fast_stats else None,
            }
        )
    return {
        "bench": "cgba_engine",
        "topology": {"num_base_stations": 6, "num_clusters": 2, "num_servers": 16},
        "quick": quick,
        "repeats": repeats,
        "rows": rows,
    }


def _table(report: dict) -> str:
    from repro.analysis.tables import format_table

    rows = [
        [
            r["num_devices"],
            r["reference_seconds"],
            r["fast_seconds"],
            r["speedup"],
            r["fast_stats"]["moves"] if r["fast_stats"] else "-",
            r["fast_stats"]["gap_recomputations"] if r["fast_stats"] else "-",
            r["fast_stats"]["candidate_evaluations"] if r["fast_stats"] else "-",
        ]
        for r in report["rows"]
    ]
    return format_table(
        [
            "I",
            "reference (s)",
            "fast (s)",
            "speedup",
            "moves",
            "gap recomps",
            "cand evals",
        ],
        rows,
        title="CGBA best-response engine: reference vs vectorized incremental",
    )


def _verify(report: dict) -> None:
    for row in report["rows"]:
        assert row["speedup"] > 1.0, (
            f"fast engine slower than reference at I={row['num_devices']}"
        )
    if not report["quick"]:
        at_100 = [r for r in report["rows"] if r["num_devices"] == 100]
        assert at_100 and at_100[0]["speedup"] >= 3.0, (
            "expected >= 3x speedup for CGBA(0) at I=100"
        )


def _emit(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    # Quick runs (CI smoke) must not clobber the committed full results.
    path = QUICK_JSON_PATH if report["quick"] else JSON_PATH
    path.write_text(json.dumps(report, indent=2) + "\n")
    emit("cgba_engine_quick" if report["quick"] else "cgba_engine", _table(report))


def bench_cgba_engine(benchmark) -> None:
    report = benchmark.pedantic(run_engine_bench, rounds=1, iterations=1)
    _emit(report)
    _verify(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller instances, single repeat (CI smoke run)",
    )
    args = parser.parse_args(argv)
    report = run_engine_bench(quick=args.quick)
    _emit(report)
    _verify(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
