"""Fig. 2 bench: non-iid price and workload traces.

Thin wrapper over :func:`repro.experiments.run_fig2`; see that module
for the experiment's description.
"""

from repro.experiments import run_fig2

from _common import emit


def bench_fig2_traces(benchmark) -> None:
    result = benchmark(run_fig2)
    emit("fig2_traces", result.table())
    result.verify()
