"""Fig. 3 bench: the energy-consumption fit.

Thin wrapper over :func:`repro.experiments.run_fig3`.
"""

from repro.experiments import run_fig3

from _common import emit


def bench_fig3_energy_fit(benchmark) -> None:
    result = benchmark(run_fig3)
    emit("fig3_energy_fit", result.table())
    result.verify()
