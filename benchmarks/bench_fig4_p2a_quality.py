"""Fig. 4 bench: P2-A objective quality with the paper's parameters.

Thin wrapper over :func:`repro.experiments.run_fig4`: CGBA(0) vs MCBA,
ROPT, the certified Frank-Wolfe lower bound at I in {80..120}, and exact
branch-and-bound optima on a reduced topology.
"""

from repro.experiments import run_fig4

from _common import emit


def bench_fig4_p2a_quality(benchmark) -> None:
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    emit("fig4_p2a_quality", result.table())
    result.verify()
