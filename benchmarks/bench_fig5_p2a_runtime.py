"""Fig. 5 bench: P2-A decision times with the paper's parameters.

Thin wrapper over :func:`repro.experiments.run_fig5`: ROPT is flat and
near-instant, CGBA/MCBA grow with I, and exact branch-and-bound is
orders of magnitude slower where it certifies optimality.
"""

from repro.experiments import run_fig5

from _common import emit


def bench_fig5_p2a_runtime(benchmark) -> None:
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    emit("fig5_p2a_runtime", result.table())
    result.verify()
