"""Fig. 6 bench: CGBA(lambda) sweep at I = 100.

Thin wrapper over :func:`repro.experiments.run_fig6`: as lambda grows
the objective degrades mildly while the iteration count falls, matching
Theorem 2.
"""

from repro.experiments import run_fig6

from _common import emit


def bench_fig6_lambda_sweep(benchmark) -> None:
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    emit("fig6_lambda_sweep", result.table())
    result.verify()
