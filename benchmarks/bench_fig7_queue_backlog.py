"""Fig. 7 bench: queue backlog trajectories for V in {50, 100}.

Thin wrapper over :func:`repro.experiments.run_fig7`: the backlog ramps
up, converges, then oscillates with the electricity price.
"""

from repro.experiments import run_fig7

from _common import emit


def bench_fig7_queue_backlog(benchmark) -> None:
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    emit("fig7_queue_backlog", result.table())
    result.verify()
