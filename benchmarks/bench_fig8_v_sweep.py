"""Fig. 8 bench: converged backlog and latency versus V.

Thin wrapper over :func:`repro.experiments.run_fig8`, which reports two
protocols: warm-started runs (measuring the converged backlog, linear in
V) and the paper's cold-start protocol (whose latency decreases in V).
"""

from repro.experiments import run_fig8

from _common import emit


def bench_fig8_v_sweep(benchmark) -> None:
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    emit("fig8_v_sweep", result.table())
    result.verify()
