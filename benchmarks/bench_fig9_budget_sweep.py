"""Fig. 9 bench: latency versus energy-cost budget for the DPP variants.

Thin wrapper over :func:`repro.experiments.run_fig9`: BDMA-based DPP
beats MCBA- and ROPT-based DPP at every budget, and the realised average
cost stays under the budget line.
"""

from repro.experiments import run_fig9

from _common import emit


def bench_fig9_budget_sweep(benchmark) -> None:
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    emit("fig9_budget_sweep", result.table())
    result.verify()
