"""Robustness bench: BDMA-DPP under composed link + price-feed chaos.

Thin wrapper over :func:`repro.experiments.run_chaos_sweep` -- the
second robustness axis beyond the paper: fronthaul links degrade, the
price feed freezes (the controller acts on stale prices), and base
stations drop, at increasing severity, with the degraded-mode
:class:`~repro.core.resilience.ResiliencePolicy` active.  Every slot
must still produce a feasible decision.
"""

from repro.experiments import run_chaos_sweep

from _common import emit


def bench_robustness_chaos(benchmark) -> None:
    result = benchmark.pedantic(run_chaos_sweep, rounds=1, iterations=1)
    emit("robustness_chaos", result.table())
    result.verify()
