"""Robustness bench: BDMA-DPP under increasing server-outage intensity.

Thin wrapper over :func:`repro.experiments.run_fault_sweep` -- a stress
test beyond the paper's always-up assumption: latency should degrade
gracefully with downtime while the budget is still respected (offline
servers draw no power).
"""

from repro.experiments import run_fault_sweep

from _common import emit


def bench_robustness_faults(benchmark) -> None:
    result = benchmark.pedantic(run_fault_sweep, rounds=1, iterations=1)
    emit("robustness_faults", result.table())
    result.verify()
