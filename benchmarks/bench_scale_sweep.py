"""Multi-cell scale-out bench: sharded slots/s out to 100k+ devices.

The monolithic slot solve costs superlinearly in the device count, so
one controller over a metro-scale topology is hopeless; the sharding
layer (``repro.sharding``) carves the network into cells, runs one DPP
controller per cell, and coordinates the global budget.  This bench is
the evidence and the gate:

* **identity** -- the 1-cell sharded run is *bit-identical* (pinned
  sha256 fingerprint) to ``repro.api.run`` without sharding: the
  sharded engine is the same arithmetic, not an approximation.
* **sweep** -- a fixed 2400-device metro topology partitioned into
  1/2/4/8 cells.  Sharding wins twice per cell: fewer devices in the
  quadratic-cost game *and* fewer reachable strategies.  The gate
  requires >= 0.8x linear slots/s scaling from 1 to 8 cells (on one
  core -- the win is algorithmic, processes only add to it).
* **giant** -- a 102,400-device run across 128 cells completes end to
  end, demonstrating a scale two orders of magnitude past the paper's
  I=40 setting.

Writes ``benchmarks/results/BENCH_scale_sweep.json``.  ``--smoke`` is
the CI job: a tiny 2-cell preset asserting the 1-cell identity against
its own pinned fingerprint plus exact budget conservation; it writes
the ``_smoke`` JSON and never touches the committed numbers.

Run directly (``python benchmarks/bench_scale_sweep.py [--smoke]``) or
via pytest (``pytest benchmarks/bench_scale_sweep.py``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, emit  # noqa: E402

JSON_PATH = RESULTS_DIR / "BENCH_scale_sweep.json"
SMOKE_JSON_PATH = RESULTS_DIR / "BENCH_scale_sweep_smoke.json"

#: The smoke preset's trajectory stream (sha256 over latency / cost /
#: theta / backlog / price), produced identically by the unsharded
#: facade and the 1-cell sharded engine.  Pinned when the sharding
#: layer landed.
SMOKE_FINGERPRINT = (
    "93b7ee91b2dd78a940aa022c6e81c81b3881200026ce8eb719e59b826bad8809"
)

#: The sweep topology's 1-cell trajectory stream, same dual-producer
#: pin as SMOKE_FINGERPRINT but at metro scale (I=2400, K=32).
SWEEP_FINGERPRINT = (
    "d35f6f7ceb87ffcf2a4a680e4a808e20b561cba22cd92fcb702b71a3f26b0119"
)

#: All-macro, all-wireless topologies: every base station covers every
#: device and fronthauls to every cluster, so k-means cells never
#: strand a device and the partition is free to follow geometry.
_METRO = {
    "num_macro_stations": None,  # filled per config with num_base_stations
    "wireless_fronthaul_fraction": 1.0,
}

#: The scaling sweep: one metro topology, repartitioned.
SWEEP = {
    "seed": 7,
    "devices": 2400,
    "base_stations": 32,
    "clusters": 8,
    "servers_per_cluster": 2,
    "horizon": 4,
    "epoch": 2,
    "cells": (1, 2, 4, 8),
}

#: The completion run: >= 100k devices end to end.
GIANT = {
    "seed": 11,
    "devices": 102_400,
    "base_stations": 128,
    "clusters": 128,
    "servers_per_cluster": 1,
    "horizon": 2,
    "epoch": 2,
    "cells": 128,
    "partition_restarts": 2,
}

#: The CI smoke preset: small enough for every runner.
SMOKE = {
    "seed": 5,
    "devices": 24,
    "base_stations": 4,
    "clusters": 2,
    "servers_per_cluster": 2,
    "horizon": 8,
    "epoch": 4,
}


def _scenario(config: dict):
    import repro

    return repro.make_paper_scenario(
        config["seed"],
        config=repro.ScenarioConfig(num_devices=config["devices"]),
        num_base_stations=config["base_stations"],
        num_macro_stations=config["base_stations"],
        wireless_fronthaul_fraction=1.0,
        num_clusters=config["clusters"],
        servers_per_cluster=config["servers_per_cluster"],
    )


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    for arr in (
        result.latency,
        result.cost,
        result.theta,
        result.backlog,
        result.price,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return digest.hexdigest()


def _identity_check(config: dict, pinned: str) -> dict:
    """Unsharded facade vs 1-cell sharded engine: same bit stream."""
    import repro

    unsharded = repro.api.run(
        scenario=_scenario(config), horizon=config["horizon"]
    )
    sharded = repro.api.run(
        scenario=_scenario(config), horizon=config["horizon"], cells=1
    )
    return {
        "unsharded_fingerprint": _fingerprint(unsharded),
        "sharded_fingerprint": _fingerprint(sharded),
        "identical": _fingerprint(unsharded) == _fingerprint(sharded),
        "pinned": pinned,
    }


def _sharded_row(scenario, config: dict, num_cells: int) -> dict:
    from repro import sharding

    plan = sharding.partition_cells(
        scenario.network,
        num_cells,
        rng=scenario.seeds.rng("cell-partition"),
        restarts=config.get("partition_restarts", 8),
    )
    started = time.perf_counter()
    result = sharding.run_sharded(
        scenario,
        horizon=config["horizon"],
        cells=plan,
        epoch=config["epoch"],
    )
    seconds = time.perf_counter() - started
    return {
        "cells": plan.num_cells,
        "device_counts": plan.device_counts().tolist(),
        "seconds": seconds,
        "slots_per_sec": config["horizon"] / seconds,
        "fingerprint": _fingerprint(result.merged),
        "mean_cost": result.merged.time_average_cost(),
        "budget": result.merged.budget,
        "budget_rows_sum": (
            result.budgets.sum(axis=1).tolist()
            if result.budgets is not None
            else []
        ),
    }


def run_scale_sweep() -> dict:
    """The full bench: identity pin, 1->8 cell sweep, 100k completion."""
    identity = _identity_check(SWEEP, SWEEP_FINGERPRINT)

    rows = []
    for num_cells in SWEEP["cells"]:
        # A fresh scenario per row: partitioning and execution must not
        # leak generator state across configurations.
        rows.append(_sharded_row(_scenario(SWEEP), SWEEP, num_cells))
    by_cells = {row["cells"]: row for row in rows}
    low, high = min(by_cells), max(by_cells)
    linear_fraction = by_cells[high]["slots_per_sec"] / (
        (high / low) * by_cells[low]["slots_per_sec"]
    )

    giant_scenario = _scenario(GIANT)
    giant = _sharded_row(giant_scenario, GIANT, GIANT["cells"])
    giant["devices"] = giant_scenario.network.num_devices

    return {
        "bench": "scale_sweep",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "identity": identity,
        "sweep": {
            "devices": SWEEP["devices"],
            "base_stations": SWEEP["base_stations"],
            "horizon": SWEEP["horizon"],
            "rows": rows,
            "linear_fraction_1_to_8": linear_fraction,
        },
        "giant": giant,
    }


def run_smoke() -> dict:
    """CI smoke: identity pin + conservation on a tiny 2-cell preset."""
    from repro import sharding

    identity = _identity_check(SMOKE, SMOKE_FINGERPRINT)
    scenario = _scenario(SMOKE)
    plan = sharding.partition_cells(
        scenario.network, 2, rng=scenario.seeds.rng("cell-partition")
    )
    result = sharding.run_sharded(
        scenario, horizon=SMOKE["horizon"], cells=plan, epoch=SMOKE["epoch"]
    )
    conserved = bool(
        np.allclose(
            result.budgets.sum(axis=1), scenario.budget, rtol=0, atol=1e-12
        )
    )
    checks = {
        "one_cell_identical_to_unsharded": identity["identical"],
        "one_cell_fingerprint_pinned": (
            identity["sharded_fingerprint"] == identity["pinned"]
        ),
        "two_cell_horizon_complete": result.merged.horizon == SMOKE["horizon"],
        "budget_conserved_every_epoch": conserved,
        "every_device_in_a_cell": (
            int(plan.device_counts().sum()) == SMOKE["devices"]
        ),
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        raise AssertionError(f"scale smoke failed: {failed}; {identity}")
    return {
        "bench": "scale_sweep_smoke",
        "checks": checks,
        "identity": identity,
        "cells": plan.num_cells,
        "device_counts": plan.device_counts().tolist(),
    }


def _table(report: dict) -> str:
    from repro.analysis.tables import format_table

    rows = [
        [
            r["cells"],
            min(r["device_counts"]),
            max(r["device_counts"]),
            r["seconds"],
            r["slots_per_sec"],
        ]
        for r in report["sweep"]["rows"]
    ]
    giant = report["giant"]
    sweep_table = format_table(
        ["cells", "min I/cell", "max I/cell", "seconds", "slots/s"],
        rows,
        title=(
            f"Sharded scale sweep (I={report['sweep']['devices']}, "
            f"K={report['sweep']['base_stations']}, one core): "
            f"{report['sweep']['linear_fraction_1_to_8']:.2f}x of linear "
            "1->8 cells"
        ),
    )
    giant_line = (
        f"giant run: {giant['devices']} devices across {giant['cells']} "
        f"cells, {giant['seconds']:.1f}s for {GIANT['horizon']} slots "
        f"({giant['slots_per_sec']:.2f} slots/s)"
    )
    return sweep_table + "\n\n" + giant_line


def _verify(report: dict) -> None:
    identity = report["identity"]
    assert identity["identical"], (
        "1-cell sharded trajectories diverged from the unsharded facade: "
        f"{identity}"
    )
    assert identity["sharded_fingerprint"] == identity["pinned"], (
        "sweep trajectories drifted from the pinned fingerprint: "
        f"{identity['sharded_fingerprint']} != {identity['pinned']}"
    )
    fraction = report["sweep"]["linear_fraction_1_to_8"]
    assert fraction >= 0.8, (
        f"1->8 cell scaling fell below the 0.8x-linear gate ({fraction:.2f}x)"
    )
    assert report["giant"]["devices"] >= 100_000, (
        f"giant run covered only {report['giant']['devices']} devices"
    )
    for row in report["sweep"]["rows"] + [report["giant"]]:
        sums = np.asarray(row["budget_rows_sum"])
        assert np.allclose(sums, row["budget"], rtol=0, atol=1e-9), (
            f"budget not conserved at {row['cells']} cells: {sums.tolist()}"
        )


def _emit(report: dict, *, smoke: bool) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = SMOKE_JSON_PATH if smoke else JSON_PATH
    path.write_text(json.dumps(report, indent=2) + "\n")
    if smoke:
        print(json.dumps(report["checks"], indent=2))
    else:
        emit("scale_sweep", _table(report))


def bench_scale_sweep(benchmark) -> None:
    report = benchmark.pedantic(run_scale_sweep, rounds=1, iterations=1)
    _emit(report, smoke=False)
    _verify(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: tiny 2-cell preset, identity + conservation "
        "asserts only (does not touch the committed JSON)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        _emit(run_smoke(), smoke=True)
        return 0
    report = run_scale_sweep()
    _emit(report, smoke=False)
    _verify(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
