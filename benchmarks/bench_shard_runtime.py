"""Resident-worker runtime bench: legacy pool vs resident shards.

PR 7's pooled path ships one stateless job per (cell, epoch): every
epoch re-pickles the full controller carry, rebuilds the controller and
strategy space in the worker, and pickles the carry back.  At short
epochs that serialization tax dwarfs the solve.  The resident runtime
(``repro.sim.shard_runtime``) pins each cell's carry in a long-lived
worker -- only slot ranges, budget shares, and compact metric deltas
cross the process boundary, with compiled slot states shipped through
double-buffered shared memory while the parent precompiles epoch
``e + 1`` during epoch ``e``.

This bench is the evidence and the gate:

* **sweep** -- a 1024-device metro topology in 8 cells at the paper's
  natural ``epoch=1`` cadence, full observability on (telemetry
  registry + health monitors), sequential vs legacy pool vs resident.
  The gate requires resident >= 2x the legacy pool's throughput with
  all three fingerprints bit-identical.
* **giant** -- the 102,400-device completion run (128 cells): resident
  must finish >= 2x faster than the legacy pool, same fingerprint.

Writes ``benchmarks/results/BENCH_shard_runtime.json``.  ``--smoke`` is
the CI job: a small 4-cell preset asserting fingerprint equality across
all three execution paths plus a conservative >= 1.25x throughput floor
(CI runners share cores; the committed numbers carry the real margin).
It writes the ``_smoke`` JSON and never touches the committed numbers.

Run directly (``python benchmarks/bench_shard_runtime.py [--smoke]``)
or via pytest (``pytest benchmarks/bench_shard_runtime.py``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, emit  # noqa: E402

JSON_PATH = RESULTS_DIR / "BENCH_shard_runtime.json"
SMOKE_JSON_PATH = RESULTS_DIR / "BENCH_shard_runtime_smoke.json"

#: The >= 2x gate preset: metro topology at the paper's epoch=1
#: cadence, where per-epoch serialization cost is fully exposed.
SWEEP = {
    "seed": 7,
    "devices": 1024,
    "base_stations": 8,
    "clusters": 8,
    "servers_per_cluster": 2,
    "horizon": 16,
    "epoch": 1,
    "cells": 8,
    "processes": 2,
    "observability": True,
}

#: The completion gate: >= 100k devices, both pooled runtimes.
GIANT = {
    "seed": 11,
    "devices": 102_400,
    "base_stations": 128,
    "clusters": 128,
    "servers_per_cluster": 1,
    "horizon": 4,
    "epoch": 1,
    "cells": 128,
    "processes": 2,
    "partition_restarts": 2,
    "observability": False,
}

#: The CI smoke preset: small enough for every runner, but with the
#: cell count high enough that the legacy pool's per-(cell, epoch)
#: serialization tax dominates (at very small topologies the resident
#: workers' one-time spawn cost would drown the signal).
SMOKE = {
    "seed": 5,
    "devices": 512,
    "base_stations": 8,
    "clusters": 4,
    "servers_per_cluster": 2,
    "horizon": 16,
    "epoch": 1,
    "cells": 8,
    "processes": 2,
    "observability": True,
}

#: Throughput floors (resident over legacy).  The smoke floor is
#: deliberately loose: CI runners share cores and the smoke topology is
#: small, so the serialization tax -- while still dominant -- carries
#: more variance than the committed sweep numbers.
SWEEP_MIN_SPEEDUP = 2.0
GIANT_MIN_SPEEDUP = 2.0
SMOKE_MIN_SPEEDUP = 1.25


def _scenario(config: dict):
    import repro

    return repro.make_paper_scenario(
        config["seed"],
        config=repro.ScenarioConfig(num_devices=config["devices"]),
        num_base_stations=config["base_stations"],
        num_macro_stations=config["base_stations"],
        wireless_fronthaul_fraction=1.0,
        num_clusters=config["clusters"],
        servers_per_cluster=config["servers_per_cluster"],
    )


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    for arr in (
        result.latency,
        result.cost,
        result.theta,
        result.backlog,
        result.price,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return digest.hexdigest()


def _plan(scenario, config: dict):
    from repro import sharding

    return sharding.partition_cells(
        scenario.network,
        config["cells"],
        rng=scenario.seeds.rng("cell-partition"),
        restarts=config.get("partition_restarts", 8),
    )


def _row(config: dict, plan, mode: str) -> dict:
    """One timed run.  ``mode``: sequential / legacy / resident."""
    from repro import sharding

    scenario = _scenario(config)
    registry = None
    if config["observability"]:
        from repro.obs.telemetry import MetricsRegistry

        registry = MetricsRegistry()
    kwargs: dict = {}
    if mode != "sequential":
        kwargs["processes"] = config["processes"]
        kwargs["runtime"] = mode
    started = time.perf_counter()
    result = sharding.run_sharded(
        scenario,
        horizon=config["horizon"],
        cells=plan,
        epoch=config["epoch"],
        registry=registry,
        monitors=config["observability"],
        **kwargs,
    )
    seconds = time.perf_counter() - started
    row = {
        "mode": mode,
        "seconds": seconds,
        "slots_per_sec": config["horizon"] / seconds,
        "fingerprint": _fingerprint(result.merged),
        "mean_cost": result.merged.time_average_cost(),
        "budget": result.merged.budget,
        "budget_rows_sum": result.budgets.sum(axis=1).tolist(),
    }
    if registry is not None:
        row["telemetry_families"] = len(
            [line for line in registry.render_openmetrics().splitlines()
             if line.startswith("# TYPE")]
        )
    if result.merged.health is not None:
        row["health_statuses"] = len(result.merged.health.statuses)
    return row


def _preset_report(config: dict, modes: tuple[str, ...]) -> dict:
    scenario = _scenario(config)
    plan = _plan(scenario, config)
    rows = [_row(config, plan, mode) for mode in modes]
    by_mode = {row["mode"]: row for row in rows}
    return {
        "devices": config["devices"],
        "cells": plan.num_cells,
        "horizon": config["horizon"],
        "epoch": config["epoch"],
        "processes": config["processes"],
        "observability": config["observability"],
        "rows": rows,
        "fingerprints_identical": len({r["fingerprint"] for r in rows}) == 1,
        "resident_speedup_vs_legacy": (
            by_mode["legacy"]["seconds"] / by_mode["resident"]["seconds"]
            if "legacy" in by_mode and "resident" in by_mode
            else None
        ),
    }


def run_shard_runtime() -> dict:
    """The full bench: observability-on sweep plus the 102k completion."""
    sweep = _preset_report(SWEEP, ("sequential", "legacy", "resident"))
    giant = _preset_report(GIANT, ("legacy", "resident"))
    return {
        "bench": "shard_runtime",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "sweep": sweep,
        "giant": giant,
    }


def run_smoke() -> dict:
    """CI smoke: three-way fingerprint equality + a loose ratio floor.

    Each pooled mode is timed twice and judged on its faster run --
    best-of-two damps the scheduler noise of shared CI cores without
    loosening the floor itself.
    """
    scenario = _scenario(SMOKE)
    plan = _plan(scenario, SMOKE)
    report = _preset_report(SMOKE, ("sequential", "legacy", "resident"))
    retry = {mode: _row(SMOKE, plan, mode) for mode in ("legacy", "resident")}
    best = {}
    for row in report["rows"]:
        if row["mode"] in retry:
            best[row["mode"]] = min(
                row["seconds"], retry[row["mode"]]["seconds"]
            )
            row["seconds_best_of_2"] = best[row["mode"]]
    report["resident_speedup_vs_legacy"] = (
        best["legacy"] / best["resident"]
    )
    speedup = report["resident_speedup_vs_legacy"]
    checks = {
        "fingerprints_identical": report["fingerprints_identical"],
        "budget_conserved": all(
            np.allclose(r["budget_rows_sum"], r["budget"], rtol=0, atol=1e-9)
            for r in report["rows"]
        ),
        "resident_at_least_1_25x_legacy": speedup >= SMOKE_MIN_SPEEDUP,
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        raise AssertionError(
            f"shard runtime smoke failed: {failed}; "
            f"speedup={speedup:.2f}x; rows={report['rows']}"
        )
    return {"bench": "shard_runtime_smoke", "checks": checks, **report}


def _table(report: dict) -> str:
    from repro.analysis.tables import format_table

    lines = []
    for title, preset in (("sweep", report["sweep"]), ("giant", report["giant"])):
        rows = [
            [r["mode"], r["seconds"], r["slots_per_sec"], r["fingerprint"][:12]]
            for r in preset["rows"]
        ]
        lines.append(
            format_table(
                ["mode", "seconds", "slots/s", "fingerprint"],
                rows,
                title=(
                    f"{title}: I={preset['devices']}, "
                    f"cells={preset['cells']}, epoch={preset['epoch']}, "
                    f"h={preset['horizon']} -- resident "
                    f"{preset['resident_speedup_vs_legacy']:.2f}x legacy"
                ),
            )
        )
    return "\n\n".join(lines)


def _verify(report: dict) -> None:
    for name, preset, floor in (
        ("sweep", report["sweep"], SWEEP_MIN_SPEEDUP),
        ("giant", report["giant"], GIANT_MIN_SPEEDUP),
    ):
        assert preset["fingerprints_identical"], (
            f"{name}: execution paths diverged: "
            f"{[(r['mode'], r['fingerprint']) for r in preset['rows']]}"
        )
        speedup = preset["resident_speedup_vs_legacy"]
        assert speedup >= floor, (
            f"{name}: resident runtime fell below the {floor}x gate "
            f"({speedup:.2f}x over legacy)"
        )
        for row in preset["rows"]:
            sums = np.asarray(row["budget_rows_sum"])
            assert np.allclose(sums, row["budget"], rtol=0, atol=1e-9), (
                f"{name}/{row['mode']}: budget not conserved"
            )


def _emit(report: dict, *, smoke: bool) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = SMOKE_JSON_PATH if smoke else JSON_PATH
    path.write_text(json.dumps(report, indent=2) + "\n")
    if smoke:
        print(json.dumps(report["checks"], indent=2))
    else:
        emit("shard_runtime", _table(report))


def bench_shard_runtime(benchmark) -> None:
    report = benchmark.pedantic(run_shard_runtime, rounds=1, iterations=1)
    _emit(report, smoke=False)
    _verify(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: small 4-cell preset, fingerprint equality across "
        "sequential/legacy/resident plus a loose throughput floor "
        "(does not touch the committed JSON)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        _emit(run_smoke(), smoke=True)
        return 0
    report = run_shard_runtime()
    _emit(report, smoke=False)
    _verify(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
