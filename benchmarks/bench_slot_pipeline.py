"""End-to-end slot-pipeline bench: compiled states + warm starts + P2-B.

Times ``repro.api.run`` (the whole DPP slot pipeline: compiled state
stream, CGBA with cross-slot warm starts and the BDMA fixed-point
short-circuit, batched/scalar P2-B) at three deployment sizes and
records slots-per-second plus the engine counters and per-phase profile
of a traced run.  The medium preset is the paper-scale configuration
(I=40, 240 slots, seed 7); its result fingerprint is pinned so the
bench doubles as a correctness gate -- a speedup that changes the
trajectory bit stream fails here before it reaches the figures.

Writes ``benchmarks/results/BENCH_slot_pipeline.json`` next to the text
table.  The committed JSON also carries the pre-PR baseline measured on
the same machine and session (an identical timing loop against a
worktree at the parent commit), so the recorded speedup compares like
with like; re-measure the baseline before trusting the ratio on new
hardware.

Run directly (``python benchmarks/bench_slot_pipeline.py [--smoke]``)
or via pytest (``pytest benchmarks/bench_slot_pipeline.py``).  The
``--smoke`` mode is the CI job: a tiny horizon, no timing assertions,
just proof that every fast path actually engaged (compiled states
bit-equal to per-slot states, warm-start hits, P2-B solves) on the
runner.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, emit  # noqa: E402

JSON_PATH = RESULTS_DIR / "BENCH_slot_pipeline.json"
SMOKE_JSON_PATH = RESULTS_DIR / "BENCH_slot_pipeline_smoke.json"

#: Paper-scale medium preset must reproduce this exact trajectory
#: stream (sha256 over latency/cost/theta/backlog/price); pinned when
#: the compiled pipeline landed, bit-identical to the per-slot path.
MEDIUM_FINGERPRINT = (
    "21d380f5230daf38751e1c04951c28466fde49023e1f3986efd1c8e59a801e04"
)

#: Pre-PR throughput of the medium preset, best of 5, measured in the
#: same session on the same machine from a worktree at the parent
#: commit (ab8a27d) with this timing loop.  Machine-specific: re-measure
#: when comparing on different hardware.
BASELINE = {
    "commit": "ab8a27d",
    "preset": "medium",
    "slots_per_sec": 89.41,
    "note": "same-session, same-machine, best of 5",
}

PRESETS = {
    "small": {"seed": 11, "horizon": 120, "devices": 30},
    # Paper defaults: I=40, K=6, N=16.
    "medium": {"seed": 7, "horizon": 240, "devices": None},
    "large": {"seed": 13, "horizon": 60, "devices": 120},
}


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    for arr in (
        result.latency,
        result.cost,
        result.theta,
        result.backlog,
        result.price,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return digest.hexdigest()


def _run_preset(name: str, *, repeats: int) -> dict:
    from repro.api import run
    from repro.obs.probe import Probe

    preset = PRESETS[name]
    kwargs: dict = {"seed": preset["seed"], "horizon": preset["horizon"]}
    if preset["devices"] is not None:
        import repro

        kwargs["scenario_config"] = repro.ScenarioConfig(
            num_devices=preset["devices"]
        )

    seconds = []
    fingerprint = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run(controller="dpp", **kwargs)
        seconds.append(time.perf_counter() - started)
        fp = _fingerprint(result)
        if fingerprint is None:
            fingerprint = fp
        elif fp != fingerprint:
            raise AssertionError(f"{name}: nondeterministic trajectories")

    # One traced (untimed) run for counters and the phase profile.
    probe = Probe()
    run(controller="dpp", tracer=probe, **kwargs)
    counters = {k: v for k, v in sorted(probe.phases.counters.items())}

    best = min(seconds)
    return {
        "preset": name,
        "seed": preset["seed"],
        "horizon": preset["horizon"],
        "devices": preset["devices"] or 40,
        "repeats": repeats,
        "best_seconds": best,
        "slots_per_sec": preset["horizon"] / best,
        "fingerprint": fingerprint,
        "counters": counters,
        "phase_table": probe.phases.table(),
    }


def run_pipeline_bench(*, repeats: int = 3) -> dict:
    rows = [_run_preset(name, repeats=repeats) for name in PRESETS]
    medium = next(r for r in rows if r["preset"] == "medium")
    return {
        "bench": "slot_pipeline",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "baseline": BASELINE,
        "speedup_vs_baseline": medium["slots_per_sec"]
        / BASELINE["slots_per_sec"],
        "rows": rows,
    }


def run_smoke() -> dict:
    """CI smoke: prove the fast paths engage; assert no timings."""
    import repro
    from repro.api import run
    from repro.obs.probe import Probe

    def scenario():
        return repro.make_paper_scenario(
            seed=5, config=repro.ScenarioConfig(num_devices=12)
        )

    probe = Probe()
    compiled = run(
        scenario=scenario(), controller="dpp", horizon=12, tracer=probe
    )
    per_slot = run(
        scenario=scenario(), controller="dpp", horizon=12,
        compiled_states=False,
    )
    if _fingerprint(compiled) != _fingerprint(per_slot):
        raise AssertionError("compiled states diverged from per-slot states")

    counters = probe.phases.counters
    checks = {
        "warm_start_hits": counters.get("engine.warm_start_hits", 0) > 0,
        "p2b_solves": (
            counters.get("p2b.scalar_solves", 0)
            + counters.get("p2b.batch_iters", 0)
        )
        > 0,
        "bdma_rounds": counters.get("bdma.rounds", 0) > 0,
        "compiled_bit_identical": True,
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        raise AssertionError(
            f"fast paths did not engage: {failed}; counters={dict(counters)}"
        )
    return {
        "bench": "slot_pipeline_smoke",
        "checks": checks,
        "counters": {k: v for k, v in sorted(counters.items())},
    }


def _table(report: dict) -> str:
    from repro.analysis.tables import format_table

    rows = [
        [
            r["preset"],
            r["devices"],
            r["horizon"],
            r["best_seconds"],
            r["slots_per_sec"],
            r["counters"].get("engine.warm_start_hits", 0),
            r["counters"].get("p2b.scalar_solves", 0)
            + r["counters"].get("p2b.batch_iters", 0),
        ]
        for r in report["rows"]
    ]
    table = format_table(
        ["preset", "I", "slots", "best (s)", "slots/s", "warm hits", "p2b work"],
        rows,
        title=(
            "Slot pipeline end to end (compiled states + warm starts): "
            f"medium {report['speedup_vs_baseline']:.2f}x vs pre-refactor "
            f"baseline {report['baseline']['slots_per_sec']:.1f} slots/s"
        ),
    )
    medium = next(r for r in report["rows"] if r["preset"] == "medium")
    return table + "\n\n" + medium["phase_table"]


def _verify(report: dict) -> None:
    medium = next(r for r in report["rows"] if r["preset"] == "medium")
    assert medium["fingerprint"] == MEDIUM_FINGERPRINT, (
        "medium preset trajectories drifted: "
        f"{medium['fingerprint']} != {MEDIUM_FINGERPRINT}"
    )
    assert report["speedup_vs_baseline"] >= 3.0, (
        "slot pipeline speedup fell below the 3x gate "
        f"({report['speedup_vs_baseline']:.2f}x); if this is new hardware, "
        "re-measure BASELINE at the parent commit first"
    )


def _emit(report: dict, *, smoke: bool) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = SMOKE_JSON_PATH if smoke else JSON_PATH
    path.write_text(json.dumps(report, indent=2) + "\n")
    if smoke:
        print(json.dumps(report["checks"], indent=2))
    else:
        emit("slot_pipeline", _table(report))


def bench_slot_pipeline(benchmark) -> None:
    report = benchmark.pedantic(run_pipeline_bench, rounds=1, iterations=1)
    _emit(report, smoke=False)
    _verify(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: tiny run asserting the fast paths engage "
        "(no timing assertions, does not touch the committed JSON)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per preset"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        _emit(run_smoke(), smoke=True)
        return 0
    report = run_pipeline_bench(repeats=args.repeats)
    _emit(report, smoke=False)
    _verify(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
