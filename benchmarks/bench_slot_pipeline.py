"""End-to-end slot-pipeline bench: compiled states + warm starts + P2-B.

Times ``repro.api.run`` (the whole DPP slot pipeline: compiled state
stream, CGBA with cross-slot warm starts and the BDMA fixed-point
short-circuit, batched/scalar P2-B) at three deployment sizes and
records slots-per-second plus the engine counters and per-phase profile
of a traced run.  The medium preset is the paper-scale configuration
(I=40, 240 slots, seed 7); its result fingerprint is pinned so the
bench doubles as a correctness gate -- a speedup that changes the
trajectory bit stream fails here before it reaches the figures.

Writes ``benchmarks/results/BENCH_slot_pipeline.json`` next to the text
table.  The committed JSON also carries the pre-PR baseline measured on
the same machine and session (an identical timing loop against a
worktree at the parent commit), so the recorded speedup compares like
with like; re-measure the baseline before trusting the ratio on new
hardware.

Run directly (``python benchmarks/bench_slot_pipeline.py [--smoke]``)
or via pytest (``pytest benchmarks/bench_slot_pipeline.py``).  The
``--smoke`` mode is the CI job: a tiny horizon, no timing assertions,
just proof that every fast path actually engaged (compiled states
bit-equal to per-slot states, warm-start hits, P2-B solves) on the
runner.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, emit  # noqa: E402

JSON_PATH = RESULTS_DIR / "BENCH_slot_pipeline.json"
SMOKE_JSON_PATH = RESULTS_DIR / "BENCH_slot_pipeline_smoke.json"
KERNEL_JSON_PATH = RESULTS_DIR / "BENCH_kernel_backend.json"

#: Paper-scale medium preset must reproduce this exact trajectory
#: stream (sha256 over latency/cost/theta/backlog/price); pinned when
#: the compiled pipeline landed, bit-identical to the per-slot path.
MEDIUM_FINGERPRINT = (
    "21d380f5230daf38751e1c04951c28466fde49023e1f3986efd1c8e59a801e04"
)

#: Pre-PR throughput of the medium preset, best of 5, measured in the
#: same session on the same machine from a worktree at the parent
#: commit (ab8a27d) with this timing loop.  Machine-specific: re-measure
#: when comparing on different hardware.
BASELINE = {
    "commit": "ab8a27d",
    "preset": "medium",
    "slots_per_sec": 89.41,
    "note": "same-session, same-machine, best of 5",
}

#: Throughput of the compiled-pipeline medium preset on the NumPy
#: kernels (the state of the tree before the kernel backends landed),
#: measured like BASELINE.  The jit gate compares against this: the
#: backend abstraction must beat the already-compiled pipeline, not
#: just the historical per-slot path.
NUMPY_BASELINE = {
    "commit": "364eb55",
    "preset": "medium",
    "slots_per_sec": 333.71,
    "note": "numpy kernels, same timing loop; re-measure on new hardware",
}

PRESETS = {
    "small": {"seed": 11, "horizon": 120, "devices": 30},
    # Paper defaults: I=40, K=6, N=16.
    "medium": {"seed": 7, "horizon": 240, "devices": None},
    "large": {"seed": 13, "horizon": 60, "devices": 120},
}


def _recorded_counters() -> dict:
    """Per-preset counters from the committed bench JSON (read before
    any rewrite, so deltas always compare against the repo baseline)."""
    try:
        committed = json.loads(JSON_PATH.read_text())
    except (OSError, ValueError):
        return {}
    return {
        row["preset"]: row.get("counters", {})
        for row in committed.get("rows", [])
    }


def _counter_deltas(row: dict, recorded: dict) -> dict:
    """Current-minus-recorded per counter; an all-zero dict is the
    behaviour-unchanged signature, any other value localises the drift
    to a specific engine phase."""
    baseline = recorded.get(row["preset"])
    if baseline is None:
        return {}
    keys = sorted(set(baseline) | set(row["counters"]))
    return {
        key: row["counters"].get(key, 0) - baseline.get(key, 0)
        for key in keys
    }


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    for arr in (
        result.latency,
        result.cost,
        result.theta,
        result.backlog,
        result.price,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return digest.hexdigest()


def _run_preset(name: str, *, repeats: int, backend: str = "numpy") -> dict:
    from repro.api import run
    from repro.obs.probe import Probe

    preset = PRESETS[name]
    kwargs: dict = {
        "seed": preset["seed"],
        "horizon": preset["horizon"],
        "engine_backend": backend,
    }
    if preset["devices"] is not None:
        import repro

        kwargs["scenario_config"] = repro.ScenarioConfig(
            num_devices=preset["devices"]
        )
    if backend != "numpy":
        # Absorb one-off provider costs (numba compilation / the C
        # library build) outside the timed repeats.
        run(controller="dpp", **{**kwargs, "horizon": 8})

    seconds = []
    fingerprint = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run(controller="dpp", **kwargs)
        seconds.append(time.perf_counter() - started)
        fp = _fingerprint(result)
        if fingerprint is None:
            fingerprint = fp
        elif fp != fingerprint:
            raise AssertionError(f"{name}: nondeterministic trajectories")

    # One traced (untimed) run for counters and the phase profile.
    probe = Probe()
    run(controller="dpp", tracer=probe, **kwargs)
    counters = {k: v for k, v in sorted(probe.phases.counters.items())}

    best = min(seconds)
    return {
        "preset": name,
        "backend": backend,
        "seed": preset["seed"],
        "horizon": preset["horizon"],
        "devices": preset["devices"] or 40,
        "repeats": repeats,
        "best_seconds": best,
        "slots_per_sec": preset["horizon"] / best,
        "fingerprint": fingerprint,
        "counters": counters,
        "phase_table": probe.phases.table(),
    }


def run_pipeline_bench(*, repeats: int = 3, backend: str = "numpy") -> dict:
    recorded = _recorded_counters()
    rows = [
        _run_preset(name, repeats=repeats, backend=backend)
        for name in PRESETS
    ]
    for row in rows:
        row["counter_deltas"] = _counter_deltas(row, recorded)
    medium = next(r for r in rows if r["preset"] == "medium")
    return {
        "bench": "slot_pipeline",
        "backend": backend,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "baseline": BASELINE,
        "speedup_vs_baseline": medium["slots_per_sec"]
        / BASELINE["slots_per_sec"],
        "rows": rows,
    }


def run_backend_sweep(*, repeats: int = 3) -> dict:
    """Time every preset on every available backend; gate jit's gains.

    Writes ``BENCH_kernel_backend.json``: per-backend slots/s, jit
    speedups over both recorded baselines (the pre-compiled-pipeline
    89.4 and the NumPy-kernel 333.7), cross-backend fingerprint
    equality, and per-preset counter deltas against the committed
    baseline counters (all-zero deltas == identical work done).
    """
    from repro.kernels import available_backends, jit_provider

    recorded = _recorded_counters()
    backends = ["numpy"] + (["jit"] if available_backends()["jit"] else [])
    rows = []
    for backend in backends:
        for name in PRESETS:
            row = _run_preset(name, repeats=repeats, backend=backend)
            row["counter_deltas"] = _counter_deltas(row, recorded)
            rows.append(row)

    def medium(backend: str) -> dict:
        return next(
            r for r in rows
            if r["preset"] == "medium" and r["backend"] == backend
        )

    fingerprints_match = all(
        next(
            r for r in rows
            if r["preset"] == name and r["backend"] == "numpy"
        )["fingerprint"]
        == row["fingerprint"]
        for name in PRESETS
        for row in rows
        if row["preset"] == name
    )
    report = {
        "bench": "kernel_backend",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "jit_provider": jit_provider(),
        "backends": backends,
        "baselines": {
            "pre_pipeline": BASELINE,
            "numpy_kernels": NUMPY_BASELINE,
        },
        "numpy_medium_slots_per_sec": medium("numpy")["slots_per_sec"],
        "numpy_vs_numpy_baseline": medium("numpy")["slots_per_sec"]
        / NUMPY_BASELINE["slots_per_sec"],
        "fingerprints_match": fingerprints_match,
        "rows": rows,
    }
    if "jit" in backends:
        jit_medium = medium("jit")["slots_per_sec"]
        report["jit_medium_slots_per_sec"] = jit_medium
        report["jit_vs_pre_pipeline"] = jit_medium / BASELINE["slots_per_sec"]
        report["jit_vs_numpy_baseline"] = (
            jit_medium / NUMPY_BASELINE["slots_per_sec"]
        )
    return report


def run_smoke(*, backend: str = "numpy") -> dict:
    """CI smoke: prove the fast paths engage; assert no timings."""
    import repro
    from repro.api import run
    from repro.obs.probe import Probe

    def scenario():
        return repro.make_paper_scenario(
            seed=5, config=repro.ScenarioConfig(num_devices=12)
        )

    probe = Probe()
    compiled = run(
        scenario=scenario(), controller="dpp", horizon=12, tracer=probe,
        engine_backend=backend,
    )
    per_slot = run(
        scenario=scenario(), controller="dpp", horizon=12,
        compiled_states=False, engine_backend=backend,
    )
    if _fingerprint(compiled) != _fingerprint(per_slot):
        raise AssertionError("compiled states diverged from per-slot states")

    counters = probe.phases.counters
    checks = {
        "warm_start_hits": counters.get("engine.warm_start_hits", 0) > 0,
        "p2b_solves": (
            counters.get("p2b.scalar_solves", 0)
            + counters.get("p2b.batch_iters", 0)
        )
        > 0,
        "bdma_rounds": counters.get("bdma.rounds", 0) > 0,
        "compiled_bit_identical": True,
    }
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        raise AssertionError(
            f"fast paths did not engage: {failed}; counters={dict(counters)}"
        )
    return {
        "bench": "slot_pipeline_smoke",
        "backend": backend,
        "checks": checks,
        "counters": {k: v for k, v in sorted(counters.items())},
    }


def _table(report: dict) -> str:
    from repro.analysis.tables import format_table

    rows = [
        [
            r["preset"],
            r["devices"],
            r["horizon"],
            r["best_seconds"],
            r["slots_per_sec"],
            r["counters"].get("engine.warm_start_hits", 0),
            r["counters"].get("p2b.scalar_solves", 0)
            + r["counters"].get("p2b.batch_iters", 0),
        ]
        for r in report["rows"]
    ]
    table = format_table(
        ["preset", "I", "slots", "best (s)", "slots/s", "warm hits", "p2b work"],
        rows,
        title=(
            "Slot pipeline end to end (compiled states + warm starts): "
            f"medium {report['speedup_vs_baseline']:.2f}x vs pre-refactor "
            f"baseline {report['baseline']['slots_per_sec']:.1f} slots/s"
        ),
    )
    medium = next(r for r in report["rows"] if r["preset"] == "medium")
    return table + "\n\n" + medium["phase_table"]


def _sweep_table(report: dict) -> str:
    from repro.analysis.tables import format_table

    rows = [
        [
            r["preset"],
            r["backend"],
            r["horizon"],
            r["best_seconds"],
            r["slots_per_sec"],
            "yes" if not any(r["counter_deltas"].values()) else "NO",
        ]
        for r in report["rows"]
    ]
    jit_note = (
        f"jit {report['jit_vs_numpy_baseline']:.2f}x over numpy-kernel "
        f"baseline {NUMPY_BASELINE['slots_per_sec']:.1f} slots/s, "
        f"{report['jit_vs_pre_pipeline']:.2f}x over pre-pipeline "
        f"{BASELINE['slots_per_sec']:.1f}"
        if "jit" in report["backends"]
        else "jit backend unavailable (no numba, no C compiler)"
    )
    return format_table(
        ["preset", "backend", "slots", "best (s)", "slots/s", "same work"],
        rows,
        title=(
            f"Kernel backends (provider: {report['jit_provider']}): "
            + jit_note
        ),
    )


def _verify(report: dict) -> None:
    medium = next(r for r in report["rows"] if r["preset"] == "medium")
    assert medium["fingerprint"] == MEDIUM_FINGERPRINT, (
        "medium preset trajectories drifted: "
        f"{medium['fingerprint']} != {MEDIUM_FINGERPRINT}"
    )
    assert report["speedup_vs_baseline"] >= 3.0, (
        "slot pipeline speedup fell below the 3x gate "
        f"({report['speedup_vs_baseline']:.2f}x); if this is new hardware, "
        "re-measure BASELINE at the parent commit first"
    )
    drifted = {
        r["preset"]: {k: v for k, v in r["counter_deltas"].items() if v}
        for r in report["rows"]
        if any(r["counter_deltas"].values())
    }
    assert not drifted, (
        f"engine counters drifted from the committed baseline: {drifted}"
    )


def _verify_sweep(report: dict) -> None:
    assert report["fingerprints_match"], (
        "backends disagree on some preset's trajectory stream"
    )
    for row in report["rows"]:
        if row["preset"] == "medium":
            assert row["fingerprint"] == MEDIUM_FINGERPRINT, (
                f"medium drifted on backend {row['backend']}: "
                f"{row['fingerprint']} != {MEDIUM_FINGERPRINT}"
            )
        drift = {k: v for k, v in row["counter_deltas"].items() if v}
        assert not drift, (
            f"{row['preset']}/{row['backend']}: counter drift {drift}"
        )
    # The NumPy path must be untouched by the abstraction (within
    # timing noise), and jit must actually pay for itself.
    assert report["numpy_vs_numpy_baseline"] >= 0.85, (
        "NumPy kernels slowed down vs their recorded baseline "
        f"({report['numpy_vs_numpy_baseline']:.2f}x of "
        f"{NUMPY_BASELINE['slots_per_sec']} slots/s); the backend "
        "abstraction must not tax the oracle path"
    )
    if "jit" in report["backends"]:
        assert report["jit_vs_numpy_baseline"] >= 2.5, (
            "jit medium throughput fell below the 2.5x gate over the "
            f"NumPy-kernel baseline ({report['jit_vs_numpy_baseline']:.2f}x "
            f"of {NUMPY_BASELINE['slots_per_sec']} slots/s); if this is "
            "new hardware, re-measure NUMPY_BASELINE first"
        )


def _emit(report: dict, *, smoke: bool) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = SMOKE_JSON_PATH if smoke else JSON_PATH
    path.write_text(json.dumps(report, indent=2) + "\n")
    if smoke:
        print(json.dumps(report["checks"], indent=2))
    else:
        emit("slot_pipeline", _table(report))


def _emit_sweep(report: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    KERNEL_JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("kernel_backend", _sweep_table(report))


def bench_slot_pipeline(benchmark) -> None:
    report = benchmark.pedantic(run_pipeline_bench, rounds=1, iterations=1)
    _emit(report, smoke=False)
    _verify(report)


def bench_kernel_backend(benchmark) -> None:
    report = benchmark.pedantic(run_backend_sweep, rounds=1, iterations=1)
    _emit_sweep(report)
    _verify_sweep(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: tiny run asserting the fast paths engage "
        "(no timing assertions, does not touch the committed JSON)",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "jit"),
        default="numpy",
        help="kernel backend for the timed runs (and the smoke run)",
    )
    parser.add_argument(
        "--sweep-backends",
        action="store_true",
        help="time every preset on every available backend and gate the "
        "jit speedup (writes BENCH_kernel_backend.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per preset"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        _emit(run_smoke(backend=args.backend), smoke=True)
        return 0
    if args.sweep_backends:
        report = run_backend_sweep(repeats=args.repeats)
        _emit_sweep(report)
        _verify_sweep(report)
        return 0
    report = run_pipeline_bench(repeats=args.repeats, backend=args.backend)
    _emit(report, smoke=False)
    _verify(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
