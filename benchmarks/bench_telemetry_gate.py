"""Telemetry perf gate: per-kernel/per-phase latency budgets + overhead.

Two jobs in one bench:

1. **Perf-regression gate.**  Runs the paper-scale medium preset with a
   :class:`~repro.obs.telemetry.MetricsRegistry` attached and compares
   the per-phase (``repro_phase_seconds``) and per-kernel
   (``repro_kernel_seconds``) histograms against the committed baseline
   ``benchmarks/results/BENCH_telemetry_gate.json``:

   * observation **counts must match exactly** -- the run is seeded, so
     any count drift is a behaviour change, not noise;
   * **p50/p95 must stay within configurable ratios** of the baseline
     (``--p50-threshold`` / ``--p95-threshold``; machine-dependent, so
     the defaults are generous and ``--smoke`` is more generous still);
   * the medium-preset trajectory fingerprint must stay pinned -- the
     telemetry layer must never change results.

2. **Overhead measurement** (``--overhead`` / part of ``--record``).
   Times the medium preset with telemetry off vs on and writes
   ``BENCH_telemetry_overhead.json``: slots/s both ways, the overhead
   percentage (target: under 2%), and proof the fingerprints match.

``--record`` re-measures this machine and rewrites the committed
baseline (do this once per hardware change, at the tree's current
behaviour).  Run directly or via pytest.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, emit  # noqa: E402
from bench_slot_pipeline import (  # noqa: E402
    MEDIUM_FINGERPRINT,
    PRESETS,
    _fingerprint,
)

GATE_JSON_PATH = RESULTS_DIR / "BENCH_telemetry_gate.json"
OVERHEAD_JSON_PATH = RESULTS_DIR / "BENCH_telemetry_overhead.json"

#: Histogram families the gate watches.
PROFILE_FAMILIES = ("repro_phase_seconds", "repro_kernel_seconds")

#: Series whose baseline p50 is below this are pure noise at CI
#: resolution; their counts still gate, their timings do not.
TIMING_FLOOR_SECONDS = 2e-4


def _series_label(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "(all)"


def _profile_run(*, preset: str = "medium") -> dict:
    """One telemetry-attached run of *preset*; returns the profile."""
    import repro
    from repro.api import run
    from repro.obs.telemetry import MetricsRegistry, histogram_summaries

    cfg = PRESETS[preset]
    kwargs: dict = {"seed": cfg["seed"], "horizon": cfg["horizon"]}
    if cfg["devices"] is not None:
        kwargs["scenario_config"] = repro.ScenarioConfig(
            num_devices=cfg["devices"]
        )
    registry = MetricsRegistry()
    result = run(controller="dpp", metrics_registry=registry, **kwargs)
    profile = {
        family: {
            _series_label(row["labels"]): {
                "count": row["count"],
                "p50": row["p50"],
                "p95": row["p95"],
            }
            for row in histogram_summaries(registry, family)
        }
        for family in PROFILE_FAMILIES
    }
    return {
        "preset": preset,
        "fingerprint": _fingerprint(result),
        "profile": profile,
    }


def run_gate(
    *,
    p50_threshold: float = 3.0,
    p95_threshold: float = 3.5,
) -> dict:
    """Profile the medium preset and diff against the committed baseline."""
    current = _profile_run()
    try:
        baseline = json.loads(GATE_JSON_PATH.read_text())
    except (OSError, ValueError):
        baseline = None

    failures: list[str] = []
    if current["fingerprint"] != MEDIUM_FINGERPRINT:
        failures.append(
            "medium trajectories drifted with telemetry attached: "
            f"{current['fingerprint']} != {MEDIUM_FINGERPRINT}"
        )
    comparisons = 0
    if baseline is not None:
        for family in PROFILE_FAMILIES:
            base_rows = baseline["profile"].get(family, {})
            cur_rows = current["profile"].get(family, {})
            if set(base_rows) != set(cur_rows):
                failures.append(
                    f"{family}: series set changed "
                    f"(-{sorted(set(base_rows) - set(cur_rows))} "
                    f"+{sorted(set(cur_rows) - set(base_rows))})"
                )
                continue
            for label, base in base_rows.items():
                cur = cur_rows[label]
                comparisons += 1
                if cur["count"] != base["count"]:
                    failures.append(
                        f"{family}{{{label}}}: observation count "
                        f"{cur['count']} != baseline {base['count']} "
                        "(seeded run -- this is a behaviour change)"
                    )
                if base["p50"] < TIMING_FLOOR_SECONDS:
                    continue
                for quantile, threshold in (
                    ("p50", p50_threshold),
                    ("p95", p95_threshold),
                ):
                    ratio = cur[quantile] / base[quantile]
                    if ratio > threshold:
                        failures.append(
                            f"{family}{{{label}}}: {quantile} regressed "
                            f"{ratio:.2f}x over baseline "
                            f"({cur[quantile] * 1e3:.3f}ms vs "
                            f"{base[quantile] * 1e3:.3f}ms; gate "
                            f"{threshold:.1f}x)"
                        )
    return {
        "bench": "telemetry_gate",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "thresholds": {"p50": p50_threshold, "p95": p95_threshold},
        "baseline_present": baseline is not None,
        "series_compared": comparisons,
        "failures": failures,
        "current": current,
    }


def run_overhead(*, repeats: int = 3) -> dict:
    """Medium-preset slots/s with telemetry off vs on (best of N)."""
    import repro
    from repro.api import run
    from repro.obs.telemetry import MetricsRegistry

    cfg = PRESETS["medium"]
    kwargs: dict = {"seed": cfg["seed"], "horizon": cfg["horizon"]}
    if cfg["devices"] is not None:
        kwargs["scenario_config"] = repro.ScenarioConfig(
            num_devices=cfg["devices"]
        )

    def best_of(telemetry: bool) -> tuple[float, str]:
        seconds, fingerprint = [], None
        for _ in range(repeats):
            registry = MetricsRegistry() if telemetry else None
            started = time.perf_counter()
            result = run(
                controller="dpp", metrics_registry=registry, **kwargs
            )
            seconds.append(time.perf_counter() - started)
            fingerprint = _fingerprint(result)
        return min(seconds), fingerprint

    off_seconds, off_fp = best_of(False)
    on_seconds, on_fp = best_of(True)
    horizon = cfg["horizon"]
    off_rate = horizon / off_seconds
    on_rate = horizon / on_seconds
    return {
        "bench": "telemetry_overhead",
        "preset": "medium",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "repeats": repeats,
        "slots_per_sec_off": off_rate,
        "slots_per_sec_on": on_rate,
        "overhead_pct": 100.0 * (on_seconds / off_seconds - 1.0),
        "target_pct": 2.0,
        "fingerprint_match": off_fp == on_fp == MEDIUM_FINGERPRINT,
    }


def _verify_gate(report: dict) -> None:
    assert report["baseline_present"], (
        f"no committed baseline at {GATE_JSON_PATH}; run with --record first"
    )
    assert report["series_compared"] > 0, "baseline compared zero series"
    assert not report["failures"], "telemetry perf gate failed:\n" + "\n".join(
        f"  - {line}" for line in report["failures"]
    )


def _verify_overhead(report: dict) -> None:
    assert report["fingerprint_match"], (
        "telemetry changed the medium-preset trajectories"
    )
    # The 2% figure is the recorded target on quiet hardware; the hard
    # gate leaves room for CI-runner noise.
    assert report["overhead_pct"] < 10.0, (
        f"telemetry overhead {report['overhead_pct']:.2f}% exceeds the "
        "10% hard ceiling (target 2%)"
    )


def _gate_table(report: dict) -> str:
    lines = [
        "Telemetry perf gate (medium preset, per-phase + per-kernel "
        "histograms vs committed baseline)",
        f"  series compared : {report['series_compared']}",
        f"  thresholds      : p50 {report['thresholds']['p50']:.1f}x, "
        f"p95 {report['thresholds']['p95']:.1f}x",
        f"  failures        : {len(report['failures'])}",
    ]
    lines.extend(f"    - {f}" for f in report["failures"])
    return "\n".join(lines)


def _record() -> dict:
    report = _profile_run()
    assert report["fingerprint"] == MEDIUM_FINGERPRINT, (
        "refusing to record a baseline from drifted trajectories: "
        f"{report['fingerprint']}"
    )
    payload = {
        "bench": "telemetry_gate_baseline",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        **report,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    GATE_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def bench_telemetry_gate(benchmark) -> None:
    report = benchmark.pedantic(run_gate, rounds=1, iterations=1)
    emit("telemetry_gate", _gate_table(report))
    _verify_gate(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: same seeded count gate, but timing thresholds "
        "open up to 10x (shared runners are noisy)",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="re-measure and rewrite the committed baseline JSON "
        "(plus the overhead record)",
    )
    parser.add_argument(
        "--overhead",
        action="store_true",
        help="also measure telemetry on/off overhead and write "
        "BENCH_telemetry_overhead.json",
    )
    parser.add_argument("--p50-threshold", type=float, default=3.0)
    parser.add_argument("--p95-threshold", type=float, default=3.5)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    if args.record:
        _record()
        print(f"baseline recorded to {GATE_JSON_PATH}")
        overhead = run_overhead(repeats=args.repeats)
        RESULTS_DIR.mkdir(exist_ok=True)
        OVERHEAD_JSON_PATH.write_text(json.dumps(overhead, indent=2) + "\n")
        _verify_overhead(overhead)
        print(
            f"overhead recorded to {OVERHEAD_JSON_PATH}: "
            f"{overhead['overhead_pct']:.2f}% "
            f"({overhead['slots_per_sec_off']:.1f} -> "
            f"{overhead['slots_per_sec_on']:.1f} slots/s)"
        )
        return 0

    p50 = 10.0 if args.smoke else args.p50_threshold
    p95 = 10.0 if args.smoke else args.p95_threshold
    report = run_gate(p50_threshold=p50, p95_threshold=p95)
    emit("telemetry_gate", _gate_table(report))
    _verify_gate(report)
    if args.overhead:
        overhead = run_overhead(repeats=args.repeats)
        RESULTS_DIR.mkdir(exist_ok=True)
        OVERHEAD_JSON_PATH.write_text(json.dumps(overhead, indent=2) + "\n")
        _verify_overhead(overhead)
        print(
            f"telemetry overhead: {overhead['overhead_pct']:.2f}% "
            f"(target {overhead['target_pct']}%)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
