"""Chaos smoke: the resilience layer's two core promises, end to end.

The CI ``chaos-smoke`` job runs this script.  It asserts, on a seeded
scenario with a composed :class:`~repro.sim.faults.FaultPlan` (fronthaul
degradation, price-feed dropouts, base-station and server outages) plus
injected solver failures on a fixed fraction of slots:

1. **Never-abort**: the degraded-mode controller decides every slot --
   the fallback chain serves the chaos-tripped slots, every trajectory
   entry is finite, and the ``resilience.*`` counters account for the
   injected failures.
2. **Bit-identical resume**: a run that checkpoints, is killed mid-way,
   and resumes from the snapshot in a fresh controller/scenario
   reproduces the uninterrupted run's latency/cost/backlog trajectories
   and final virtual queue exactly (no tolerance).
3. **Chaos at scale**: a 4-cell resident-runtime run under a fault plan
   whose base-station outage spans every cell, with the same solver
   chaos rate *plus* an injected hung worker, is detected by the
   heartbeat watchdog, salvaged by replay, and ends bit-identical to
   the undisturbed sharded run.

Run directly: ``python benchmarks/chaos_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import emit  # noqa: E402

import repro  # noqa: E402
from repro.core.resilience import ResiliencePolicy, SolverChaos  # noqa: E402
from repro.sim.checkpoint import run_checkpointed  # noqa: E402
from repro.sim.faults import (  # noqa: E402
    BaseStationOutages,
    FaultPlan,
    FronthaulDegradation,
    MarkovOutages,
    PriceFeedDropouts,
    ScriptedIncident,
    ServerOutages,
)

SEED = 7
HORIZON = 48
DEVICES = 12
CHAOS_RATE = 0.15  # >= 10% of slots lose their primary solver


def make_plan() -> FaultPlan:
    return FaultPlan(
        faults=(
            ServerOutages(MarkovOutages(mtbf_slots=40.0, mttr_slots=3.0)),
            BaseStationOutages(mtbf_slots=60.0, mttr_slots=2.0),
            FronthaulDegradation(mtbf_slots=30.0, mttr_slots=5.0, factor=0.3),
            PriceFeedDropouts(mtbf_slots=25.0, mttr_slots=3.0),
        )
    )


def make_scenario() -> repro.Scenario:
    return repro.make_paper_scenario(
        seed=SEED,
        config=repro.ScenarioConfig(num_devices=DEVICES),
        fault_plan=make_plan(),
    )


def make_controller(
    scenario: repro.Scenario, tracer=None
) -> repro.DPPController:
    return repro.DPPController(
        scenario.network,
        scenario.controller_rng("chaos-smoke"),
        v=100.0,
        budget=scenario.budget,
        z=2,
        resilience=ResiliencePolicy(
            chaos=SolverChaos(failure_rate=CHAOS_RATE, seed=11)
        ),
        tracer=tracer,
    )


class _CounterSink:
    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.fallback_slots = 0
        self.slots = 0

    def emit(self, event: dict) -> None:
        if event["kind"] == "counter":
            name = event["name"]
            self.counters[name] = self.counters.get(name, 0.0) + event["value"]
        elif event["kind"] == "event" and event["name"] == "slot":
            self.slots += 1
            if event["data"].get("fallback", "primary") != "primary":
                self.fallback_slots += 1

    def close(self) -> None:
        pass


def check_never_abort() -> list[str]:
    sink = _CounterSink()
    probe = repro.obs.Probe([sink])
    scenario = make_scenario()
    controller = make_controller(scenario, tracer=probe)
    result = repro.run_simulation(
        controller,
        scenario.fresh_compiled_states(HORIZON, tracer=probe),
        budget=scenario.budget,
        tracer=probe,
    )
    assert result.horizon == HORIZON, "a slot was skipped"
    assert np.isfinite(result.latency).all() and np.isfinite(result.cost).all()
    fallbacks = sink.counters.get("resilience.fallbacks", 0.0)
    faults = sink.counters.get("resilience.faults", 0.0)
    assert sink.fallback_slots >= 1, "chaos never tripped"
    assert fallbacks == sink.fallback_slots
    assert faults > 0, "fault plan injected nothing"
    return [
        f"never-abort: {HORIZON} slots decided, "
        f"{sink.fallback_slots} via fallback, {faults:.0f} fault events",
        "counters: "
        + " ".join(
            f"{k.removeprefix('resilience.')}={v:.0f}"
            for k, v in sorted(sink.counters.items())
            if k.startswith("resilience.")
        ),
    ]


class _Kill(Exception):
    pass


def check_resume_equality() -> list[str]:
    base = repro.run_simulation(
        make_controller(make_scenario()),
        make_scenario().fresh_compiled_states(HORIZON),
        budget=None,
    )
    kill_at = HORIZON // 2 + 3
    with TemporaryDirectory() as tmp:
        path = Path(tmp) / "chaos.ckpt"
        seen = {"n": 0}

        def killer(record) -> None:
            seen["n"] += 1
            if seen["n"] == kill_at:
                raise _Kill

        try:
            run_checkpointed(
                make_scenario(),
                make_controller(make_scenario()),
                horizon=HORIZON,
                path=path,
                every=8,
                on_slot=killer,
            )
            raise AssertionError("kill never fired")
        except _Kill:
            pass
        resumed = run_checkpointed(
            make_scenario(),
            make_controller(make_scenario()),
            horizon=HORIZON,
            path=path,
            every=8,
            resume=True,
        )
    assert np.array_equal(base.latency, resumed.latency), "latency diverged"
    assert np.array_equal(base.cost, resumed.cost), "cost diverged"
    assert np.array_equal(base.backlog, resumed.backlog), "backlog diverged"
    assert base.backlog[-1] == resumed.backlog[-1]
    return [
        f"resume: killed at slot {kill_at}, resumed from snapshot; "
        f"{HORIZON}-slot trajectories bit-identical "
        f"(final Q = {resumed.backlog[-1]:.6f})"
    ]


def make_metro_scenario() -> repro.Scenario:
    """A 4-cell-able metro topology under a cell-spanning fault plan."""
    return repro.make_paper_scenario(
        seed=SEED,
        config=repro.ScenarioConfig(num_devices=20),
        num_base_stations=4,
        num_macro_stations=4,
        wireless_fronthaul_fraction=1.0,
        num_clusters=4,
        servers_per_cluster=2,
        fault_plan=FaultPlan(
            faults=(
                BaseStationOutages(mtbf_slots=60.0, mttr_slots=2.0),
                PriceFeedDropouts(mtbf_slots=25.0, mttr_slots=3.0),
            ),
            schedule=[
                # One scripted outage covering every base station, so
                # the incident projects into all four cells at once.
                ScriptedIncident(
                    at=4, duration=3, kind="bs_down", targets=(0, 1, 2, 3)
                )
            ],
        ),
    )


def check_sharded_chaos() -> list[str]:
    from repro import sharding

    resilience = ResiliencePolicy(
        chaos=SolverChaos(failure_rate=CHAOS_RATE, seed=11)
    )
    cells = sharding.partition_cells(
        make_metro_scenario().network, 4, rng=np.random.default_rng(3)
    )
    undisturbed = sharding.run_sharded(
        make_metro_scenario(),
        horizon=HORIZON,
        cells=cells,
        epoch=12,
        resilience=resilience,
    )
    ctrl = sharding.ShardedController(
        make_metro_scenario(),
        cells,
        processes=2,
        epoch=12,
        timeout_seconds=5.0,
        resilience=resilience,
    )
    ctrl._chaos_hang = (1, 0)
    salvaged = ctrl.run(HORIZON)
    assert ctrl._chaos_fired, "hang chaos never fired"
    for name in ("latency", "cost", "theta", "backlog", "price"):
        assert np.array_equal(
            getattr(undisturbed.merged, name), getattr(salvaged.merged, name)
        ), f"{name} diverged after hang salvage"
    assert np.array_equal(undisturbed.budgets, salvaged.budgets)
    return [
        f"sharded chaos: {cells.num_cells} cells x resident runtime, "
        f"cell-spanning BS outage, {CHAOS_RATE:.0%} solver chaos; hung "
        "worker detected by the heartbeat watchdog and salvaged "
        "bit-identical"
    ]


def main() -> int:
    lines = ["chaos smoke (seed %d, horizon %d, chaos %.0f%%)"
             % (SEED, HORIZON, CHAOS_RATE * 100)]
    lines += check_never_abort()
    lines += check_resume_equality()
    lines += check_sharded_chaos()
    emit("chaos_smoke", "\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
