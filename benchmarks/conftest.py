"""Make the benchmarks directory importable regardless of rootdir."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
