"""CI telemetry smoke: live OpenMetrics during a pooled sharded run.

Starts a :class:`~repro.obs.server.MetricsServer` on an ephemeral port,
runs a 4-cell sharded simulation across 4 worker processes, and scrapes
the endpoint from a background thread the whole time.  Asserts the
acceptance contract of the telemetry layer:

* at least one **mid-run** scrape parses as valid OpenMetrics and shows
  per-cell series streaming in while epochs are still completing;
* the final exposition carries every required family -- per-cell
  ``repro_queue_backlog`` and ``repro_budget_drift`` gauges, per-kernel
  ``repro_kernel_seconds`` histograms, per-cell monitor alerts/statuses
  folded into the merged health report;
* the run's merged trajectories are **bit-identical** to the same run
  with no telemetry attached.

Exits nonzero on any failure.  No timing assertions -- this is a
correctness smoke, not a perf gate.
"""

from __future__ import annotations

import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

CELLS = 4
PROCESSES = 4
HORIZON = 24
EPOCH = 6

REQUIRED_FAMILIES = (
    "repro_queue_backlog",
    "repro_budget_drift",
    "repro_kernel_seconds",
    "repro_phase_seconds",
    "repro_cell_budget",
    "repro_shard_completed_slots",
    "repro_slots",
)


def _scenario():
    import repro

    return repro.make_paper_scenario(
        9,
        config=repro.ScenarioConfig(num_devices=32),
        num_base_stations=8,
        num_macro_stations=8,
        wireless_fronthaul_fraction=1.0,
        num_clusters=4,
        servers_per_cluster=2,
    )


def main() -> int:
    from repro.obs.server import MetricsServer
    from repro.obs.telemetry import MetricsRegistry, parse_openmetrics
    from repro.sim.sharded import run_sharded

    registry = MetricsRegistry()
    mid_run: list[str] = []
    running = threading.Event()
    running.set()

    with MetricsServer(registry, port=0) as server:
        url = server.url
        print(f"scraping {url} during the run")

        def poll() -> None:
            while running.is_set():
                try:
                    body = urllib.request.urlopen(url, timeout=2).read()
                    mid_run.append(body.decode("utf-8"))
                except Exception:
                    pass
                time.sleep(0.05)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        result = run_sharded(
            _scenario(),
            horizon=HORIZON,
            cells=CELLS,
            epoch=EPOCH,
            processes=PROCESSES,
            registry=registry,
            monitors=True,
        )
        running.clear()
        poller.join(timeout=5)
        final = urllib.request.urlopen(url, timeout=5).read().decode("utf-8")

    checks: dict[str, bool] = {}

    # 1. Mid-run scrapes happened and parse as valid OpenMetrics.
    checks["mid_run_scrapes"] = len(mid_run) > 0
    parsed_mid = [parse_openmetrics(text) for text in mid_run]
    checks["mid_run_parses"] = len(parsed_mid) == len(mid_run)
    # Live streaming: some scrape taken before the run finished already
    # carried per-cell budget gauges (published as each epoch merges).
    checks["mid_run_per_cell_series"] = any(
        "repro_cell_budget" in families for families in parsed_mid
    )

    # 2. The final exposition has every required family, with per-cell
    #    labels on the per-cell ones.
    families = parse_openmetrics(final)
    for name in REQUIRED_FAMILIES:
        checks[f"family:{name}"] = name in families
    cells_seen = {
        labels.get("cell")
        for name in ("repro_queue_backlog", "repro_budget_drift")
        if name in families
        for _, labels, _ in families[name]["samples"]
    }
    checks["all_cells_reporting"] = cells_seen >= {
        str(c) for c in range(CELLS)
    }
    kernel_cells = {
        labels.get("cell")
        for _, labels, _ in families.get("repro_kernel_seconds", {}).get(
            "samples", []
        )
    }
    checks["kernel_histograms_per_cell"] = len(kernel_cells - {None}) == CELLS

    # 3. Monitors sharded per cell and folded into one health report.
    health = result.health
    checks["health_report"] = health is not None
    if health is not None:
        names = {status.name for status in health.statuses}
        checks["health_all_cells"] = all(
            any(n.startswith(f"cell{c}/") for n in names)
            for c in range(CELLS)
        )

    # 4. Telemetry never changes results: bit-identical to a bare run.
    bare = run_sharded(
        _scenario(), horizon=HORIZON, cells=CELLS, epoch=EPOCH
    )
    checks["fingerprint_identical"] = all(
        np.array_equal(
            getattr(result.merged, field), getattr(bare.merged, field)
        )
        for field in ("latency", "cost", "theta", "backlog", "price")
    )

    width = max(len(k) for k in checks)
    for name, ok in checks.items():
        print(f"  {name:<{width}} : {'ok' if ok else 'FAIL'}")
    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"telemetry smoke FAILED: {failed}", file=sys.stderr)
        return 1
    print(
        f"telemetry smoke ok: {len(mid_run)} live scrapes, "
        f"{len(families)} families, {CELLS} cells x {PROCESSES} processes"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
