"""Budget planning: the latency / energy-cost trade-off curve.

An operator choosing an energy budget for an edge deployment wants the
curve the paper's Fig. 9 plots: how much latency each extra dollar of
energy budget buys, and how the paper's BDMA-based DPP compares to the
ROPT-based baseline at every operating point.

Run:  python examples/budget_planning.py

Environment overrides (used by the CI smoke job):
  REPRO_EXAMPLE_HORIZON  slots per operating point (default 168)
  REPRO_EXAMPLE_DEVICES  number of mobile devices (default 30)
"""

from __future__ import annotations

import os

import repro
from repro.analysis.tables import format_table
from repro.config import PRICE_SCALE
from repro.energy.cost import suggest_budget

HORIZON = int(os.environ.get("REPRO_EXAMPLE_HORIZON", "168"))
DEVICES = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "30"))


def budget_at(scenario: repro.Scenario, fraction: float) -> float:
    """The budget a given fraction of the way up the feasible range."""
    return PRICE_SCALE * suggest_budget(
        scenario.network.energy_models(),
        scenario.network.freq_min,
        scenario.network.freq_max,
        scenario.generator.prices,
        fraction=fraction,
    )


def evaluate(scenario: repro.Scenario, budget: float, *, use_ropt: bool):
    name = "ropt" if use_ropt else "bdma"
    result = repro.api.run(
        scenario=scenario,
        controller=name,
        horizon=HORIZON,
        v=100.0,
        budget=budget,
        rng_label=f"{name}-{budget:.4f}",
    )
    return result.time_average_latency(), result.time_average_cost()


def main() -> None:
    scenario = repro.make_paper_scenario(
        seed=33, config=repro.ScenarioConfig(num_devices=DEVICES)
    )
    rows = []
    for fraction in (0.15, 0.3, 0.5, 0.7, 0.9):
        budget = budget_at(scenario, fraction)
        bdma_latency, bdma_cost = evaluate(scenario, budget, use_ropt=False)
        ropt_latency, _ = evaluate(scenario, budget, use_ropt=True)
        rows.append(
            [
                fraction,
                budget,
                bdma_latency,
                ropt_latency,
                ropt_latency / bdma_latency,
                bdma_cost,
            ]
        )
    print(
        format_table(
            [
                "fraction",
                "budget $/slot",
                "BDMA-DPP s",
                "ROPT-DPP s",
                "ROPT/BDMA",
                "realised cost",
            ],
            rows,
            title="Latency vs energy budget (one simulated week per point)",
        )
    )
    print()
    print("Reading the curve: past ~0.5 the budget stops binding -- the")
    print("servers already run near full speed, so extra budget buys")
    print("nothing.  Below it, latency climbs as the queue throttles the")
    print("clocks.  BDMA-DPP dominates ROPT-DPP at every operating point.")


if __name__ == "__main__":
    main()
