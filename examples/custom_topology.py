"""Building a custom MEC topology by hand.

The scenario builder covers the paper's random setup; this example shows
the library as a toolkit: a small campus deployment is assembled entity
by entity (one macro cell, one small cell, two server rooms with
heterogeneous servers and energy models), a single slot is solved, and
the full decision -- who connects where, the bandwidth/compute shares of
Lemma 1, the chosen clock frequencies -- is printed per device.

Run:  python examples/custom_topology.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.network import coverage_matrix
from repro.core.state import validate_decision
from repro.energy.models import CubicEnergyModel, QuadraticEnergyModel
from repro.network.topology import (
    BaseStation,
    EdgeServer,
    FronthaulType,
    MobileDevice,
    ServerCluster,
)


def build_campus() -> repro.MECNetwork:
    base_stations = (
        BaseStation(
            index=0, position=(0.0, 0.0), coverage_radius=5_000.0,
            access_bandwidth=80e6, fronthaul_bandwidth=1.0e9,
            fronthaul_spectral_efficiency=10.0,
            fronthaul_type=FronthaulType.WIRED, connected_clusters=(0,),
            name="campus-macro",
        ),
        BaseStation(
            index=1, position=(800.0, 200.0), coverage_radius=400.0,
            access_bandwidth=60e6, fronthaul_bandwidth=0.6e9,
            fronthaul_spectral_efficiency=10.0,
            fronthaul_type=FronthaulType.WIRELESS, connected_clusters=(0, 1),
            name="library-small-cell",
        ),
    )
    clusters = (
        ServerCluster(index=0, servers=(0, 1), name="datacenter-room"),
        ServerCluster(index=1, servers=(2,), name="library-closet"),
    )
    servers = (
        EdgeServer(index=0, cluster=0, cores=64, freq_min=1.8, freq_max=3.6,
                   energy_model=QuadraticEnergyModel(a=110.0, b=-200.0, c=490.0),
                   name="big-xeon"),
        EdgeServer(index=1, cluster=0, cores=128, freq_min=1.8, freq_max=3.6,
                   energy_model=QuadraticEnergyModel(a=220.0, b=-400.0, c=980.0),
                   name="bigger-xeon"),
        EdgeServer(index=2, cluster=1, cores=32, freq_min=1.2, freq_max=3.0,
                   energy_model=CubicEnergyModel(kappa=14.0, static=60.0),
                   name="library-box"),
    )
    devices = tuple(
        MobileDevice(index=i, position=(float(150 * i), 100.0), name=f"phone-{i}")
        for i in range(6)
    )
    # Library tasks (devices 4, 5) run best on the library box.
    suitability = np.full((6, 3), 0.7)
    suitability[:, 1] = 0.9
    suitability[4:, 2] = 1.0
    return repro.MECNetwork(base_stations, clusters, servers, devices, suitability)


def main() -> None:
    network = build_campus()
    repro.validate_network(network)

    rng = np.random.default_rng(5)
    h = np.where(
        coverage_matrix(
            network.device_positions(),
            network.base_station_positions(),
            np.array([b.coverage_radius for b in network.base_stations]),
        ),
        rng.uniform(15.0, 50.0, size=(6, 2)),
        0.0,
    )
    state = repro.SlotState(
        t=0,
        cycles=rng.uniform(50e6, 200e6, size=6),
        bits=rng.uniform(3e6, 10e6, size=6),
        spectral_efficiency=h,
        price=40e-6,  # $40/MWh in per-watt-slot units
    )

    # No scenario here: the facade also accepts a bare network + rng +
    # budget for hand-built deployments.
    controller = repro.make_controller(
        "dpp", network=network, rng=rng, budget=1.0, v=100.0, z=3,
        initial_backlog=2.0,
    )
    record = controller.step(state)
    validate_decision(network, state, record.decision())

    rows = []
    for i in range(network.num_devices):
        k = int(record.assignment.bs_of[i])
        n = int(record.assignment.server_of[i])
        rows.append(
            [
                network.devices[i].label,
                network.base_stations[k].label,
                network.servers[n].label,
                record.allocation.access_share[i],
                record.allocation.compute_share[i],
            ]
        )
    print(
        format_table(
            ["device", "base station", "server", "psi^A", "phi"],
            rows,
            title="Per-device decision for one slot",
        )
    )
    freq_rows = [
        [network.servers[n].label, float(record.frequencies[n]),
         network.servers[n].energy_model.power(float(record.frequencies[n]))]
        for n in range(network.num_servers)
    ]
    print()
    print(
        format_table(
            ["server", "clock GHz", "power W"],
            freq_rows,
            title=f"Clock scaling (queue={record.backlog_before:.1f}, "
                  f"slot cost {record.cost:.3f} $)",
        )
    )
    print(f"\noverall latency: {record.latency:.3f} s summed across devices")


if __name__ == "__main__":
    main()
