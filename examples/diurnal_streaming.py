"""Diurnal video-streaming scenario: non-iid workloads and prices.

This is the setting that motivates the paper's non-iid state model
(its Fig. 2): an evening-peaked workload (video analytics for a
streaming service) running against a double-peaked electricity price.
The controller must process the evening demand surge exactly when
electricity is most expensive -- the virtual queue mediates the
conflict.

The script prints an hour-by-hour profile of the steady-state day:
demand multiplier, price, chosen mean clock frequency, energy cost, and
latency.  Watch the frequencies dip in the expensive evening hours while
the queue absorbs the overshoot.

Run:  python examples/diurnal_streaming.py

Environment overrides (used by the CI smoke job):
  REPRO_EXAMPLE_DAYS     simulated days (default 10)
  REPRO_EXAMPLE_DEVICES  number of mobile devices (default 40)
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.analysis.tables import format_table

DAYS = int(os.environ.get("REPRO_EXAMPLE_DAYS", "10"))
DEVICES = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "40"))


def main() -> None:
    scenario = repro.make_paper_scenario(
        seed=21,
        config=repro.ScenarioConfig(
            num_devices=DEVICES,
            workload="diurnal",       # f_t, d_t = periodic trend + noise
            budget_fraction=0.35,     # tight budget: scaling must work
        ),
    )
    days, period = DAYS, repro.DEFAULT_PERIOD
    result = repro.api.run(
        scenario=scenario,
        controller="dpp",
        horizon=days * period,
        v=150.0,
        z=3,
        rng_label="controller",
        keep_records=True,
    )

    # Average the last five days hour-by-hour (after queue convergence).
    tail_days = min(5, days)
    tail = slice((days - tail_days) * period, days * period)
    records = result.records[tail]
    latency = result.latency[tail].reshape(tail_days, period).mean(axis=0)
    cost = result.cost[tail].reshape(tail_days, period).mean(axis=0)
    price = result.price[tail].reshape(tail_days, period).mean(axis=0)
    freqs = np.array([r.frequencies.mean() for r in records]).reshape(
        tail_days, period
    ).mean(axis=0)
    backlog = result.backlog[tail].reshape(tail_days, period).mean(axis=0)

    rows = [
        [
            hour,
            price[hour] * 1e6,  # back to $/MWh for readability
            freqs[hour],
            cost[hour],
            latency[hour],
            backlog[hour],
        ]
        for hour in range(period)
    ]
    print(
        format_table(
            ["hour", "price $/MWh", "mean GHz", "cost $/slot", "latency s", "queue"],
            rows,
            title=(
                f"Steady-state day (mean of last {tail_days} days); "
                f"budget {scenario.budget:.3f} $/slot, "
                f"realised {result.time_average_cost():.3f}"
            ),
        )
    )

    expensive = price.argsort()[-6:]
    cheap = price.argsort()[:6]
    print()
    print(f"mean clock in 6 cheapest hours : {freqs[cheap].mean():.2f} GHz")
    print(f"mean clock in 6 priciest hours : {freqs[expensive].mean():.2f} GHz")
    print("-> the controller shifts compute speed away from expensive hours.")


if __name__ == "__main__":
    main()
