"""Diurnal video-streaming scenario: non-iid workloads and prices.

This is the setting that motivates the paper's non-iid state model
(its Fig. 2): an evening-peaked workload (video analytics for a
streaming service) running against a double-peaked electricity price.
The controller must process the evening demand surge exactly when
electricity is most expensive -- the virtual queue mediates the
conflict.

The script prints an hour-by-hour profile of the steady-state day:
demand multiplier, price, chosen mean clock frequency, energy cost, and
latency.  Watch the frequencies dip in the expensive evening hours while
the queue absorbs the overshoot.

Run:  python examples/diurnal_streaming.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import format_table


def main() -> None:
    scenario = repro.make_paper_scenario(
        seed=21,
        config=repro.ScenarioConfig(
            num_devices=40,
            workload="diurnal",       # f_t, d_t = periodic trend + noise
            budget_fraction=0.35,     # tight budget: scaling must work
        ),
    )
    controller = repro.DPPController(
        scenario.network,
        scenario.controller_rng(),
        v=150.0,
        budget=scenario.budget,
        z=3,
    )

    days, period = 10, repro.DEFAULT_PERIOD
    result = repro.run_simulation(
        controller,
        scenario.fresh_states(days * period),
        budget=scenario.budget,
        keep_records=True,
    )

    # Average the last five days hour-by-hour (after queue convergence).
    tail = slice((days - 5) * period, days * period)
    records = result.records[tail]
    latency = result.latency[tail].reshape(5, period).mean(axis=0)
    cost = result.cost[tail].reshape(5, period).mean(axis=0)
    price = result.price[tail].reshape(5, period).mean(axis=0)
    freqs = np.array([r.frequencies.mean() for r in records]).reshape(
        5, period
    ).mean(axis=0)
    backlog = result.backlog[tail].reshape(5, period).mean(axis=0)

    rows = [
        [
            hour,
            price[hour] * 1e6,  # back to $/MWh for readability
            freqs[hour],
            cost[hour],
            latency[hour],
            backlog[hour],
        ]
        for hour in range(period)
    ]
    print(
        format_table(
            ["hour", "price $/MWh", "mean GHz", "cost $/slot", "latency s", "queue"],
            rows,
            title=(
                "Steady-state day (mean of last 5 days); "
                f"budget {scenario.budget:.3f} $/slot, "
                f"realised {result.time_average_cost():.3f}"
            ),
        )
    )

    expensive = price.argsort()[-6:]
    cheap = price.argsort()[:6]
    print()
    print(f"mean clock in 6 cheapest hours : {freqs[cheap].mean():.2f} GHz")
    print(f"mean clock in 6 priciest hours : {freqs[expensive].mean():.2f} GHz")
    print("-> the controller shifts compute speed away from expensive hours.")


if __name__ == "__main__":
    main()
