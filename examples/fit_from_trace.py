"""Trace-driven simulation: fit the paper's state models to recorded data.

The paper assumes the periodic trends behind workloads and prices are
*given*.  An operator has traces instead.  This example closes the loop:

1. generate a "recorded" hourly demand trace and price trace (stand-ins
   for a real export from a monitoring system / the ISO),
2. check the paper's periodic-plus-noise model actually fits
   (periodicity strength), and decompose the traces,
3. fit a PeriodicTaskGenerator and a PeriodicPriceModel from them,
4. simulate BDMA-based DPP against the fitted models.

Run:  python examples/fit_from_trace.py

Environment overrides (used by the CI smoke job):
  REPRO_EXAMPLE_HORIZON  slots to simulate in step 4 (default 96)
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.analysis.decomposition import periodicity_strength
from repro.analysis.text_plots import sparkline
from repro.energy.pricing import PeriodicPriceModel, synthetic_nyiso_trend
from repro.workload.estimation import fit_price_model, fit_task_generator
from repro.workload.traces import synthetic_video_views

HORIZON = int(os.environ.get("REPRO_EXAMPLE_HORIZON", "96"))


def main() -> None:
    rng = np.random.default_rng(11)

    # --- 1. "recorded" traces (30 days, hourly) -------------------------
    demand_trace = synthetic_video_views(30, rng)
    price_trace = PeriodicPriceModel(
        synthetic_nyiso_trend(), noise_std=3.0
    ).generate(24 * 30, rng)
    print("recorded demand (first 3 days):",
          sparkline(demand_trace[: 24 * 3]))
    print("recorded prices (first 3 days):",
          sparkline(price_trace[: 24 * 3]))

    # --- 2. does the paper's model fit? ---------------------------------
    demand_strength = periodicity_strength(demand_trace, 24)
    price_strength = periodicity_strength(price_trace, 24)
    print(f"\nperiodicity strength: demand {demand_strength:.2f}, "
          f"prices {price_strength:.2f} (1 = perfectly periodic)")
    if min(demand_strength, price_strength) < 0.3:
        print("warning: traces are barely periodic; the non-iid model "
              "adds little here")

    # --- 3. fit the models ----------------------------------------------
    num_devices = 30
    tasks = fit_task_generator(
        demand_trace, num_devices=num_devices, rng=rng
    )
    prices = fit_price_model(price_trace)
    print(f"fitted workload profile peaks at hour "
          f"{int(np.argmax(tasks.profile))}, "
          f"noise cv {tasks.noise_cv:.3f}")
    print(f"fitted price trend peaks at hour "
          f"{int(np.argmax([prices.trend(t) for t in range(24)]))}, "
          f"noise std {prices.noise_std:.2f} $/MWh")

    # --- 4. simulate against the fitted models --------------------------
    scenario = repro.make_paper_scenario(
        seed=23,
        config=repro.ScenarioConfig(num_devices=num_devices),
        tasks=tasks,
        prices=prices,
    )
    result = repro.api.run(
        scenario=scenario,
        controller="dpp",
        horizon=HORIZON,
        v=100.0,
        z=2,
        rng_label="controller",
    )
    summary = result.summary()
    print(f"\n{HORIZON // 24}-day simulation against the fitted models:")
    print(f"  time-average latency {summary.mean_latency:.2f} s, "
          f"cost {summary.mean_cost:.3f} $/slot "
          f"(budget {scenario.budget:.3f})")
    print("  queue trajectory:", sparkline(result.backlog))


if __name__ == "__main__":
    main()
