"""Mobility scenario: moving users, correlated channels, handovers.

The paper keeps devices static and redraws channels uniformly; this
example exercises the richer substrate the library ships: random
waypoint mobility, a distance-based path-loss channel with AR(1)
time-correlated fading, and coverage that changes as users walk in and
out of small cells.  The controller transparently rebuilds its strategy
space when coverage changes and repairs carried-over decisions.

Run:  python examples/mobility_scenario.py

Environment overrides (used by the CI smoke job):
  REPRO_EXAMPLE_HORIZON  slots to simulate (default 96)
  REPRO_EXAMPLE_DEVICES  number of mobile devices (default 25)
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.radio.channel import DistanceChannelModel
from repro.radio.fading import CorrelatedChannelModel
from repro.radio.mobility import RandomWaypointMobility

HORIZON = int(os.environ.get("REPRO_EXAMPLE_HORIZON", "96"))
DEVICES = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "25"))


def main() -> None:
    channel = CorrelatedChannelModel(
        DistanceChannelModel(se_min=15.0, se_max=50.0, d_edge=6_000.0),
        rho=0.9,
        std=3.0,
    )
    mobility = RandomWaypointMobility(
        6_000.0, speed_range=(10.0, 30.0), slot_seconds=120.0
    )
    scenario = repro.make_paper_scenario(
        seed=91,
        config=repro.ScenarioConfig(num_devices=DEVICES),
        channel=channel,
        mobility=mobility,
        num_base_stations=5,
        num_macro_stations=1,
        small_cell_radius_range=(800.0, 2_000.0),
    )

    horizon = HORIZON
    handovers = {"bs": 0, "server": 0}
    previous: repro.Assignment | None = None

    def count_handovers(record: repro.SlotRecord) -> None:
        nonlocal previous
        if previous is not None:
            handovers["bs"] += int(np.sum(previous.bs_of != record.assignment.bs_of))
            handovers["server"] += int(
                np.sum(previous.server_of != record.assignment.server_of)
            )
        previous = record.assignment

    result = repro.api.run(
        scenario=scenario,
        controller="dpp",
        horizon=horizon,
        v=100.0,
        z=2,
        rng_label="controller",
        on_slot=count_handovers,
    )

    summary = result.summary()
    rows = [
        ["time-average latency (s)", summary.mean_latency],
        ["time-average cost ($/slot)", summary.mean_cost],
        ["budget ($/slot)", scenario.budget],
        ["base-station handovers / slot", handovers["bs"] / (horizon - 1)],
        ["server migrations / slot", handovers["server"] / (horizon - 1)],
        ["mean decision time (ms)", 1e3 * summary.mean_solve_seconds],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"Mobility run: {scenario.network}, {horizon} slots",
        )
    )
    print()
    print("The controller carries the previous slot's equilibrium forward and")
    print("repairs only devices whose coverage changed; remaining handovers")
    print("are re-equilibration moves driven by channel fluctuations (try")
    print("rho closer to 1 in CorrelatedChannelModel to calm them further).")


if __name__ == "__main__":
    main()
