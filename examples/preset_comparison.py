"""Comparing deployment shapes with repeated-seed replication.

Which topology serves 40 devices better under the same budget policy:
the paper's default, a dense small-cell carpet, a fully meshed metro
deployment, or a handful of low-core edge boxes?  Single runs are noisy,
so each preset is replicated over several seeds and reported with
bootstrap confidence intervals.

Run:  python examples/preset_comparison.py

Each worker run is wired through :func:`repro.api.make_controller`, so
``ReplicationSpec.solver`` accepts any facade controller name.

Environment overrides (used by the CI smoke job):
  REPRO_EXAMPLE_HORIZON  slots per run (default 48)
  REPRO_EXAMPLE_SEEDS    number of replication seeds (default 3)
  REPRO_EXAMPLE_DEVICES  number of mobile devices (default 40)
"""

from __future__ import annotations

import os

from repro.analysis.tables import format_table
from repro.network.presets import PRESETS, get_preset
from repro.sim.replication import ReplicationSpec, run_replications

SEEDS = tuple(range(int(os.environ.get("REPRO_EXAMPLE_SEEDS", "3"))))
NUM_DEVICES = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "40"))
HORIZON = int(os.environ.get("REPRO_EXAMPLE_HORIZON", "48"))


def spec_for(preset_name: str) -> ReplicationSpec:
    builder = get_preset(preset_name, NUM_DEVICES)
    overrides = tuple(
        (field, getattr(builder, field))
        for field in (
            "num_base_stations",
            "num_clusters",
            "servers_per_cluster",
            "num_macro_stations",
            "small_cell_radius_range",
            "wireless_fronthaul_fraction",
            "core_counts",
            "area_size",
        )
    )
    return ReplicationSpec(
        num_devices=NUM_DEVICES,
        horizon=HORIZON,
        z=2,
        warm_start_queue=True,  # measure steady state, not the ramp
        network_overrides=overrides,
    )


def main() -> None:
    rows = []
    for name in sorted(PRESETS):
        report = run_replications(spec_for(name), seeds=SEEDS)
        assert report.latency is not None and report.cost is not None
        rows.append(
            [
                name,
                report.latency.mean,
                f"[{report.latency.ci_low:.2f}, {report.latency.ci_high:.2f}]",
                report.cost.mean,
                f"{100 * report.budget_satisfaction_rate():.0f}%",
            ]
        )
    print(
        format_table(
            ["preset", "latency (s)", "95% CI", "cost ($/slot)", "budget met"],
            rows,
            title=(
                f"Topology presets, {NUM_DEVICES} devices, "
                f"{len(SEEDS)} seeds x 48 slots, BDMA-based DPP"
            ),
        )
    )
    print()
    print("Notes: 'edge-boxes' is compute-starved (16-core servers), so its")
    print("latency is dominated by processing; 'metro-rings' meshes every")
    print("base station to every room, giving the congestion game the most")
    print("freedom.  Budgets differ per preset (servers differ), so compare")
    print("latency at 'budget met', not cost across rows.")


if __name__ == "__main__":
    main()
