"""Quickstart: run BDMA-based DPP on the paper's default scenario.

Builds the Sec. VI-A simulation setup (6 base stations, 2 server rooms
with 8 edge servers each, uniform tasks, synthetic NYISO prices), runs
the online controller for two simulated days through the
:func:`repro.api.run` facade, and prints the headline time-average
statistics.

Run:  python examples/quickstart.py

Environment overrides (used by the CI smoke job):
  REPRO_EXAMPLE_HORIZON  slots to simulate (default 48)
  REPRO_EXAMPLE_DEVICES  number of mobile devices (default 60)
"""

from __future__ import annotations

import os

import repro

HORIZON = int(os.environ.get("REPRO_EXAMPLE_HORIZON", "48"))
DEVICES = int(os.environ.get("REPRO_EXAMPLE_DEVICES", "60"))


def main() -> None:
    # One seed controls everything: topology, workloads, channels, prices.
    scenario = repro.make_paper_scenario(
        seed=7, config=repro.ScenarioConfig(num_devices=DEVICES)
    )
    print(f"Scenario: {scenario.network}, budget {scenario.budget:.3f} $/slot")

    result = repro.api.run(
        scenario=scenario,
        controller="dpp",       # the paper's BDMA-based DPP
        horizon=HORIZON,        # two simulated days of hourly slots
        v=100.0,                # latency/energy trade-off knob (Theorem 4)
        z=3,                    # BDMA alternation rounds (Algorithm 2)
        on_slot=lambda record: print(
            f"slot {record.t:3d}: latency {record.latency:7.3f} s  "
            f"cost {record.cost:6.3f} $  queue {record.backlog_after:6.3f}"
        )
        if record.t % 12 == 0
        else None,
    )

    summary = result.summary()
    print()
    print(f"time-average latency : {summary.mean_latency:.3f} s")
    print(f"time-average cost    : {summary.mean_cost:.3f} $/slot "
          f"(budget {scenario.budget:.3f})")
    print(f"mean queue backlog   : {summary.mean_backlog:.3f}")
    print(f"mean decision time   : {1e3 * summary.mean_solve_seconds:.1f} ms/slot")


if __name__ == "__main__":
    main()
