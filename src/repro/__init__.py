"""repro: a reproduction of "Energy-Aware Online Task Offloading and
Resource Allocation for Mobile Edge Computing" (ICDCS 2023).

The package implements the paper's BDMA-based drift-plus-penalty online
controller and every substrate it runs on: the MEC topology, radio
channels, workloads, energy models, electricity pricing, the baselines
(ROPT, MCBA, exact branch and bound), and a discrete-time simulation
engine.

Quickstart::

    import repro

    result = repro.api.run(controller="dpp", horizon=48, seed=7, v=100.0)
    print(result.summary())

The facade accepts every controller name the paper compares
(``"dpp"``/``"bdma"``, ``"mcba"``, ``"ropt"``, ``"greedy"``,
``"fixed"``); :mod:`repro.obs` adds tracing on top::

    probe = repro.obs.Probe()
    result = repro.api.run(controller="dpp", horizon=48, tracer=probe)
    print(probe.phases.table())

The pieces remain directly composable when the facade is too coarse::

    scenario = repro.make_paper_scenario(seed=7)
    controller = repro.DPPController(
        scenario.network,
        scenario.controller_rng(),
        v=100.0,
        budget=scenario.budget,
    )
    result = repro.run_simulation(
        controller, scenario.fresh_states(48), budget=scenario.budget
    )
"""

from repro._version import __version__
from repro.config import DEFAULT_PERIOD, ScenarioConfig, make_paper_scenario
from repro.core import (
    Assignment,
    BDMAResult,
    BudgetSchedule,
    ConstantBudget,
    PeriodicBudget,
    demand_weighted_budget,
    CGBAResult,
    Decision,
    DPPController,
    OffloadingCongestionGame,
    ResiliencePolicy,
    ResourceAllocation,
    SlotRecord,
    SlotState,
    SolverChaos,
    VirtualQueue,
    dpp_objective,
    optimal_allocation,
    optimal_total_latency,
    solve_p2_bdma,
    solve_p2a_cgba,
    solve_p2b,
    total_latency,
)
from repro.core.cgba import cgba_approximation_ratio
from repro.core.controller import OnlineController
from repro.core.theory import (
    bdma_approximation_ratio,
    check_bdma_guarantee,
    check_cgba_guarantee,
)
from repro.analysis import (
    estimate_equilibrium_backlog,
    jain_index,
    line_chart,
    periodicity_strength,
    seasonal_decompose,
    slot_latency_fairness,
    sparkline,
)
from repro.io import load_result, records_to_jsonl, save_result, summary_to_json
from repro.workload import (
    fit_periodic_profile,
    fit_price_model,
    fit_task_generator,
)
from repro.baselines import (
    BranchAndBoundResult,
    FixedFrequencyController,
    MCBAResult,
    greedy_p2a_solver,
    mcba_p2a_solver,
    p2a_lower_bound,
    ropt_p2a_solver,
    solve_p2a_exact,
    solve_p2a_greedy,
    solve_p2a_mcba,
    solve_p2a_ropt,
)
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    DeadlineError,
    InfeasibleError,
    InjectedFaultError,
    ReproError,
    SolverError,
    TopologyError,
    ValidationError,
)
from repro.network import (
    BaseStation,
    EdgeServer,
    MECNetwork,
    MobileDevice,
    NetworkBuilder,
    ServerCluster,
    StrategySpace,
    build_paper_network,
    validate_network,
)
from repro.sim import (
    ChaosSchedule,
    FaultPlan,
    MarkovOutages,
    NoOutages,
    ReplicationReport,
    ReplicationSpec,
    ReplicationSummary,
    RunCheckpoint,
    Scenario,
    ScriptedIncident,
    SeedBank,
    SimulationResult,
    SimulationSummary,
    StateGenerator,
    run_checkpointed,
    run_replications,
    run_simulation,
)
from repro import obs

# Imported last: the facade pulls from nearly every subpackage above.
from repro import api
from repro import sharding
from repro.api import CellConfig, RunConfig, make_controller

__all__ = [
    "__version__",
    # facade + observability
    "api",
    "make_controller",
    "RunConfig",
    "CellConfig",
    "obs",
    "sharding",
    # configuration
    "make_paper_scenario",
    "ScenarioConfig",
    "DEFAULT_PERIOD",
    # core state/decisions
    "SlotState",
    "Assignment",
    "ResourceAllocation",
    "Decision",
    # core algorithms
    "optimal_allocation",
    "optimal_total_latency",
    "total_latency",
    "OffloadingCongestionGame",
    "solve_p2a_cgba",
    "CGBAResult",
    "cgba_approximation_ratio",
    "solve_p2b",
    "solve_p2_bdma",
    "BDMAResult",
    "VirtualQueue",
    "dpp_objective",
    "DPPController",
    "OnlineController",
    "SlotRecord",
    # resilience
    "ResiliencePolicy",
    "SolverChaos",
    "FaultPlan",
    "ChaosSchedule",
    "ScriptedIncident",
    "RunCheckpoint",
    "run_checkpointed",
    # budget schedules
    "BudgetSchedule",
    "ConstantBudget",
    "PeriodicBudget",
    "demand_weighted_budget",
    # theory bounds
    "bdma_approximation_ratio",
    "check_cgba_guarantee",
    "check_bdma_guarantee",
    # analysis
    "estimate_equilibrium_backlog",
    "seasonal_decompose",
    "periodicity_strength",
    "jain_index",
    "slot_latency_fairness",
    "sparkline",
    "line_chart",
    # io
    "save_result",
    "load_result",
    "records_to_jsonl",
    "summary_to_json",
    # trace fitting
    "fit_periodic_profile",
    "fit_price_model",
    "fit_task_generator",
    # baselines
    "solve_p2a_ropt",
    "ropt_p2a_solver",
    "solve_p2a_mcba",
    "mcba_p2a_solver",
    "MCBAResult",
    "solve_p2a_exact",
    "BranchAndBoundResult",
    "p2a_lower_bound",
    "solve_p2a_greedy",
    "greedy_p2a_solver",
    "FixedFrequencyController",
    # network
    "MECNetwork",
    "BaseStation",
    "EdgeServer",
    "ServerCluster",
    "MobileDevice",
    "NetworkBuilder",
    "build_paper_network",
    "StrategySpace",
    "validate_network",
    # simulation
    "Scenario",
    "StateGenerator",
    "SeedBank",
    "run_simulation",
    "SimulationResult",
    "SimulationSummary",
    "run_replications",
    "ReplicationSpec",
    "ReplicationReport",
    "ReplicationSummary",
    "NoOutages",
    "MarkovOutages",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "InfeasibleError",
    "SolverError",
    "ConvergenceError",
    "ValidationError",
    "DeadlineError",
    "InjectedFaultError",
    "CheckpointError",
]
