"""Analysis helpers: aggregation across runs and table rendering."""

from repro.analysis.aggregate import (
    RunStatistics,
    bootstrap_ci,
    paired_ratio,
    summarize_runs,
)
from repro.analysis.tables import format_table
from repro.analysis.equilibrium import (
    estimate_equilibrium_backlog,
    mean_cost_at_backlog,
)
from repro.analysis.text_plots import line_chart, sparkline
from repro.analysis.decomposition import (
    Decomposition,
    periodicity_strength,
    seasonal_decompose,
)
from repro.analysis.fairness import (
    LatencyFairness,
    deadline_miss_rate,
    jain_index,
    slot_latency_fairness,
)

__all__ = [
    "jain_index",
    "LatencyFairness",
    "slot_latency_fairness",
    "deadline_miss_rate",
    "Decomposition",
    "seasonal_decompose",
    "periodicity_strength",
    "RunStatistics",
    "summarize_runs",
    "bootstrap_ci",
    "paired_ratio",
    "format_table",
    "estimate_equilibrium_backlog",
    "mean_cost_at_backlog",
    "sparkline",
    "line_chart",
]
