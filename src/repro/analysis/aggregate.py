"""Aggregation of repeated stochastic runs.

Experiment harnesses repeat each configuration over several seeds; these
helpers condense the repeats into means with bootstrap confidence
intervals and compute paired ratios between algorithms evaluated on the
same instances (the comparisons the paper's Figs. 4 and 9 report).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng


@dataclass(frozen=True)
class RunStatistics:
    """Mean and spread of a metric across repeated runs."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    num_runs: int


def bootstrap_ci(
    values: FloatArray,
    rng: Rng,
    *,
    confidence: float = 0.95,
    resamples: int = 2_000,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    if values.size == 1:
        return float(values[0]), float(values[0])
    idx = rng.integers(values.size, size=(resamples, values.size))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize_runs(
    values: FloatArray,
    rng: Rng | None = None,
    *,
    confidence: float = 0.95,
) -> RunStatistics:
    """Mean, standard deviation, and bootstrap CI of repeated runs."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    if rng is None:
        rng = np.random.default_rng(0)
    lo, hi = bootstrap_ci(values, rng, confidence=confidence)
    return RunStatistics(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        ci_low=lo,
        ci_high=hi,
        num_runs=int(values.size),
    )


def paired_ratio(numerators: FloatArray, denominators: FloatArray) -> RunStatistics:
    """Statistics of per-instance ratios between two paired metric arrays.

    Used for "CGBA achieves around 1.02x the optimum" style claims:
    ratios are computed instance by instance (same seed, same state)
    before averaging.
    """
    numerators = np.asarray(numerators, dtype=np.float64)
    denominators = np.asarray(denominators, dtype=np.float64)
    if numerators.shape != denominators.shape or numerators.size == 0:
        raise ConfigurationError("paired arrays must match and be non-empty")
    if np.any(denominators <= 0.0):
        raise ConfigurationError("denominators must be positive")
    return summarize_runs(numerators / denominators)
