"""Seasonal decomposition of periodic-plus-noise series.

The paper models every system state as ``trend (periodic, period D) +
iid noise``.  :func:`seasonal_decompose` recovers that structure from a
recorded trace -- a small STL-style decomposition:

1. the *level* is a centred moving average over one period;
2. the *seasonal* component is the per-phase mean of the de-levelled
   series, normalised to sum to zero;
3. the *residual* is what remains.

:func:`periodicity_strength` scores how much of the variance the
periodic structure explains, which is how the trace-fitting helpers
validate the paper's modelling assumption on user data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray


@dataclass(frozen=True)
class Decomposition:
    """Additive decomposition ``series = level + seasonal + residual``.

    Attributes:
        level: Slowly varying baseline (length of the input).
        seasonal: Zero-mean periodic component (length of the input).
        residual: Remainder.
        period: The period used.
    """

    level: FloatArray
    seasonal: FloatArray
    residual: FloatArray
    period: int

    @property
    def seasonal_profile(self) -> FloatArray:
        """One period of the seasonal component (phase 0 first)."""
        return self.seasonal[: self.period].copy()

    def reconstructed(self) -> FloatArray:
        """``level + seasonal + residual`` (equals the input exactly)."""
        return self.level + self.seasonal + self.residual


def _centred_moving_average(series: FloatArray, window: int) -> FloatArray:
    """Centred moving average with edge values extended from the ends."""
    kernel = np.full(window, 1.0 / window)
    if window % 2 == 0:
        # Classic 2xD trick: average two consecutive D-windows.
        inner = np.convolve(series, kernel, mode="valid")
        level = 0.5 * (inner[:-1] + inner[1:])
        pad_front = (window // 2)
        pad_back = series.size - level.size - pad_front
    else:
        level = np.convolve(series, kernel, mode="valid")
        pad_front = window // 2
        pad_back = series.size - level.size - pad_front
    return np.concatenate(
        [np.full(pad_front, level[0]), level, np.full(pad_back, level[-1])]
    )


def seasonal_decompose(series: FloatArray, period: int) -> Decomposition:
    """Decompose *series* into level + seasonal + residual.

    Args:
        series: The recorded trace, at least two full periods long.
        period: The candidate period ``D`` (e.g. 24 for hourly data).

    Raises:
        ConfigurationError: If the series is shorter than two periods or
            the period is not positive.
    """
    series = np.asarray(series, dtype=np.float64)
    if period <= 1:
        raise ConfigurationError("period must be at least 2")
    if series.size < 2 * period:
        raise ConfigurationError(
            f"need at least two periods ({2 * period} points), "
            f"got {series.size}"
        )
    level = _centred_moving_average(series, period)
    detrended = series - level
    phases = np.arange(series.size) % period
    profile = np.array(
        [detrended[phases == p].mean() for p in range(period)]
    )
    profile = profile - profile.mean()  # seasonal sums to zero
    seasonal = profile[phases]
    residual = series - level - seasonal
    return Decomposition(
        level=level, seasonal=seasonal, residual=residual, period=period
    )


def periodicity_strength(series: FloatArray, period: int) -> float:
    """Fraction of (de-levelled) variance explained by the seasonal part.

    Returns a value in ``[0, 1]``: near 1 for a cleanly periodic series,
    near 0 for white noise.  This is the statistic used to decide whether
    the paper's non-iid model fits a user-provided trace.
    """
    decomposition = seasonal_decompose(series, period)
    detrended = decomposition.seasonal + decomposition.residual
    total = float(np.var(detrended))
    if total <= 0.0:
        return 0.0
    explained = float(np.var(decomposition.seasonal))
    return min(explained / total, 1.0)
