"""Steady-state analysis of the DPP virtual queue.

Under BDMA-based DPP the backlog converges to the level ``Q*`` at which
the *expected* per-slot energy cost of the P2-B frequency response
equals the budget:

    E[ C( Omega*(Q*) ) ] = Cbar.

Because P2-B's frequencies depend on the backlog only through the
pressure ``Q p_t / V``, the expected cost is non-increasing in ``Q`` and
``Q*`` can be found by bisection over a sample of system states.  Two
uses:

* analysing a deployment without simulating thousands of ramp-up slots
  (the converged-backlog curves of the paper's Figs. 7-8);
* warm-starting a simulation at its steady state -- Theorem 4 holds for
  any ``Q(1)``, so starting at ``Q*`` merely removes the transient.
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from repro.core.cgba import solve_p2a_cgba
from repro.core.drift_penalty import energy_cost
from repro.core.p2b import solve_p2b
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.types import Rng

logger = logging.getLogger(__name__)


def mean_cost_at_backlog(
    network: MECNetwork,
    states: Sequence[SlotState],
    assignments: Sequence[Assignment],
    *,
    backlog: float,
    v: float,
) -> float:
    """Expected per-slot energy cost if the queue sat at *backlog*.

    For each sampled state the P2-B frequency response is computed under
    the given backlog and the resulting cost averaged.
    """
    costs = []
    for state, assignment in zip(states, assignments):
        frequencies = solve_p2b(
            network, state, assignment, queue_backlog=backlog, v=v
        )
        costs.append(
            energy_cost(
                network,
                frequencies,
                state.price,
                available=state.available_servers,
            )
        )
    return float(np.mean(costs))


def estimate_equilibrium_backlog(
    network: MECNetwork,
    states: Sequence[SlotState],
    rng: Rng,
    *,
    v: float,
    budget: float,
    tol: float = 1e-3,
    max_doublings: int = 60,
) -> float:
    """Bisect for the steady-state backlog ``Q*`` of BDMA-based DPP.

    Args:
        network: Static topology.
        states: A representative sample of slot states -- at least one
            full period of the price/workload trends for an unbiased
            average.
        rng: Randomness for the per-state CGBA assignment solves.
        v: The DPP parameter ``V``.
        budget: The cost budget ``Cbar``.
        tol: Relative tolerance on the bisection interval.
        max_doublings: Cap on the exponential search for the upper
            bracket.

    Returns:
        ``Q*`` (0.0 when even permanent full speed fits the budget).

    Raises:
        ConfigurationError: If *states* is empty, or the budget is
            infeasible (below the all-at-``F^L`` average cost, so no
            backlog can satisfy it).
    """
    states = list(states)
    if not states:
        raise ConfigurationError("need at least one sampled state")

    # Fix the assignments once at mid-range frequencies: the discrete
    # decision is only weakly coupled to the backlog (through Omega) and
    # the cost responds to Q via P2-B far more strongly.
    mid = 0.5 * (network.freq_min + network.freq_max)
    assignments = []
    for state in states:
        space = StrategySpace(
            network, state.coverage(), state.available_servers
        )
        assignments.append(
            solve_p2a_cgba(network, state, space, mid, rng).assignment
        )

    def mean_cost(q: float) -> float:
        return mean_cost_at_backlog(
            network, states, assignments, backlog=q, v=v
        )

    if mean_cost(0.0) <= budget:
        return 0.0
    # Exponential search for an upper bracket where the budget is met.
    hi = max(v, 1.0)
    for _ in range(max_doublings):
        if mean_cost(hi) <= budget:
            break
        hi *= 2.0
    else:
        raise ConfigurationError(
            "budget is infeasible: even arbitrarily large backlogs "
            "(all servers at F^L) cost more than the budget"
        )
    lo = 0.0
    while (hi - lo) > tol * max(1.0, hi):
        mid_q = 0.5 * (lo + hi)
        if mean_cost(mid_q) <= budget:
            hi = mid_q
        else:
            lo = mid_q
    logger.debug(
        "equilibrium backlog: Q*=%.3f for V=%.1f budget=%.4f "
        "(%d sampled states)",
        hi,
        v,
        budget,
        len(states),
    )
    return hi
