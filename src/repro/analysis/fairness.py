"""Per-device fairness metrics.

The paper optimises the *sum* of device latencies; Lemma 1's square-root
proportional shares are what that objective induces.  These metrics let
experiments look one level deeper: how evenly a decision treats devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import SlotRecord
from repro.core.latency import per_device_latency
from repro.core.state import SlotState
from repro.exceptions import ConfigurationError
from repro.network.topology import MECNetwork
from repro.types import FloatArray


def jain_index(values: FloatArray) -> float:
    """Jain's fairness index ``(sum x)^2 / (n sum x^2)`` in ``(0, 1]``.

    1 means perfectly equal allocations; ``1/n`` means one device gets
    everything.

    Raises:
        ConfigurationError: On an empty or all-zero input.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot compute fairness of an empty vector")
    if np.any(values < 0.0):
        raise ConfigurationError("fairness is defined for non-negative values")
    square_sum = float(np.sum(values * values))
    if square_sum == 0.0:
        raise ConfigurationError("all-zero vector has no fairness index")
    total = float(np.sum(values))
    return total * total / (values.size * square_sum)


def deadline_miss_rate(
    latencies: FloatArray, deadline: float
) -> float:
    """Fraction of devices whose latency exceeds *deadline* seconds.

    The paper optimises the latency *sum*; service-level analyses care
    about per-device deadlines.  Pair with
    :func:`repro.core.latency.per_device_latency`.

    Raises:
        ConfigurationError: On an empty input or non-positive deadline.
    """
    latencies = np.asarray(latencies, dtype=np.float64)
    if latencies.size == 0:
        raise ConfigurationError("no latencies to evaluate")
    if deadline <= 0.0:
        raise ConfigurationError("deadline must be positive")
    return float(np.mean(latencies > deadline))


@dataclass(frozen=True)
class LatencyFairness:
    """Distributional statistics of per-device latency in one slot."""

    mean: float
    worst: float
    p95: float
    jain: float

    @property
    def worst_to_mean(self) -> float:
        """Tail ratio: how much worse the unluckiest device fares."""
        return self.worst / self.mean if self.mean > 0 else float("inf")


def slot_latency_fairness(
    network: MECNetwork, state: SlotState, record: SlotRecord
) -> LatencyFairness:
    """Per-device latency statistics for one executed slot."""
    latencies = per_device_latency(
        network,
        state,
        record.assignment,
        record.allocation,
        record.frequencies,
    )
    positive = latencies[np.isfinite(latencies)]
    if positive.size == 0:
        raise ConfigurationError("no finite per-device latencies in record")
    return LatencyFairness(
        mean=float(positive.mean()),
        worst=float(positive.max()),
        p95=float(np.quantile(positive, 0.95)),
        jain=jain_index(positive),
    )
