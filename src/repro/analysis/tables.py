"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows and series the paper plots;
this keeps the formatting in one place so every bench reads alike.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row cell values; floats are formatted with *float_format*,
            everything else with ``str``.
        title: Optional title line printed above the table.
        float_format: Format spec applied to float cells.

    Returns:
        The rendered table as one string (no trailing newline).
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
