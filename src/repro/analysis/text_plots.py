"""Terminal-friendly plotting: sparklines and block line charts.

The examples and the CLI render trajectories (queue backlogs, running
cost averages) without a plotting dependency.  Output is plain unicode;
pass ``ascii_only=True`` where the terminal cannot render block glyphs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray

_BLOCKS = "▁▂▃▄▅▆▇█"
_ASCII = " .:-=+*#%@"


def sparkline(
    values: FloatArray, *, ascii_only: bool = False, empty: str | None = None
) -> str:
    """One-line sparkline of a series.

    Values are min-max scaled into the glyph ramp; a constant series
    renders as a flat mid-level line.

    Args:
        values: The series to draw.
        ascii_only: Use the 7-bit ASCII ramp instead of block glyphs.
        empty: Placeholder returned for an empty series (e.g. the live
            dashboard's ``"(no data)"``); when ``None`` an empty series
            raises instead.

    Raises:
        ConfigurationError: On an empty series, unless *empty* is given.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        if empty is not None:
            return empty
        raise ConfigurationError("cannot sparkline an empty series")
    ramp = _ASCII if ascii_only else _BLOCKS
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-300:
        return ramp[len(ramp) // 2] * values.size
    scaled = (values - lo) / (hi - lo)
    indices = np.minimum((scaled * len(ramp)).astype(int), len(ramp) - 1)
    return "".join(ramp[i] for i in indices)


def line_chart(
    values: FloatArray,
    *,
    width: int = 72,
    height: int = 12,
    title: str | None = None,
    y_format: str = "{:.3g}",
) -> str:
    """A multi-row block chart with a y-axis scale.

    The series is resampled to *width* columns (mean per bucket) and
    drawn as filled columns; the top and bottom rows are labelled with
    the data range.

    Args:
        values: The series to draw.
        width: Number of character columns.
        height: Number of character rows.
        title: Optional title line.
        y_format: Format spec for the axis labels.

    Returns:
        The chart as a newline-joined string.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot chart an empty series")
    if width < 8 or height < 2:
        raise ConfigurationError("need width >= 8 and height >= 2")

    # Resample to `width` buckets by mean.
    if values.size >= width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        resampled = np.array(
            [values[a:b].mean() if b > a else values[min(a, values.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    else:
        resampled = np.interp(
            np.linspace(0, values.size - 1, width),
            np.arange(values.size),
            values,
        )

    lo, hi = float(resampled.min()), float(resampled.max())
    span = hi - lo if hi > lo else 1.0
    levels = np.clip(((resampled - lo) / span) * height, 0.0, height)

    rows: list[str] = []
    for row in range(height, 0, -1):
        cells = []
        for level in levels:
            if level >= row:
                cells.append("█")
            elif level > row - 1:
                # Partial block: pick a glyph by the fractional fill.
                frac = level - (row - 1)
                cells.append(_BLOCKS[min(int(frac * 8), 7)])
            else:
                cells.append(" ")
        label = y_format.format(hi) if row == height else (
            y_format.format(lo) if row == 1 else ""
        )
        rows.append(f"{label:>10} |" + "".join(cells))
    out = []
    if title:
        out.append(title)
    out.extend(rows)
    out.append(" " * 11 + "+" + "-" * width)
    return "\n".join(out)
