"""The unified run facade: one entry point for every controller.

Before this module existed, the CLI, the experiments, the examples, and
the replication workers each re-implemented the same wiring: map a
solver name to a P2-A solver and a ``z``, derive the rng stream,
optionally warm-start the virtual queue at its equilibrium, then drive
:func:`repro.sim.engine.run_simulation`.  :func:`make_controller` and
:func:`run` are that wiring, once.

Quickstart::

    import repro

    result = repro.api.run(controller="dpp", horizon=48, seed=7)
    print(result.summary())

    # Or with an explicit scenario, tracer, and baseline controller:
    scenario = repro.make_paper_scenario(seed=7)
    probe = repro.obs.Probe()
    result = repro.api.run(
        scenario=scenario, controller="mcba", horizon=48, tracer=probe
    )
    print(probe.phases.table())
"""

from __future__ import annotations

from repro.analysis.equilibrium import estimate_equilibrium_backlog
from repro.baselines.fixed_frequency import FixedFrequencyController
from repro.baselines.greedy import greedy_p2a_solver
from repro.baselines.mcba import mcba_p2a_solver
from repro.baselines.ropt import ropt_p2a_solver
from repro.config import DEFAULT_PERIOD, ScenarioConfig, make_paper_scenario
from repro.core.bdma import P2ASolver
from repro.core.controller import DPPController, OnlineController
from repro.exceptions import ConfigurationError
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.types import Rng

__all__ = ["CONTROLLER_NAMES", "make_controller", "run"]

#: Controller names :func:`make_controller` understands.  ``"bdma"`` is
#: an alias of ``"dpp"`` (the paper's BDMA-based DPP); ``"mcba"`` and
#: ``"ropt"`` are the paper's baselines as DPP P2-A solvers;
#: ``"greedy"`` is the one-pass ablation solver; ``"fixed"`` pins every
#: server clock (``fraction=`` selects where in the range).
CONTROLLER_NAMES = ("dpp", "bdma", "mcba", "ropt", "greedy", "fixed")

#: Default BDMA alternation rounds per controller name.  Single-shot
#: P2-A solvers (MCBA, ROPT, greedy) gain nothing from re-alternation,
#: mirroring the paper's baseline setups.
_DEFAULT_Z = {"dpp": 3, "bdma": 3, "mcba": 1, "ropt": 1, "greedy": 1, "fixed": 1}


def _p2a_solver_for(name: str, params: dict) -> P2ASolver | None:
    """The P2-A solver behind a controller name (``None`` = CGBA)."""
    if name in ("dpp", "bdma"):
        return None
    if name == "mcba":
        keys = ("iterations", "initial_temperature_fraction", "cooling")
        return mcba_p2a_solver(**{k: params.pop(k) for k in keys if k in params})
    if name == "ropt":
        return ropt_p2a_solver()
    if name == "greedy":
        keys = ("joint", "shuffle")
        return greedy_p2a_solver(**{k: params.pop(k) for k in keys if k in params})
    raise ConfigurationError(
        f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
    )


def make_controller(
    name: str,
    scenario: Scenario | None = None,
    *,
    v: float = 100.0,
    z: int | None = None,
    budget: float | None = None,
    network: MECNetwork | None = None,
    rng: Rng | None = None,
    rng_label: str | None = None,
    equilibrium_rng_label: str | None = None,
    initial_backlog: float = 0.0,
    warm_start_queue: bool = False,
    tracer: "Tracer | None" = None,
    engine_backend: str | None = None,
    **params: object,
) -> OnlineController:
    """Build a named controller wired to a scenario (or a bare network).

    Args:
        name: One of :data:`CONTROLLER_NAMES`.
        scenario: The scenario supplying network, rng streams, and the
            default budget.  May be omitted when ``network``, ``rng``,
            and ``budget`` are all given explicitly (e.g. hand-built
            topologies).
        v: DPP trade-off parameter ``V`` (ignored by ``"fixed"``).
        z: BDMA alternation rounds; defaults to 3 for ``"dpp"`` and 1
            for the single-shot baselines.
        budget: Energy-cost budget ``Cbar``; defaults to
            ``scenario.budget``.
        network: Topology override when no scenario is given.
        rng: Controller rng override; defaults to
            ``scenario.controller_rng(rng_label or name)``.
        rng_label: Name of the scenario rng stream to draw (so callers
            can keep historical stream names for reproducibility).
        equilibrium_rng_label: Stream name for the warm-start
            equilibrium estimate (default ``"<rng_label>-equilibrium"``).
        initial_backlog: ``Q(1)``; overridden by ``warm_start_queue``.
        warm_start_queue: Start the virtual queue at its estimated
            equilibrium backlog (requires a scenario).
        tracer: Observability tracer threaded into the controller.
        engine_backend: Array-kernel backend (``"numpy"`` or ``"jit"``)
            for the DPP family's hot loops; see :mod:`repro.kernels`.
            Bit-identical across backends -- wall-clock only.  The
            ``"fixed"`` controller has no array hot loop and ignores it.
        **params: Controller-family extras -- e.g. ``iterations=`` for
            MCBA, ``joint=`` for greedy, ``fraction=``/``slack=`` for
            fixed, ``warm_start=``/``carry_over=`` for DPP.

    Returns:
        A ready-to-run :class:`~repro.core.controller.OnlineController`.

    Raises:
        ConfigurationError: On an unknown name, a missing scenario where
            one is required, or unconsumed ``params``.
    """
    if name not in CONTROLLER_NAMES:
        raise ConfigurationError(
            f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
        )
    if scenario is None and (network is None or rng is None or budget is None):
        raise ConfigurationError(
            "make_controller needs a scenario, or explicit network+rng+budget"
        )
    if network is None:
        assert scenario is not None
        network = scenario.network
    if budget is None:
        assert scenario is not None
        budget = scenario.budget
    if rng is None:
        assert scenario is not None
        rng = scenario.controller_rng(rng_label or name)
    if warm_start_queue:
        if scenario is None:
            raise ConfigurationError("warm_start_queue requires a scenario")
        label = equilibrium_rng_label or f"{rng_label or name}-equilibrium"
        initial_backlog = estimate_equilibrium_backlog(
            network,
            list(scenario.fresh_states(DEFAULT_PERIOD)),
            scenario.controller_rng(label),
            v=v,
            budget=budget,
        )

    if name == "fixed":
        controller: OnlineController = FixedFrequencyController(
            network,
            rng,
            fraction=float(params.pop("fraction", 1.0)),  # type: ignore[arg-type]
            budget=budget,
            slack=float(params.pop("slack", 0.0)),  # type: ignore[arg-type]
            tracer=tracer,
        )
    else:
        solver = _p2a_solver_for(name, params)
        controller = DPPController(
            network,
            rng,
            v=v,
            budget=budget,
            z=_DEFAULT_Z[name] if z is None or name not in ("dpp", "bdma") else z,
            p2a_solver=solver,
            initial_backlog=initial_backlog,
            tracer=tracer,
            engine_backend=engine_backend,
            **params,  # type: ignore[arg-type]
        )
    if name == "fixed" and params:
        raise ConfigurationError(f"unused parameters for 'fixed': {sorted(params)}")
    return controller


def run(
    *,
    scenario: Scenario | None = None,
    seed: int = 7,
    scenario_config: ScenarioConfig | None = None,
    controller: "str | OnlineController" = "dpp",
    horizon: int = 48,
    v: float = 100.0,
    z: int | None = None,
    budget: float | None = None,
    tracer: "Tracer | None" = None,
    engine_backend: str | None = None,
    monitors: "object | None" = None,
    keep_records: bool = False,
    on_slot=None,
    warm_start_queue: bool = False,
    compiled_states: bool = True,
    state_chunk: int = 32,
    checkpoint: "str | None" = None,
    checkpoint_every: int = 16,
    resume: bool = False,
    **controller_params: object,
) -> SimulationResult:
    """Run one simulation end to end and return its result.

    The single public entry point: builds the scenario (unless given),
    the controller (unless an instance is given), threads the tracer
    through both the controller and the simulation loop, and runs
    ``horizon`` slots.

    Args:
        scenario: Scenario to simulate; built from ``seed`` /
            ``scenario_config`` via
            :func:`repro.config.make_paper_scenario` when omitted.
        seed: Root seed for the default scenario.
        scenario_config: Knobs for the default scenario.
        controller: A name from :data:`CONTROLLER_NAMES` or an already
            built :class:`~repro.core.controller.OnlineController`.
        horizon: Number of slots to simulate.
        v: DPP trade-off parameter ``V``.
        z: BDMA alternation rounds (see :func:`make_controller`).
        budget: Energy budget; ``scenario.budget`` when omitted.
        tracer: Observability tracer (e.g. :class:`repro.obs.Probe`).
        engine_backend: Array-kernel backend for the controller's hot
            loops (``"numpy"``/``"jit"``; see :mod:`repro.kernels`).
            Results are bit-identical across backends -- only the slot
            throughput changes.  Ignored when ``controller`` is an
            already built instance (configure it at construction).
        monitors: Health monitors to watch the run -- a
            :class:`repro.obs.monitors.MonitorSuite`, an iterable of
            :class:`~repro.obs.monitors.Monitor`, or ``True`` for
            :func:`repro.obs.monitors.default_monitors` wired to the
            run's budget and network.  A recording tracer is created
            automatically when none was given; the finished
            :class:`~repro.obs.monitors.HealthReport` lands on
            ``result.health``.
        keep_records: Retain full per-slot records on the result.
        on_slot: Per-slot progress callback.
        warm_start_queue: Start the queue at its estimated equilibrium.
        compiled_states: Feed the controller through the compiled state
            pipeline
            (:meth:`~repro.sim.scenario.Scenario.fresh_compiled_states`).
            Bit-identical states either way; the compiled path draws
            them in chunks.  Disable to exercise the per-slot path.
        state_chunk: Slots per compiled chunk (with ``compiled_states``).
        checkpoint: Path of a run-checkpoint file.  When given, the run
            snapshots its full cross-slot state there every
            ``checkpoint_every`` slots (atomically) via
            :func:`repro.sim.checkpoint.run_checkpointed`.
        checkpoint_every: Slots between snapshots.
        resume: With ``checkpoint=``, continue from an existing matching
            snapshot instead of starting fresh; resumed trajectories are
            bit-identical to an uninterrupted run's.
        **controller_params: Passed to :func:`make_controller`
            (``rng_label=``, ``fraction=``, ``iterations=``, ...).

    Returns:
        The :class:`~repro.sim.results.SimulationResult`.
    """
    if scenario is None:
        scenario = make_paper_scenario(seed, config=scenario_config)
    if budget is None:
        budget = scenario.budget

    suite = None
    if monitors is not None and monitors is not False:
        from repro.obs.monitors import MonitorSuite, default_monitors
        from repro.obs.probe import Probe

        if isinstance(monitors, MonitorSuite):
            suite = monitors
        elif monitors is True:
            suite = MonitorSuite(
                default_monitors(budget=budget, network=scenario.network)
            )
        else:
            suite = MonitorSuite(monitors)  # type: ignore[arg-type]
        if tracer is None or not tracer.enabled:
            tracer = Probe()
        suite.attach(tracer)  # type: ignore[arg-type]

    if isinstance(controller, OnlineController):
        ctrl = controller
    else:
        ctrl = make_controller(
            controller,
            scenario,
            v=v,
            z=z,
            budget=budget,
            warm_start_queue=warm_start_queue,
            tracer=tracer,
            engine_backend=engine_backend,
            **controller_params,  # type: ignore[arg-type]
        )
    if checkpoint is not None:
        from repro.sim.checkpoint import run_checkpointed

        result = run_checkpointed(
            scenario,
            ctrl,
            horizon=horizon,
            path=checkpoint,
            budget=budget,
            every=checkpoint_every,
            resume=resume,
            tracer=tracer,
            keep_records=keep_records,
            on_slot=on_slot,
            compiled=compiled_states,
            chunk=state_chunk,
        )
        if suite is not None:
            result.health = suite.finish()
        return result
    states = (
        scenario.fresh_compiled_states(horizon, chunk=state_chunk, tracer=tracer)
        if compiled_states
        else scenario.fresh_states(horizon, tracer=tracer)
    )
    result = run_simulation(
        ctrl,
        states,
        budget=budget,
        keep_records=keep_records,
        on_slot=on_slot,
        tracer=tracer,
    )
    if suite is not None:
        result.health = suite.finish()
    return result
