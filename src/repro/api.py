"""The unified run facade: one entry point for every controller.

Before this module existed, the CLI, the experiments, the examples, and
the replication workers each re-implemented the same wiring: map a
solver name to a P2-A solver and a ``z``, derive the rng stream,
optionally warm-start the virtual queue at its equilibrium, then drive
:func:`repro.sim.engine.run_simulation`.  :func:`make_controller` and
:func:`run` are that wiring, once.

As the facade grew (checkpoints, kernels, monitors, and now multi-cell
sharding) the flat keyword list did too, so the knobs are grouped into
a frozen :class:`RunConfig` of cohesive blocks -- :class:`EngineConfig`,
:class:`CheckpointConfig`, :class:`ObsConfig`, :class:`CellConfig`.
``run(config=...)`` accepts one, bare keywords keep working and
*override* the config, and :meth:`RunConfig.to_dict` feeds
:class:`repro.obs.manifest.RunManifest` so provenance captures the full
configuration.

Quickstart::

    import repro

    config = repro.api.RunConfig(controller="dpp", horizon=48, seed=7)
    result = repro.api.run(config=config)
    print(result.summary())

    # Bare keywords still work, and override the config:
    result = repro.api.run(config=config, horizon=96)

    # Or with an explicit scenario, tracer, and baseline controller:
    scenario = repro.make_paper_scenario(seed=7)
    probe = repro.obs.Probe()
    result = repro.api.run(
        scenario=scenario, controller="mcba", horizon=48, tracer=probe
    )
    print(probe.phases.table())
"""

from __future__ import annotations

import difflib
from dataclasses import asdict, dataclass, field, is_dataclass

from repro.analysis.equilibrium import estimate_equilibrium_backlog
from repro.baselines.fixed_frequency import FixedFrequencyController
from repro.baselines.greedy import greedy_p2a_solver
from repro.baselines.mcba import mcba_p2a_solver
from repro.baselines.ropt import ropt_p2a_solver
from repro.config import DEFAULT_PERIOD, ScenarioConfig, make_paper_scenario
from repro.core.bdma import P2ASolver
from repro.core.budget import BudgetSchedule
from repro.core.controller import DPPController, OnlineController
from repro.exceptions import ConfigurationError
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.types import Rng

__all__ = [
    "CONTROLLER_NAMES",
    "CellConfig",
    "CheckpointConfig",
    "EngineConfig",
    "ObsConfig",
    "RunConfig",
    "make_controller",
    "run",
]

#: Controller names :func:`make_controller` understands.  ``"bdma"`` is
#: an alias of ``"dpp"`` (the paper's BDMA-based DPP); ``"mcba"`` and
#: ``"ropt"`` are the paper's baselines as DPP P2-A solvers;
#: ``"greedy"`` is the one-pass ablation solver; ``"fixed"`` pins every
#: server clock (``fraction=`` selects where in the range).
CONTROLLER_NAMES = ("dpp", "bdma", "mcba", "ropt", "greedy", "fixed")

#: Default BDMA alternation rounds per controller name.  Single-shot
#: P2-A solvers (MCBA, ROPT, greedy) gain nothing from re-alternation,
#: mirroring the paper's baseline setups.
_DEFAULT_Z = {"dpp": 3, "bdma": 3, "mcba": 1, "ropt": 1, "greedy": 1, "fixed": 1}

#: Extra construction knobs each controller family accepts via
#: ``**params`` (beyond :func:`make_controller`'s named keywords).
_DPP_KNOBS = frozenset(
    {"warm_start", "carry_over", "freq_carry_over", "resilience", "overload"}
)
_FAMILY_KNOBS: "dict[str, frozenset[str]]" = {
    "dpp": _DPP_KNOBS,
    "bdma": _DPP_KNOBS,
    "ropt": _DPP_KNOBS,
    "mcba": _DPP_KNOBS | {"iterations", "initial_temperature_fraction", "cooling"},
    "greedy": _DPP_KNOBS | {"joint", "shuffle"},
    "fixed": frozenset({"fraction", "slack"}),
}


def _validate_params(name: str, params: dict) -> None:
    """Reject unknown family knobs with a did-you-mean message."""
    allowed = _FAMILY_KNOBS[name]
    unknown = sorted(set(params) - allowed)
    if not unknown:
        return
    described = []
    for key in unknown:
        close = difflib.get_close_matches(key, sorted(allowed), n=1)
        described.append(f"{key!r} (did you mean {close[0]!r}?)" if close else repr(key))
    raise ConfigurationError(
        f"unknown parameter(s) for controller {name!r}: {', '.join(described)}; "
        f"accepted knobs: {sorted(allowed)}"
    )


def _p2a_solver_for(name: str, params: dict) -> P2ASolver | None:
    """The P2-A solver behind a controller name (``None`` = CGBA)."""
    if name in ("dpp", "bdma"):
        return None
    if name == "mcba":
        keys = ("iterations", "initial_temperature_fraction", "cooling")
        return mcba_p2a_solver(**{k: params.pop(k) for k in keys if k in params})
    if name == "ropt":
        return ropt_p2a_solver()
    if name == "greedy":
        keys = ("joint", "shuffle")
        return greedy_p2a_solver(**{k: params.pop(k) for k in keys if k in params})
    raise ConfigurationError(
        f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
    )


def make_controller(
    name: str,
    scenario: Scenario | None = None,
    *,
    v: float = 100.0,
    z: int | None = None,
    budget: "float | BudgetSchedule | None" = None,
    network: MECNetwork | None = None,
    rng: Rng | None = None,
    rng_label: str | None = None,
    equilibrium_rng_label: str | None = None,
    initial_backlog: float = 0.0,
    warm_start_queue: bool = False,
    tracer: "Tracer | None" = None,
    engine_backend: str | None = None,
    **params: object,
) -> OnlineController:
    """Build a named controller wired to a scenario (or a bare network).

    Args:
        name: One of :data:`CONTROLLER_NAMES`.
        scenario: The scenario supplying network, rng streams, and the
            default budget.  May be omitted when ``network``, ``rng``,
            and ``budget`` are all given explicitly (e.g. hand-built
            topologies).
        v: DPP trade-off parameter ``V`` (ignored by ``"fixed"``).
        z: BDMA alternation rounds; defaults to 3 for ``"dpp"`` and 1
            for the single-shot baselines.
        budget: Energy-cost budget ``Cbar`` -- a number or, for the DPP
            family, any :class:`~repro.core.budget.BudgetSchedule`;
            defaults to ``scenario.budget``.
        network: Topology override when no scenario is given.
        rng: Controller rng override; defaults to
            ``scenario.controller_rng(rng_label or name)``.
        rng_label: Name of the scenario rng stream to draw (so callers
            can keep historical stream names for reproducibility).
        equilibrium_rng_label: Stream name for the warm-start
            equilibrium estimate (default ``"<rng_label>-equilibrium"``).
        initial_backlog: ``Q(1)``; overridden by ``warm_start_queue``.
        warm_start_queue: Start the virtual queue at its estimated
            equilibrium backlog (requires a scenario).
        tracer: Observability tracer threaded into the controller.
        engine_backend: Array-kernel backend (``"numpy"`` or ``"jit"``)
            for the DPP family's hot loops; see :mod:`repro.kernels`.
            Bit-identical across backends -- wall-clock only.  The
            ``"fixed"`` controller has no array hot loop and ignores it.
        **params: Controller-family extras -- e.g. ``iterations=`` for
            MCBA, ``joint=`` for greedy, ``fraction=``/``slack=`` for
            fixed, ``warm_start=``/``carry_over=`` for DPP.  Unknown
            keys are rejected up front with the family's accepted list
            (and a did-you-mean hint).

    Returns:
        A ready-to-run :class:`~repro.core.controller.OnlineController`.

    Raises:
        ConfigurationError: On an unknown name, a missing scenario where
            one is required, or unknown ``params`` keys.
    """
    if name not in CONTROLLER_NAMES:
        raise ConfigurationError(
            f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
        )
    _validate_params(name, params)
    if scenario is None and (network is None or rng is None or budget is None):
        raise ConfigurationError(
            "make_controller needs a scenario, or explicit network+rng+budget"
        )
    if network is None:
        assert scenario is not None
        network = scenario.network
    if budget is None:
        assert scenario is not None
        budget = scenario.budget
    if rng is None:
        assert scenario is not None
        rng = scenario.controller_rng(rng_label or name)
    if warm_start_queue:
        if scenario is None:
            raise ConfigurationError("warm_start_queue requires a scenario")
        label = equilibrium_rng_label or f"{rng_label or name}-equilibrium"
        initial_backlog = estimate_equilibrium_backlog(
            network,
            list(scenario.fresh_states(DEFAULT_PERIOD)),
            scenario.controller_rng(label),
            v=v,
            budget=budget.average if isinstance(budget, BudgetSchedule) else budget,
        )

    if name == "fixed":
        if isinstance(budget, BudgetSchedule):
            budget = budget.average
        controller: OnlineController = FixedFrequencyController(
            network,
            rng,
            fraction=float(params.pop("fraction", 1.0)),  # type: ignore[arg-type]
            budget=budget,
            slack=float(params.pop("slack", 0.0)),  # type: ignore[arg-type]
            tracer=tracer,
        )
    else:
        solver = _p2a_solver_for(name, params)
        controller = DPPController(
            network,
            rng,
            v=v,
            budget=budget,
            z=_DEFAULT_Z[name] if z is None or name not in ("dpp", "bdma") else z,
            p2a_solver=solver,
            initial_backlog=initial_backlog,
            tracer=tracer,
            engine_backend=engine_backend,
            **params,  # type: ignore[arg-type]
        )
    return controller


# -- the RunConfig blocks ------------------------------------------------


@dataclass(frozen=True)
class EngineConfig:
    """How states are drawn and kernels executed.

    Attributes:
        backend: Array-kernel backend for the controller's hot loops
            (``"numpy"``/``"jit"``; ``None`` = default).  Bit-identical
            across backends -- wall-clock only.
        compiled_states: Feed the controller through the compiled state
            pipeline (bit-identical states, drawn in chunks).
        state_chunk: Slots per compiled chunk.
    """

    backend: str | None = None
    compiled_states: bool = True
    state_chunk: int = 32


@dataclass(frozen=True)
class CheckpointConfig:
    """Snapshot/resume policy (see :mod:`repro.sim.checkpoint`).

    Attributes:
        path: Checkpoint file; ``None`` disables checkpointing.
        every: Slots between snapshots.
        resume: Continue from an existing matching snapshot.
    """

    path: str | None = None
    every: int = 16
    resume: bool = False


@dataclass(frozen=True)
class ObsConfig:
    """Observability defaults carried by the config.

    Attributes:
        monitors: Attach :func:`repro.obs.monitors.default_monitors`.
        keep_records: Retain full per-slot records on the result.
        metrics_port: Serve live OpenMetrics on this local port for the
            duration of the run (``0`` picks an ephemeral port; ``None``
            disables the endpoint).  See :mod:`repro.obs.server`.
    """

    monitors: bool = False
    keep_records: bool = False
    metrics_port: int | None = None


@dataclass(frozen=True)
class CellConfig:
    """Multi-cell sharding block (see :mod:`repro.sim.sharded`).

    Attributes:
        count: Number of cells to partition the network into (1 runs
            the sharded engine over the whole network -- bit-identical
            to an unsharded run).
        epoch: Slots between budget-coordinator re-splits.
        coordinator: ``"proportional"`` or ``"static"`` pacing.
        floor_fraction: Per-cell budget floor (fraction of fair share).
        smoothing: Exponential smoothing on observed per-cell spends.
        processes: Worker processes for cell execution (``None``/1 =
            sequential in-process).
        backends: Per-cell kernel backends (``None`` = the engine
            block's backend everywhere).
        partition_restarts: K-means restarts when partitioning.
        balance_weight: Weight of the workload-balance term in the
            partition score.
        timeout_seconds: Per-epoch-job deadline on the pooled path.
        max_retries: Retries per (cell, epoch) job after a failure.
        runtime: Pooled execution runtime -- ``"resident"`` (stateful
            long-lived workers, the default) or ``"legacy"`` (one
            process pool job per cell per epoch).
        shared_states: Ship compiled slot states to resident workers
            through shared memory (``None`` = automatic: on whenever
            the scenario's state stream supports parent-side
            compilation).
        carry_every: Pull worker carry state back to the parent every
            N epochs as a salvage base (``None`` = only at the end and
            at checkpoints).
    """

    count: int = 1
    epoch: int = 24
    coordinator: str = "proportional"
    floor_fraction: float = 0.1
    smoothing: float = 0.5
    processes: int | None = None
    backends: "tuple[str | None, ...] | None" = None
    partition_restarts: int = 8
    balance_weight: float = 1.0
    timeout_seconds: float | None = None
    max_retries: int = 2
    runtime: str = "resident"
    shared_states: bool | None = None
    carry_every: int | None = None


def _as_pairs(params: "dict | tuple") -> "tuple[tuple[str, object], ...]":
    if isinstance(params, dict):
        return tuple(sorted(params.items()))
    return tuple((str(k), v) for k, v in params)


@dataclass(frozen=True)
class RunConfig:
    """Everything :func:`run` needs, as one frozen value.

    Scalar knobs stay top-level; cohesive groups live in blocks
    (:attr:`engine`, :attr:`checkpoint`, :attr:`obs`, :attr:`cells`).
    Bare keywords passed to :func:`run` override the corresponding
    config fields, so a config can serve as a base profile.

    Attributes:
        controller: Name from :data:`CONTROLLER_NAMES`.
        seed: Root seed for the default scenario.
        scenario_config: Knobs for the default scenario.
        horizon: Number of slots to simulate.
        v: DPP trade-off parameter ``V``.
        z: BDMA alternation rounds.
        budget: Energy budget override (``None`` = scenario's).
        warm_start_queue: Start the queue at its estimated equilibrium.
        engine: State-pipeline and kernel block.
        checkpoint: Snapshot/resume block.
        obs: Observability block.
        cells: Sharding block; ``None`` runs unsharded.
        controller_params: Extra family knobs as ``(key, value)`` pairs
            (kept as a tuple so the config stays hashable); a dict is
            accepted and normalised.
    """

    controller: str = "dpp"
    seed: int = 7
    scenario_config: ScenarioConfig | None = None
    horizon: int = 48
    v: float = 100.0
    z: int | None = None
    budget: float | None = None
    warm_start_queue: bool = False
    engine: EngineConfig = field(default_factory=EngineConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    cells: CellConfig | None = None
    controller_params: "tuple[tuple[str, object], ...]" = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "controller_params", _as_pairs(self.controller_params)
        )

    def to_dict(self) -> dict:
        """JSON-ready nested view, for :class:`~repro.obs.manifest.RunManifest`.

        Field names mirror the dataclass structure so a manifest diff
        reads like a config diff.
        """
        out: dict = {
            "controller": self.controller,
            "seed": self.seed,
            "scenario_config": (
                asdict(self.scenario_config) if self.scenario_config else None
            ),
            "horizon": self.horizon,
            "v": self.v,
            "z": self.z,
            "budget": self.budget,
            "warm_start_queue": self.warm_start_queue,
            "engine": asdict(self.engine),
            "checkpoint": asdict(self.checkpoint),
            "obs": asdict(self.obs),
            "cells": asdict(self.cells) if self.cells else None,
            "controller_params": {
                # Policy knobs (resilience, overload, ...) are frozen
                # dataclasses; expand them so the manifest stays JSON.
                key: asdict(value) if is_dataclass(value) else value
                for key, value in self.controller_params
            },
        }
        if out["cells"] and out["cells"]["backends"] is not None:
            out["cells"]["backends"] = list(out["cells"]["backends"])
        return out


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()


def _pick(value, fallback):
    return fallback if value is _UNSET else value


def _run_sharded_path(
    scenario: Scenario,
    cfg: CellConfig,
    *,
    controller: str,
    horizon: int,
    v: float,
    z: "int | None",
    budget: "float | None",
    tracer: "Tracer | None",
    engine_backend: "str | None",
    compiled_states: bool,
    state_chunk: int,
    controller_params: dict,
    registry=None,
    monitors: bool = False,
    checkpoint: "str | None" = None,
    checkpoint_every: "int | None" = None,
    resume: bool = False,
) -> SimulationResult:
    from repro.network.partition import partition_cells
    from repro.sim.sharded import run_sharded

    plan = partition_cells(
        scenario.network,
        cfg.count,
        rng=scenario.seeds.rng("cell-partition"),
        restarts=cfg.partition_restarts,
        balance_weight=cfg.balance_weight,
    )
    sharded = run_sharded(
        scenario,
        horizon=horizon,
        cells=plan,
        controller=controller,
        v=v,
        z=z,
        budget=budget,
        epoch=cfg.epoch,
        coordinator=cfg.coordinator,
        floor_fraction=cfg.floor_fraction,
        smoothing=cfg.smoothing,
        engine_backend=(
            cfg.backends if cfg.backends is not None else engine_backend
        ),
        processes=cfg.processes,
        timeout_seconds=cfg.timeout_seconds,
        max_retries=cfg.max_retries,
        runtime=cfg.runtime,
        shared_states=cfg.shared_states,
        carry_every=cfg.carry_every,
        tracer=tracer,
        registry=registry,
        monitors=monitors,
        compiled_states=compiled_states,
        state_chunk=state_chunk,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
        **controller_params,
    )
    return sharded.merged


def run(
    *,
    config: RunConfig | None = None,
    scenario: Scenario | None = None,
    seed: "int | _Unset" = _UNSET,
    scenario_config: "ScenarioConfig | None | _Unset" = _UNSET,
    controller: "str | OnlineController | _Unset" = _UNSET,
    horizon: "int | _Unset" = _UNSET,
    v: "float | _Unset" = _UNSET,
    z: "int | None | _Unset" = _UNSET,
    budget: "float | None | _Unset" = _UNSET,
    tracer: "Tracer | None" = None,
    engine_backend: "str | None | _Unset" = _UNSET,
    monitors: "object | None" = None,
    metrics_port: "int | None | _Unset" = _UNSET,
    metrics_registry=None,
    keep_records: "bool | _Unset" = _UNSET,
    on_slot=None,
    warm_start_queue: "bool | _Unset" = _UNSET,
    compiled_states: "bool | _Unset" = _UNSET,
    state_chunk: "int | _Unset" = _UNSET,
    checkpoint: "str | None | _Unset" = _UNSET,
    checkpoint_every: "int | _Unset" = _UNSET,
    resume: "bool | _Unset" = _UNSET,
    cells: "int | CellConfig | None | _Unset" = _UNSET,
    **controller_params: object,
) -> SimulationResult:
    """Run one simulation end to end and return its result.

    The single public entry point: builds the scenario (unless given),
    the controller (unless an instance is given), threads the tracer
    through both the controller and the simulation loop, and runs
    ``horizon`` slots.  All knobs can come from a :class:`RunConfig`
    (``config=``); bare keywords override its fields.

    Args:
        config: Base configuration; any bare keyword below overrides
            the corresponding field/block entry.
        scenario: Scenario to simulate; built from ``seed`` /
            ``scenario_config`` via
            :func:`repro.config.make_paper_scenario` when omitted.
        seed: Root seed for the default scenario.
        scenario_config: Knobs for the default scenario.
        controller: A name from :data:`CONTROLLER_NAMES` or an already
            built :class:`~repro.core.controller.OnlineController`.
        horizon: Number of slots to simulate.
        v: DPP trade-off parameter ``V``.
        z: BDMA alternation rounds (see :func:`make_controller`).
        budget: Energy budget; ``scenario.budget`` when omitted.
        tracer: Observability tracer (e.g. :class:`repro.obs.Probe`).
        engine_backend: Array-kernel backend for the controller's hot
            loops (``"numpy"``/``"jit"``; see :mod:`repro.kernels`).
            Results are bit-identical across backends -- only the slot
            throughput changes.  Incompatible with an already built
            ``controller`` instance (configure the backend at
            construction instead).
        monitors: Health monitors to watch the run -- a
            :class:`repro.obs.monitors.MonitorSuite`, an iterable of
            :class:`~repro.obs.monitors.Monitor`, or ``True`` for
            :func:`repro.obs.monitors.default_monitors` wired to the
            run's budget and network.  A recording tracer is created
            automatically when none was given; the finished
            :class:`~repro.obs.monitors.HealthReport` lands on
            ``result.health``.
        metrics_port: Serve live OpenMetrics at
            ``http://127.0.0.1:<port>/metrics`` for the duration of the
            run (``0`` = ephemeral port).  A
            :class:`~repro.obs.telemetry.MetricsRegistry` is created
            (unless ``metrics_registry`` is given) and fed by the run:
            slot counters, queue/budget gauges, per-phase and per-kernel
            latency histograms.  The endpoint is torn down before the
            call returns.
        metrics_registry: Publish the run's telemetry into this
            :class:`~repro.obs.telemetry.MetricsRegistry` (created
            automatically when only ``metrics_port`` is given).  Pass
            your own to scrape/inspect after the run, e.g. via
            :meth:`~repro.obs.telemetry.MetricsRegistry.render_openmetrics`.
        keep_records: Retain full per-slot records on the result.
        on_slot: Per-slot progress callback.
        warm_start_queue: Start the queue at its estimated equilibrium.
        compiled_states: Feed the controller through the compiled state
            pipeline
            (:meth:`~repro.sim.scenario.Scenario.fresh_compiled_states`).
            Bit-identical states either way; the compiled path draws
            them in chunks.  Disable to exercise the per-slot path.
        state_chunk: Slots per compiled chunk (with ``compiled_states``).
        checkpoint: Path of a run-checkpoint file.  When given, the run
            snapshots its full cross-slot state there every
            ``checkpoint_every`` slots (atomically) via
            :func:`repro.sim.checkpoint.run_checkpointed`, or -- with
            ``cells=`` -- via the sharded runtime's epoch-boundary
            :class:`~repro.sim.checkpoint.ShardCheckpoint` snapshots.
        checkpoint_every: Slots between snapshots.
        resume: With ``checkpoint=``, continue from an existing matching
            snapshot instead of starting fresh; resumed trajectories are
            bit-identical to an uninterrupted run's.
        cells: Shard the run across cells -- a cell count or a full
            :class:`CellConfig`.  Returns the merged cross-cell result;
            one cell is bit-identical to the unsharded path.  Sharded
            runs combine with ``monitors=True`` (per-cell default
            monitor suites, folded into ``result.health`` with
            ``cell<i>/`` status names) and with telemetry
            (``metrics_port=`` / ``metrics_registry=`` stream live
            per-cell metrics) and with ``checkpoint=`` (epoch-boundary
            shard snapshots, resumable across runtimes), but not with
            custom monitor suites, per-slot callbacks, record keeping,
            queue warm starts, or prebuilt controller instances.
        **controller_params: Passed to :func:`make_controller`
            (``rng_label=``, ``fraction=``, ``iterations=``, ...),
            merged over ``config.controller_params``.

    Returns:
        The :class:`~repro.sim.results.SimulationResult`.
    """
    cfg = config if config is not None else RunConfig()
    seed = _pick(seed, cfg.seed)
    scenario_config = _pick(scenario_config, cfg.scenario_config)
    controller = _pick(controller, cfg.controller)
    horizon = _pick(horizon, cfg.horizon)
    v = _pick(v, cfg.v)
    z = _pick(z, cfg.z)
    budget = _pick(budget, cfg.budget)
    engine_backend = _pick(engine_backend, cfg.engine.backend)
    keep_records = _pick(keep_records, cfg.obs.keep_records)
    warm_start_queue = _pick(warm_start_queue, cfg.warm_start_queue)
    compiled_states = _pick(compiled_states, cfg.engine.compiled_states)
    state_chunk = _pick(state_chunk, cfg.engine.state_chunk)
    checkpoint = _pick(checkpoint, cfg.checkpoint.path)
    checkpoint_every = _pick(checkpoint_every, cfg.checkpoint.every)
    resume = _pick(resume, cfg.checkpoint.resume)
    cells = _pick(cells, cfg.cells)
    metrics_port = _pick(metrics_port, cfg.obs.metrics_port)
    if monitors is None and cfg.obs.monitors:
        monitors = True
    merged_params = dict(cfg.controller_params)
    merged_params.update(controller_params)

    registry = metrics_registry
    server = None
    if registry is None and metrics_port is not None:
        from repro.obs.telemetry import MetricsRegistry

        registry = MetricsRegistry()
    if metrics_port is not None:
        from repro.obs.server import MetricsServer

        server = MetricsServer(registry, port=metrics_port)
        server.start()
    try:
        return _run_resolved(
            scenario=scenario,
            seed=seed,
            scenario_config=scenario_config,
            controller=controller,
            horizon=horizon,
            v=v,
            z=z,
            budget=budget,
            tracer=tracer,
            engine_backend=engine_backend,
            monitors=monitors,
            registry=registry,
            keep_records=keep_records,
            on_slot=on_slot,
            warm_start_queue=warm_start_queue,
            compiled_states=compiled_states,
            state_chunk=state_chunk,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            cells=cells,
            merged_params=merged_params,
        )
    finally:
        if server is not None:
            server.close()


def _run_resolved(
    *,
    scenario,
    seed,
    scenario_config,
    controller,
    horizon,
    v,
    z,
    budget,
    tracer,
    engine_backend,
    monitors,
    registry,
    keep_records,
    on_slot,
    warm_start_queue,
    compiled_states,
    state_chunk,
    checkpoint,
    checkpoint_every,
    resume,
    cells,
    merged_params,
) -> SimulationResult:
    """The body of :func:`run` after config resolution.

    Split out so the metrics endpoint in :func:`run` can wrap the whole
    execution in one ``try/finally`` regardless of which path returns.
    """
    from repro.obs.telemetry import telemetry_context

    if scenario is None:
        scenario = make_paper_scenario(seed, config=scenario_config)
    if budget is None:
        budget = scenario.budget

    if isinstance(controller, OnlineController) and engine_backend is not None:
        raise ConfigurationError(
            "engine_backend cannot be applied to an already built controller "
            "instance; pass it to the controller's constructor instead"
        )

    if cells is not None:
        if isinstance(cells, int):
            cells = CellConfig(count=cells)
        if isinstance(controller, OnlineController):
            raise ConfigurationError(
                "sharded runs build one controller per cell; pass a "
                "controller name, not an instance"
            )
        conflicts = {
            # monitors=True shards fine (per-cell default suites);
            # custom suites/iterables cannot be split across cells.
            "monitors": monitors not in (None, False, True),
            "keep_records": bool(keep_records),
            "on_slot": on_slot is not None,
            "warm_start_queue": bool(warm_start_queue),
        }
        active = sorted(k for k, bad in conflicts.items() if bad)
        if active:
            raise ConfigurationError(
                f"cells= does not combine with: {', '.join(active)}"
            )
        return _run_sharded_path(
            scenario,
            cells,
            controller=controller,
            horizon=horizon,
            v=v,
            z=z,
            budget=budget,
            tracer=tracer,
            engine_backend=engine_backend,
            compiled_states=compiled_states,
            state_chunk=state_chunk,
            controller_params=merged_params,
            registry=registry,
            monitors=monitors is True,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )

    if registry is not None:
        from repro.obs.probe import Probe
        from repro.obs.telemetry import TelemetrySink

        if tracer is None or not tracer.enabled:
            tracer = Probe()
        add_sink = getattr(tracer, "add_sink", None)
        if add_sink is not None:
            add_sink(TelemetrySink(registry))

    suite = None
    if monitors is not None and monitors is not False:
        from repro.obs.monitors import MonitorSuite, default_monitors
        from repro.obs.probe import Probe

        if isinstance(monitors, MonitorSuite):
            suite = monitors
        elif monitors is True:
            suite = MonitorSuite(
                default_monitors(budget=budget, network=scenario.network)
            )
        else:
            suite = MonitorSuite(monitors)  # type: ignore[arg-type]
        if tracer is None or not tracer.enabled:
            tracer = Probe()
        suite.attach(tracer)  # type: ignore[arg-type]

    if isinstance(controller, OnlineController):
        ctrl = controller
    else:
        with telemetry_context(registry):
            ctrl = make_controller(
                controller,
                scenario,
                v=v,
                z=z,
                budget=budget,
                warm_start_queue=warm_start_queue,
                tracer=tracer,
                engine_backend=engine_backend,
                **merged_params,  # type: ignore[arg-type]
            )
    if checkpoint is not None:
        from repro.sim.checkpoint import run_checkpointed

        result = run_checkpointed(
            scenario,
            ctrl,
            horizon=horizon,
            path=checkpoint,
            budget=budget,
            every=checkpoint_every,
            resume=resume,
            tracer=tracer,
            keep_records=keep_records,
            on_slot=on_slot,
            compiled=compiled_states,
            chunk=state_chunk,
        )
        if suite is not None:
            result.health = suite.finish()
        return result
    states = (
        scenario.fresh_compiled_states(horizon, chunk=state_chunk, tracer=tracer)
        if compiled_states
        else scenario.fresh_states(horizon, tracer=tracer)
    )
    result = run_simulation(
        ctrl,
        states,
        budget=budget,
        keep_records=keep_records,
        on_slot=on_slot,
        tracer=tracer,
    )
    if suite is not None:
        result.health = suite.finish()
    return result
