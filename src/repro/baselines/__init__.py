"""Baseline algorithms the paper compares against, plus ablation policies.

* :mod:`repro.baselines.ropt` -- ROPT: uniformly random selections with
  Lemma-1 optimal resource allocation (the paper's random baseline).
* :mod:`repro.baselines.mcba` -- MCBA: Markov-chain Monte Carlo search
  over assignments [36].
* :mod:`repro.baselines.branch_and_bound` -- exact best-first
  branch-and-bound for P2-A; our substitute for the paper's Gurobi
  optimum.
* :mod:`repro.baselines.lower_bounds` -- certified lower bounds on P2-A
  (congestion-free relaxation).
* :mod:`repro.baselines.greedy` -- one-pass greedy assignment, joint and
  decoupled variants (ablation).
* :mod:`repro.baselines.fixed_frequency` -- controllers pinning every
  server at a fixed clock (ablation on the value of frequency scaling).
"""

from repro.baselines.ropt import ropt_p2a_solver, solve_p2a_ropt
from repro.baselines.mcba import MCBAResult, mcba_p2a_solver, solve_p2a_mcba
from repro.baselines.branch_and_bound import (
    BranchAndBoundResult,
    solve_p2a_exact,
)
from repro.baselines.lower_bounds import p2a_fractional_bound, p2a_lower_bound
from repro.baselines.greedy import greedy_p2a_solver, solve_p2a_greedy
from repro.baselines.fixed_frequency import FixedFrequencyController

__all__ = [
    "solve_p2a_ropt",
    "ropt_p2a_solver",
    "MCBAResult",
    "solve_p2a_mcba",
    "mcba_p2a_solver",
    "BranchAndBoundResult",
    "solve_p2a_exact",
    "p2a_lower_bound",
    "p2a_fractional_bound",
    "solve_p2a_greedy",
    "greedy_p2a_solver",
    "FixedFrequencyController",
]
