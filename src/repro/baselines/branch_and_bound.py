"""Exact branch-and-bound for P2-A (our substitute for Gurobi).

The paper's "optimal" baseline solves P2-A with Gurobi's branch and
bound.  We implement the same method directly on the congestion
structure: items (devices) are assigned depth-first in order of
decreasing solo cost, children are explored cheapest-marginal-first, and
nodes are pruned with the admissible bound

    cost(partial) + sum over unassigned devices of the cheapest marginal
    cost under the *current* loads,

which never overestimates because marginal costs only grow as loads grow
and cross terms between unassigned devices are non-negative.  With an
exhausted node budget the incumbent (still a feasible assignment) and a
global lower bound are returned instead of a certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.latency import effective_fronthaul_se
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.solvers.assignment import QuadraticCongestionProblem
from repro.types import FloatArray


@dataclass
class BranchAndBoundResult:
    """Outcome of an exact (or budget-truncated) P2-A solve.

    Attributes:
        assignment: Best feasible assignment found.
        objective: Its P2-A objective ``T_t``.
        lower_bound: Certified lower bound on the optimum; equals
            ``objective`` when ``optimal`` is True.
        optimal: Whether the search ran to completion.
        nodes: Number of search-tree nodes expanded.
    """

    assignment: Assignment
    objective: float
    lower_bound: float
    optimal: bool
    nodes: int


def build_p2a_problem(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
) -> QuadraticCongestionProblem:
    """Translate P2-A into a :class:`QuadraticCongestionProblem`.

    Resource layout: access links occupy indices ``0..K-1``, fronthaul
    links ``K..2K-1``, compute capacities ``2K..2K+N-1``.
    """
    num_bs = network.num_base_stations
    num_servers = network.num_servers
    resource_weights = np.concatenate(
        [
            1.0 / network.access_bandwidth,
            1.0
            / (
                network.fronthaul_bandwidth
                * effective_fronthaul_se(network, state)
            ),
            1.0 / network.speeds(np.asarray(frequencies, dtype=np.float64)),
        ]
    )
    h = state.spectral_efficiency
    options: list[list[np.ndarray]] = []
    item_weights: list[list[np.ndarray]] = []
    for i in range(network.num_devices):
        ks, ns = space.pairs(i)
        opts: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for k, n in zip(ks.tolist(), ns.tolist()):
            if h[i, k] <= 0.0:
                continue  # stale strategy space relative to this state
            opts.append(np.array([k, num_bs + k, 2 * num_bs + n], dtype=np.int64))
            weights.append(
                np.array(
                    [
                        np.sqrt(state.bits[i] / h[i, k]),
                        np.sqrt(state.bits[i]),
                        np.sqrt(state.cycles[i] / network.suitability[i, n]),
                    ]
                )
            )
        options.append(opts)
        item_weights.append(weights)
    return QuadraticCongestionProblem(
        num_items=network.num_devices,
        num_resources=2 * num_bs + num_servers,
        resource_weights=resource_weights,
        options=options,
        item_weights=item_weights,
    )


def _greedy_incumbent(
    problem: QuadraticCongestionProblem, order: np.ndarray
) -> tuple[list[int], float]:
    """Cheapest-marginal greedy pass, used as the initial incumbent."""
    loads = np.zeros(problem.num_resources)
    choice = [0] * problem.num_items
    total = 0.0
    for item in order.tolist():
        j, cost = problem.cheapest_option(item, loads)
        choice[item] = j
        total += cost
        problem.apply(item, j, loads)
    return choice, total


def solve_p2a_exact(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
    *,
    node_limit: int = 2_000_000,
    incumbent: Assignment | None = None,
    atol: float = 1e-9,
) -> BranchAndBoundResult:
    """Solve P2-A to optimality (or to the node budget).

    Args:
        network: Static topology.
        state: The slot's system state.
        space: Feasible strategy sets.
        frequencies: Fixed server clocks.
        node_limit: Maximum search-tree nodes before giving up on the
            certificate; the incumbent remains feasible.
        incumbent: Optional warm-start upper bound (e.g. a CGBA result);
            a greedy incumbent is always computed and the better is kept.
        atol: Pruning slack protecting against float ties.

    Returns:
        A :class:`BranchAndBoundResult`.
    """
    if node_limit <= 0:
        raise ConfigurationError("node_limit must be positive")
    problem = build_p2a_problem(network, state, space, frequencies)
    num_items = problem.num_items

    # Assign the most expensive devices first: their placement constrains
    # the objective most, tightening bounds early.
    zero = np.zeros(problem.num_resources)
    solo = np.array(
        [problem.cheapest_option(i, zero)[1] for i in range(num_items)]
    )
    order = np.argsort(-solo)

    best_choice, best_value = _greedy_incumbent(problem, order)
    if incumbent is not None:
        cand = _choice_from_assignment(problem, network, space, incumbent)
        if cand is not None:
            value = problem.total_cost(cand)
            if value < best_value:
                best_choice, best_value = cand, value

    loads = np.zeros(problem.num_resources)
    # Each stack frame: (depth, option_queue) where option_queue is the
    # remaining child options (sorted cheapest-first) for order[depth].
    nodes = 0
    exhausted = False
    partial_cost = [0.0]
    chosen: list[int] = []
    stack: list[list[int]] = [_sorted_options(problem, int(order[0]), loads)]

    while stack:
        depth = len(stack) - 1
        item = int(order[depth])
        queue = stack[-1]
        # Undo the previously explored child at this depth, if any.
        if len(chosen) > depth:
            prev = chosen.pop()
            problem.remove(item, prev, loads)
            partial_cost.pop()
        if not queue:
            stack.pop()
            continue
        j = queue.pop(0)
        nodes += 1
        if nodes > node_limit:
            exhausted = True
            break
        marginal = problem.marginal_cost(item, j, loads)
        cost_here = partial_cost[-1] + marginal
        if cost_here >= best_value - atol:
            continue  # prune: even without the remaining items it's worse
        problem.apply(item, j, loads)
        chosen.append(j)
        partial_cost.append(cost_here)
        if depth + 1 == num_items:
            # Full assignment strictly better than the incumbent.
            best_value = cost_here
            best_choice = [0] * num_items
            for d, jj in enumerate(chosen):
                best_choice[int(order[d])] = jj
            # Leave the child applied; the loop's backtracking undoes it.
            continue
        bound = cost_here
        for d in range(depth + 1, num_items):
            bound += problem.cheapest_option(int(order[d]), loads)[1]
            if bound >= best_value - atol:
                break
        if bound >= best_value - atol:
            # Prune the subtree: undo this child immediately.
            chosen.pop()
            partial_cost.pop()
            problem.remove(item, j, loads)
            continue
        stack.append(_sorted_options(problem, int(order[depth + 1]), loads))

    assignment = _assignment_from_choice(problem, network, space, best_choice, state)
    lower_bound = best_value if not exhausted else _root_bound(problem)
    return BranchAndBoundResult(
        assignment=assignment,
        objective=best_value,
        lower_bound=min(lower_bound, best_value),
        optimal=not exhausted,
        nodes=nodes,
    )


def _sorted_options(
    problem: QuadraticCongestionProblem, item: int, loads: np.ndarray
) -> list[int]:
    """Child options of *item*, cheapest marginal first under *loads*."""
    costs = problem.marginal_costs(item, loads)
    return np.argsort(costs, kind="stable").tolist()


def _root_bound(problem: QuadraticCongestionProblem) -> float:
    """The congestion-free bound at the root (used when the budget ran out)."""
    zero = np.zeros(problem.num_resources)
    return float(
        sum(problem.cheapest_option(i, zero)[1] for i in range(problem.num_items))
    )


def _choice_from_assignment(
    problem: QuadraticCongestionProblem,
    network: MECNetwork,
    space: StrategySpace,
    assignment: Assignment,
) -> list[int] | None:
    """Map an :class:`Assignment` to per-item option indices, if feasible."""
    num_bs = network.num_base_stations
    choice: list[int] = []
    for i in range(problem.num_items):
        k = int(assignment.bs_of[i])
        n = int(assignment.server_of[i])
        target_first = k  # access resource index of option
        found = None
        for j, res in enumerate(problem.options[i]):
            if int(res[0]) == target_first and int(res[2]) == 2 * num_bs + n:
                found = j
                break
        if found is None:
            return None
        choice.append(found)
    return choice


def _assignment_from_choice(
    problem: QuadraticCongestionProblem,
    network: MECNetwork,
    space: StrategySpace,
    choice: list[int],
    state: SlotState,
) -> Assignment:
    """Decode option indices back into an :class:`Assignment`."""
    del space, state
    num_bs = network.num_base_stations
    bs_of = np.empty(problem.num_items, dtype=np.int64)
    server_of = np.empty(problem.num_items, dtype=np.int64)
    for i, j in enumerate(choice):
        res = problem.options[i][j]
        bs_of[i] = int(res[0])
        server_of[i] = int(res[2]) - 2 * num_bs
    return Assignment(bs_of=bs_of, server_of=server_of)


def verify_against_game(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
    assignment: Assignment,
) -> float:
    """Cross-check helper: the P2-A objective via the congestion game."""
    game = OffloadingCongestionGame(
        network, state, space, frequencies, initial=assignment
    )
    return game.total_cost()
