"""Fixed-frequency controllers (ablation on the value of clock scaling).

These policies solve the assignment problem each slot (with CGBA, so the
comparison isolates frequency scaling) but pin every server's clock at a
fixed point of its range.  They still track a virtual queue so the
energy-cost accounting in simulation results is comparable, but the
queue never influences their decisions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.allocation import optimal_allocation
from repro.core.cgba import solve_p2a_cgba
from repro.core.controller import OnlineController, SlotRecord
from repro.core.drift_penalty import energy_cost
from repro.core.latency import optimal_total_latency
from repro.core.state import Assignment, SlotState
from repro.core.virtual_queue import VirtualQueue
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.types import Rng


class FixedFrequencyController(OnlineController):
    """CGBA assignment at a constant clock setting.

    Args:
        network: Static topology.
        rng: Randomness for CGBA's initial profiles.
        fraction: Position of every server's clock inside its range:
            0 pins ``F^L``, 1 pins ``F^U``, 0.5 the midpoint.
        budget: Reported-against budget ``Cbar`` (accounting only).
        slack: CGBA's ``lambda``.
        tracer: Observability tracer; same ``slot``/``state``/``p2a``/
            ``allocation``/``queue`` span structure as the DPP
            controller (no ``bdma``/``p2b`` phases -- clocks are fixed).
    """

    def __init__(
        self,
        network: MECNetwork,
        rng: Rng,
        *,
        fraction: float,
        budget: float,
        slack: float = 0.0,
        tracer: "Tracer | None" = None,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
        self.network = network
        self.rng = rng
        self.fraction = float(fraction)
        self.budget = float(budget)
        self.slack = float(slack)
        self.tracer = as_tracer(tracer)
        self.frequencies = (
            network.freq_min + fraction * (network.freq_max - network.freq_min)
        )
        self.queue = VirtualQueue(0.0, tracer=self.tracer)
        self._space: StrategySpace | None = None
        self._previous = None

    def step(self, state: SlotState) -> SlotRecord:
        tracer = self.tracer
        with tracer.span("slot"):
            with tracer.span("state"):
                coverage = state.coverage()
                cached = self._space
                reused = (
                    cached is not None
                    and (
                        (
                            state.available_servers is None
                            and cached.available_servers is None
                        )
                        or (
                            state.available_servers is not None
                            and cached.available_servers is not None
                            and np.array_equal(
                                state.available_servers, cached.available_servers
                            )
                        )
                    )
                    and np.array_equal(coverage, cached.coverage)
                )
                if not reused:
                    self._space = StrategySpace(
                        self.network, coverage, state.available_servers
                    )
                if self._previous is not None and not reused:
                    bs_of, server_of = self._space.repair(
                        self._previous.bs_of, self._previous.server_of, self.rng
                    )
                    self._previous = Assignment(bs_of=bs_of, server_of=server_of)
            started = time.perf_counter()
            with tracer.span("p2a"):
                result = solve_p2a_cgba(
                    self.network,
                    state,
                    self._space,
                    self.frequencies,
                    self.rng,
                    slack=self.slack,
                    initial=self._previous,
                    tracer=tracer,
                )
            solve_seconds = time.perf_counter() - started
            self._previous = result.assignment

            with tracer.span("allocation"):
                allocation = optimal_allocation(
                    self.network, state, result.assignment
                )
                latency = optimal_total_latency(
                    self.network, state, result.assignment, self.frequencies
                )
                cost = energy_cost(
                    self.network,
                    self.frequencies,
                    state.price,
                    available=state.available_servers,
                )
            with tracer.span("queue"):
                theta = cost - self.budget
                backlog_before = self.queue.backlog
                backlog_after = self.queue.update(theta)
        return SlotRecord(
            t=state.t,
            assignment=result.assignment,
            frequencies=self.frequencies.copy(),
            allocation=allocation,
            latency=latency,
            cost=cost,
            theta=theta,
            backlog_before=backlog_before,
            backlog_after=backlog_after,
            solve_seconds=solve_seconds,
            engine_stats=result.engine_stats,
        )

    def reset(self) -> None:
        self.queue = VirtualQueue(0.0, tracer=self.tracer)
        self._space = None
        self._previous = None
