"""One-pass greedy assignment baselines (ablation).

Two variants, both a single sequential pass over devices:

* *joint* -- each device picks the feasible (base station, server) pair
  with the cheapest marginal total-latency increase given the loads
  committed so far; this is "one round of best response from empty".
* *decoupled* -- each device first picks the base station minimising the
  communication marginal alone, then the cheapest reachable server; this
  quantifies what the paper's joint selection buys over the naive
  two-stage heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import effective_fronthaul_se
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.types import FloatArray, IntArray, Rng


def solve_p2a_greedy(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
    rng: Rng | None = None,
    *,
    joint: bool = True,
    order: IntArray | None = None,
) -> Assignment:
    """Sequential greedy assignment.

    Args:
        network: Static topology.
        state: The slot's system state.
        space: Feasible strategy sets.
        frequencies: Fixed server clocks.
        rng: Used to shuffle the device order when *order* is omitted;
            a deterministic ascending order is used when both are None.
        joint: Pick (base station, server) jointly (True) or decouple the
            two choices (False).
        order: Explicit device processing order.

    Returns:
        A feasible :class:`Assignment`.
    """
    num_devices = network.num_devices
    if order is None:
        order = np.arange(num_devices)
        if rng is not None:
            order = rng.permutation(num_devices)
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(num_devices)):
        raise ConfigurationError("order must be a permutation of all devices")

    m_access = 1.0 / network.access_bandwidth
    m_front = 1.0 / (
        network.fronthaul_bandwidth * effective_fronthaul_se(network, state)
    )
    m_compute = 1.0 / network.speeds(np.asarray(frequencies, dtype=np.float64))
    h = state.spectral_efficiency

    # Player weights, computed once for all devices rather than one
    # np.where/sqrt pass per device inside the loop.
    with np.errstate(divide="ignore", over="ignore"):
        p_access = np.where(
            h > 0.0, np.sqrt(state.bits[:, None] / np.maximum(h, 1e-300)), np.inf
        )
    p_front = np.sqrt(state.bits)
    p_compute = np.sqrt(state.cycles[:, None] / network.suitability)

    load_access = np.zeros(network.num_base_stations)
    load_front = np.zeros(network.num_base_stations)
    load_compute = np.zeros(network.num_servers)

    bs_of = np.empty(num_devices, dtype=np.int64)
    server_of = np.empty(num_devices, dtype=np.int64)

    for i in order.tolist():
        ks, ns = space.pairs(i)
        pa = p_access[i, ks]
        pf = p_front[i]
        pc = p_compute[i, ns]
        comm = m_access[ks] * pa * (2.0 * load_access[ks] + pa) + m_front[ks] * pf * (
            2.0 * load_front[ks] + pf
        )
        comp = m_compute[ns] * pc * (2.0 * load_compute[ns] + pc)
        if joint:
            j = int(np.argmin(comm + comp))
        else:
            # Stage 1: best base station by communication marginal only.
            best_k = int(ks[np.argmin(comm)])
            candidates = np.flatnonzero(ks == best_k)
            # Stage 2: cheapest reachable server through that station.
            j = int(candidates[np.argmin(comp[candidates])])
        k, n = int(ks[j]), int(ns[j])
        bs_of[i] = k
        server_of[i] = n
        load_access[k] += pa[j]
        load_front[k] += pf
        load_compute[n] += pc[j]

    return Assignment(bs_of=bs_of, server_of=server_of)


def greedy_p2a_solver(*, joint: bool = True, shuffle: bool = True):
    """Greedy packaged as a P2-A solver for the DPP controller.

    The returned callable matches :class:`repro.core.bdma.P2ASolver`;
    the warm-start ``initial`` assignment is ignored (greedy always
    builds its pass from an empty profile).

    Args:
        joint: Joint (base station, server) selection versus the
            decoupled two-stage variant.
        shuffle: Shuffle the device processing order each slot (uses the
            controller's rng); ``False`` processes devices in index
            order, which is fully deterministic but order-biased.
    """

    def solve(
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment:
        del initial  # greedy has no warm start; it is a single pass
        return solve_p2a_greedy(
            network,
            state,
            space,
            frequencies,
            rng if shuffle else None,
            joint=joint,
        )

    return solve
