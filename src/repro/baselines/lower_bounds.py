"""Certified lower bounds on P2-A's optimum.

At the instance sizes the paper sweeps (80-120 devices) exhaustive
search is out of reach even for commercial solvers without long
runtimes, so the benchmarks report CGBA's ratio to a *certified lower
bound* alongside exact optima on smaller instances.  The bound drops the
congestion interaction between devices: each device is priced as if
alone in the system, which can only undercount the quadratic objective.
"""

from __future__ import annotations

from repro.baselines.branch_and_bound import build_p2a_problem
from repro.core.state import SlotState
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.solvers.assignment import congestion_free_lower_bound
from repro.solvers.relaxation import RelaxationResult, solve_fractional_relaxation
from repro.types import FloatArray


def p2a_lower_bound(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
) -> float:
    """Congestion-free lower bound on ``min T_t`` (fast but loose).

    Ignores all interaction between devices; use
    :func:`p2a_fractional_bound` for the tighter convex-relaxation bound.
    """
    problem = build_p2a_problem(network, state, space, frequencies)
    return congestion_free_lower_bound(problem)


def p2a_fractional_bound(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
    *,
    max_iter: int = 500,
) -> RelaxationResult:
    """Certified convex-relaxation lower bound on ``min T_t``.

    Solves the fractional relaxation of P2-A by Frank-Wolfe; the returned
    ``lower_bound`` is valid regardless of convergence (it comes from the
    duality gap).  This plays the role of Gurobi's bound at instance
    sizes where exact branch-and-bound is out of reach.
    """
    problem = build_p2a_problem(network, state, space, frequencies)
    return solve_fractional_relaxation(problem, max_iter=max_iter)
