"""MCBA: Markov chain Monte Carlo-based assignment search [36].

MCBA performs a random walk on the space of feasible assignments: each
step proposes moving one random device to one random feasible strategy
and accepts with the Metropolis rule -- always when the total latency
drops, with probability ``exp(-delta / temperature)`` otherwise.  The
temperature anneals geometrically, so the chain concentrates on
low-objective profiles and converges to the optimum with nonzero
probability.  The paper uses MCBA as a P2-A baseline (Figs. 4-5) and as
the *MCBA-based DPP* online baseline (Fig. 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bdma import P2ASolver
from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.types import FloatArray, Rng


@dataclass
class MCBAResult:
    """Outcome of one MCBA run.

    Attributes:
        assignment: Best assignment visited by the chain.
        total_latency: Its P2-A objective value ``T_t``.
        iterations: Number of proposals evaluated.
        accepted: Number of accepted moves.
    """

    assignment: Assignment
    total_latency: float
    iterations: int
    accepted: int


def solve_p2a_mcba(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
    rng: Rng,
    *,
    iterations: int | None = None,
    initial_temperature_fraction: float = 0.05,
    cooling: float = 0.995,
    initial: Assignment | None = None,
) -> MCBAResult:
    """Run the Metropolis chain on P2-A.

    Args:
        network: Static topology.
        state: The slot's system state.
        space: Feasible strategy sets.
        frequencies: Fixed server clocks for the subproblem.
        rng: Randomness for proposals and acceptances.
        iterations: Number of proposals; defaults to ``60 * I`` which
            matches CGBA's typical work within an order of magnitude.
        initial_temperature_fraction: Starting temperature as a fraction
            of the initial total latency.
        cooling: Geometric temperature decay per proposal, in ``(0, 1]``.
        initial: Warm-start assignment; random when omitted.

    Returns:
        The best profile visited (not merely the final one).
    """
    if iterations is None:
        iterations = 60 * network.num_devices
    if iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    if not 0.0 < cooling <= 1.0:
        raise ConfigurationError("cooling must lie in (0, 1]")
    if initial_temperature_fraction <= 0.0:
        raise ConfigurationError("initial_temperature_fraction must be positive")

    game = OffloadingCongestionGame(
        network, state, space, frequencies, initial=initial, rng=rng
    )
    current = game.total_cost()
    best = current
    best_assignment = game.assignment()
    temperature = initial_temperature_fraction * max(current, 1e-300)
    accepted = 0

    for _ in range(iterations):
        player = int(rng.integers(game.num_players))
        ks, ns = space.pairs(player)
        j = int(rng.integers(ks.size))
        proposal = (int(ks[j]), int(ns[j]))
        if proposal == game.strategy_of(player):
            temperature *= cooling
            continue
        delta = game.move_delta(player, proposal)
        accept = delta <= 0.0 or (
            temperature > 0.0
            and rng.random() < math.exp(-delta / temperature)
        )
        if accept:
            game.move(player, proposal)
            current += delta
            accepted += 1
            if current < best:
                best = current
                best_assignment = game.assignment()
        temperature *= cooling

    # Re-evaluate exactly to shed accumulated float drift from the deltas;
    # total_cost_of reuses the game's cached weights, so this is three
    # bincounts rather than a full second game construction.
    return MCBAResult(
        assignment=best_assignment,
        total_latency=game.total_cost_of(best_assignment),
        iterations=iterations,
        accepted=accepted,
    )


def mcba_p2a_solver(
    *,
    iterations: int | None = None,
    initial_temperature_fraction: float = 0.05,
    cooling: float = 0.995,
) -> P2ASolver:
    """MCBA packaged as a P2-A solver for :class:`~repro.core.DPPController`."""

    def solve(
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment:
        result = solve_p2a_mcba(
            network,
            state,
            space,
            frequencies,
            rng,
            iterations=iterations,
            initial_temperature_fraction=initial_temperature_fraction,
            cooling=cooling,
            initial=initial,
        )
        return result.assignment

    return solve
