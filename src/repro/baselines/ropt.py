"""ROPT: random selection with optimal resource allocation.

Under ROPT every device picks a uniformly random feasible
(base station, server) pair; bandwidth and compute are then split
optimally via Lemma 1 (that part is shared with every other policy).
The paper uses ROPT both as a P2-A baseline (Figs. 4-5) and, composed
with DPP, as the *ROPT-based DPP* online baseline (Fig. 9).
"""

from __future__ import annotations

from repro.core.bdma import P2ASolver
from repro.core.state import Assignment, SlotState
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.types import FloatArray, Rng


def solve_p2a_ropt(space: StrategySpace, rng: Rng) -> Assignment:
    """One uniformly random feasible assignment."""
    bs_of, server_of = space.random_assignment(rng)
    return Assignment(bs_of=bs_of, server_of=server_of)


def ropt_p2a_solver() -> P2ASolver:
    """ROPT packaged as a P2-A solver for :class:`~repro.core.DPPController`."""

    def solve(
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment:
        del network, state, frequencies, initial
        return solve_p2a_ropt(space, rng)

    return solve
