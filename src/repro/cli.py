"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` -- run one DPP simulation on a paper-style scenario and
  print the summary (optionally a backlog chart and an ``.npz`` dump).
* ``experiment`` -- run one of the named paper experiments (``fig2`` ..
  ``fig9``, ``ablation-*``) and print its table.
* ``equilibrium`` -- estimate the steady-state queue backlog ``Q*`` for
  a scenario without simulating the ramp, and check a sampled CGBA
  solve against the Theorem 2/3 approximation guarantees.
* ``trace`` -- inspect recorded JSONL traces: ``trace summary PATH``
  and ``trace diff BASE NEW`` (nonzero exit on regression, so it can
  gate CI).
* ``metrics snapshot`` -- run one simulation with telemetry and dump
  the OpenMetrics exposition text (to stdout or ``--output``).
* ``profile report`` -- run one simulation and print the per-phase /
  per-kernel latency histograms (count, total, p50/p95, bucket shape).
* ``info`` -- version and default-scenario overview.

``simulate`` additionally exposes the observability layer: ``--profile``
prints the per-phase timing table, ``--trace out.jsonl`` streams every
span/counter/slot event to disk alongside a run manifest,
``--monitors`` attaches the domain health monitors and prints their
:class:`~repro.obs.monitors.HealthReport`, ``--dashboard`` redraws
a live per-slot terminal dashboard (``--ascii`` for dumb terminals),
and ``--metrics-port`` serves live OpenMetrics over HTTP while the run
is in flight (works with ``--cells``: per-cell series stream in as
epochs complete).
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import Sequence

import repro
from repro.analysis.equilibrium import estimate_equilibrium_backlog
from repro.analysis.text_plots import line_chart
from repro.api import CONTROLLER_NAMES, make_controller
from repro.baselines.lower_bounds import p2a_lower_bound
from repro.core.overload import OverloadPolicy
from repro.core.theory import check_bdma_guarantee, check_cgba_guarantee
from repro.experiments import RUNNERS, generate_report
from repro.io import save_result, summary_to_json
from repro.obs import (
    Dashboard,
    JsonlSink,
    MetricsRegistry,
    MetricsServer,
    MonitorSuite,
    Probe,
    RunManifest,
    TelemetrySink,
    default_monitors,
    diff_traces,
    load_trace,
    manifest_path_for,
    render_profile_report,
    telemetry_context,
)

_SOLVER_CHOICES = CONTROLLER_NAMES


def _build_scenario(args: argparse.Namespace) -> repro.Scenario:
    return repro.make_paper_scenario(
        seed=args.seed,
        config=repro.ScenarioConfig(
            num_devices=args.devices,
            workload=args.workload,
            budget_fraction=args.budget_fraction,
        ),
    )


def _run_config_from(args: argparse.Namespace) -> repro.RunConfig:
    """Map ``simulate`` flags onto one :class:`repro.api.RunConfig`.

    The config is both the sharded execution recipe (``--cells``) and
    the provenance record: its :meth:`~repro.api.RunConfig.to_dict`
    feeds the run manifest, so traces capture every knob.
    """
    cells = None
    if args.cells > 1:
        cells = repro.CellConfig(
            count=args.cells,
            epoch=args.cell_epoch,
            processes=args.cell_processes,
            coordinator=args.coordinator,
            runtime=args.cell_runtime,
        )
    params: dict[str, object] = {}
    if args.solver == "fixed":
        params["fraction"] = args.fraction
    if getattr(args, "overload_high", None) is not None:
        params["overload"] = OverloadPolicy(
            high_watermark=args.overload_high,
            low_watermark=args.overload_low,
            shed_fraction=args.overload_shed,
        )
    return repro.RunConfig(
        controller=args.solver,
        seed=args.seed,
        scenario_config=repro.ScenarioConfig(
            num_devices=args.devices,
            workload=args.workload,
            budget_fraction=args.budget_fraction,
        ),
        horizon=args.horizon,
        v=args.v,
        z=args.z,
        warm_start_queue=args.warm_start,
        engine=repro.api.EngineConfig(
            backend=args.backend,
            compiled_states=not args.no_compiled_states,
            state_chunk=args.state_chunk,
        ),
        cells=cells,
        controller_params=params,
    )


def _build_controller(
    scenario: repro.Scenario,
    args: argparse.Namespace,
    tracer: "Probe | None" = None,
) -> repro.OnlineController:
    """Map CLI flags onto :func:`repro.api.make_controller`.

    The ``"cli"`` / ``"cli-equilibrium"`` rng stream labels predate the
    facade and are kept so historical runs stay bit-reproducible.
    """
    extras: dict[str, object] = {}
    if args.solver == "fixed":
        extras["fraction"] = args.fraction
    if getattr(args, "overload_high", None) is not None:
        extras["overload"] = OverloadPolicy(
            high_watermark=args.overload_high,
            low_watermark=args.overload_low,
            shed_fraction=args.overload_shed,
        )
    return make_controller(
        args.solver,
        scenario,
        v=args.v,
        z=args.z,
        rng_label="cli",
        equilibrium_rng_label="cli-equilibrium",
        warm_start_queue=args.warm_start,
        tracer=tracer,
        engine_backend=args.backend,
        **extras,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    run_config = _run_config_from(args)
    sharded = run_config.cells is not None
    if sharded and (args.monitors or args.dashboard or args.warm_start):
        print(
            "--cells does not combine with --monitors, --dashboard, or "
            "--warm-start",
            file=sys.stderr,
        )
        return 2
    tracing = bool(args.trace) or args.profile or args.dashboard or args.monitors
    probe: Probe | None = None
    manifest: RunManifest | None = None
    suite: MonitorSuite | None = None
    dashboard: Dashboard | None = None
    if tracing:
        probe = Probe()
        if args.trace:
            # Flush per event so a crashed run still leaves a usable
            # trace behind (the whole point of post-mortem tooling).
            probe.add_sink(JsonlSink(args.trace, flush_every=1))
            manifest = RunManifest(
                config={"command": "simulate", **run_config.to_dict()},
                seed=args.seed,
            )
        if args.monitors or args.dashboard:
            # Monitors attach before the dashboard so re-emitted alert
            # events reach the dashboard's alert panel.
            suite = MonitorSuite(
                default_monitors(
                    budget=scenario.budget, network=scenario.network
                )
            ).attach(probe)
        if args.dashboard:
            dashboard = Dashboard(
                budget=scenario.budget, ascii_only=args.ascii
            )
            probe.add_sink(dashboard)
    registry: MetricsRegistry | None = None
    server: MetricsServer | None = None
    if args.metrics_port is not None:
        registry = MetricsRegistry()
        if not sharded:
            # The sharded path feeds the registry itself (per-cell
            # sinks inside run_sharded); unsharded runs publish via a
            # TelemetrySink on the event bus.
            if probe is None:
                probe = Probe()
            probe.add_sink(TelemetrySink(registry))
        server = MetricsServer(registry, port=args.metrics_port)
        server.start()
        print(f"serving OpenMetrics at {server.url}", file=sys.stderr)
    if sharded:
        controller = None
    else:
        with telemetry_context(registry):
            controller = _build_controller(scenario, args, tracer=probe)
    if dashboard is None:
        cells_note = f"; cells {args.cells}" if sharded else ""
        print(
            f"{scenario.network}; budget {scenario.budget:.4f} $/slot; "
            f"solver {args.solver}; V={args.v}; horizon {args.horizon}"
            f"{cells_note}"
        )
    states = None
    if not sharded:
        states = (
            scenario.fresh_states(args.horizon, tracer=probe)
            if args.no_compiled_states
            else scenario.fresh_compiled_states(
                args.horizon, chunk=args.state_chunk, tracer=probe
            )
        )

    def salvage(status: str) -> None:
        # A dead run must still leave its evidence behind: flush the
        # partial JSONL trace and write the manifest (atomically, with
        # the outcome stamped) before exiting nonzero.
        if server is not None:
            server.close()
        if dashboard is not None:
            dashboard.close()
        if probe is not None:
            probe.close()
            if args.trace:
                assert manifest is not None
                manifest.status = status
                if registry is not None:
                    manifest.record_telemetry(registry)
                manifest_path = manifest.finish().write(
                    manifest_path_for(args.trace)
                )
                print(
                    f"partial trace written to {args.trace}", file=sys.stderr
                )
                print(f"manifest written to {manifest_path}", file=sys.stderr)
                if registry is not None:
                    # The live registry holds everything scraped so far;
                    # persist a final snapshot next to the salvaged
                    # trace so post-mortems keep the telemetry too.
                    metrics_path = f"{args.trace}.metrics"
                    with open(metrics_path, "w", encoding="utf-8") as fh:
                        fh.write(registry.render_openmetrics())
                    print(
                        f"metrics snapshot written to {metrics_path}",
                        file=sys.stderr,
                    )

    try:
        if sharded:
            result = repro.api.run(
                config=run_config,
                scenario=scenario,
                tracer=probe,
                metrics_registry=registry,
            )
        else:
            result = repro.run_simulation(
                controller,
                states,
                budget=scenario.budget,
                tracer=probe,
            )
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        salvage("interrupted")
        return 130
    except Exception:
        traceback.print_exc()
        salvage("crashed")
        return 1
    if server is not None:
        server.close()
    if dashboard is not None:
        dashboard.close()
    print(summary_to_json(result.summary()))
    if suite is not None:
        print()
        print(suite.finish().render())
    if probe is not None:
        probe.close()
        if args.profile:
            print()
            print(probe.phases.table())
        if args.trace:
            manifest_path = manifest_path_for(args.trace)
            assert manifest is not None
            if registry is not None:
                manifest.record_telemetry(registry)
            manifest.finish().write(manifest_path)
            print(f"trace written to {args.trace}")
            print(f"manifest written to {manifest_path}")
    if args.profile and registry is not None:
        print()
        print(render_profile_report(registry, ascii_only=args.ascii))
    if args.chart:
        print()
        print(line_chart(result.backlog, title="virtual queue backlog Q(t)"))
        print()
        print(line_chart(result.latency, title="overall latency L_t (s)"))
    if args.output:
        written = save_result(result, args.output)
        print(f"trajectories written to {written}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.list or args.name is None:
        print("available experiments:")
        for name in RUNNERS:
            print(f"  {name}")
        return 0
    if args.name not in RUNNERS:
        print(f"unknown experiment {args.name!r}; use --list", file=sys.stderr)
        return 2
    result = RUNNERS[args.name]()
    print(result.table())
    if args.verify:
        result.verify()
        print("\nall qualitative claims verified")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    names = None
    if args.all:
        names = list(RUNNERS)
    elif args.names:
        names = args.names
    text = generate_report(names, path=args.output, verify=not args.no_verify)
    if args.output:
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_equilibrium(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    backlog = estimate_equilibrium_backlog(
        scenario.network,
        list(scenario.fresh_states(repro.DEFAULT_PERIOD)),
        scenario.controller_rng("cli-equilibrium"),
        v=args.v,
        budget=scenario.budget,
    )
    print(f"budget            : {scenario.budget:.4f} $/slot")
    print(f"V                 : {args.v}")
    print(f"equilibrium Q*    : {backlog:.3f}")
    print(f"Q*/V              : {backlog / args.v:.4f}")
    print()
    print(_guarantee_lines(scenario))
    return 0


def _guarantee_lines(scenario: repro.Scenario) -> str:
    """Check one sampled CGBA solve against the Theorem 2/3 guarantees.

    Solves P2-A on the scenario's first slot at mid-range clocks and
    compares the achieved latency against (a) the convex relaxation
    lower bound scaled by the CGBA approximation ratio (Theorem 2) and
    (b) the same bound scaled by the BDMA ratio ``2.62 R_F`` (Theorem 3,
    queue term zero at ``Q=0``).
    """
    from repro.core.cgba import solve_p2a_cgba
    from repro.network.connectivity import StrategySpace

    network = scenario.network
    state = list(scenario.fresh_states(1))[0]
    space = StrategySpace(network, state.coverage(), state.available_servers)
    mid = 0.5 * (network.freq_min + network.freq_max)
    rng = scenario.controller_rng("cli-guarantee")
    result = solve_p2a_cgba(network, state, space, mid, rng)
    measured = result.total_latency
    lower = p2a_lower_bound(network, state, space, mid)
    cgba = check_cgba_guarantee(measured, lower)
    bdma = check_bdma_guarantee(network, measured, lower)
    lines = ["guarantees (one sampled slot, mid-range clocks):"]
    for name, check in (("CGBA (Thm 2)", cgba), ("BDMA (Thm 3)", bdma)):
        verdict = "ok" if check.satisfied else "VIOLATED"
        lines.append(
            f"  {name:<13}: measured {check.measured:.4f} <= "
            f"bound {check.bound:.4f} [{verdict}] "
            f"(headroom {check.headroom:.2f}x)"
        )
    return "\n".join(lines)


def _telemetry_run(args: argparse.Namespace) -> MetricsRegistry:
    """Run one simulation publishing telemetry into a fresh registry.

    Shared by ``metrics snapshot`` and ``profile report``: both need a
    finished run's registry, differing only in how they render it.
    """
    registry = MetricsRegistry()
    scenario = _build_scenario(args)
    cells = None
    if args.cells > 1:
        cells = repro.CellConfig(
            count=args.cells,
            processes=args.cell_processes,
            runtime=args.cell_runtime,
        )
    repro.api.run(
        scenario=scenario,
        controller=args.solver,
        horizon=args.horizon,
        v=args.v,
        z=args.z,
        engine_backend=args.backend,
        cells=cells,
        metrics_registry=registry,
    )
    return registry


def _cmd_metrics_snapshot(args: argparse.Namespace) -> int:
    registry = _telemetry_run(args)
    text = registry.render_openmetrics()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"OpenMetrics snapshot written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_profile_report(args: argparse.Namespace) -> int:
    registry = _telemetry_run(args)
    print(render_profile_report(registry, top=args.top, ascii_only=args.ascii))
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    trace = load_trace(args.path)
    print(trace.summary())
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    base = load_trace(args.base)
    new = load_trace(args.new)
    diff = diff_traces(
        base,
        new,
        time_threshold=args.time_threshold,
        metric_threshold=args.metric_threshold,
        min_phase_seconds=args.min_phase_seconds,
        include_times=not args.ignore_times,
    )
    print(diff.render())
    return 0 if diff.ok else 1


def _cmd_info(args: argparse.Namespace) -> int:
    scenario = _build_scenario(args)
    net = scenario.network
    print(f"repro {repro.__version__}")
    print(f"paper: Energy-Aware Online Task Offloading and Resource "
          f"Allocation for Mobile Edge Computing (ICDCS 2023)")
    print(f"default scenario (seed {args.seed}): {net}")
    print(f"  budget {scenario.budget:.4f} $/slot "
          f"(fraction {args.budget_fraction} of the feasible range)")
    print(f"  frequency ranges: {net.freq_min.min():.1f}-"
          f"{net.freq_max.max():.1f} GHz")
    print(f"  core counts: {sorted(set(int(c) for c in net.cores))}")
    print(f"  R_F (Theorem 3): {net.max_frequency_ratio():.2f}")
    return 0


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="root seed")
    parser.add_argument("--devices", type=int, default=50,
                        help="number of mobile devices I")
    parser.add_argument("--workload", choices=("uniform", "diurnal"),
                        default="uniform")
    parser.add_argument("--budget-fraction", type=float, default=0.5,
                        help="budget position in the feasible cost range")
    parser.add_argument("--v", type=float, default=100.0,
                        help="DPP trade-off parameter V")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-aware online task offloading (ICDCS 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one online simulation")
    _add_scenario_arguments(sim)
    sim.add_argument("--horizon", type=int, default=48, help="slots to simulate")
    sim.add_argument("--solver", choices=_SOLVER_CHOICES, default="bdma")
    sim.add_argument("--backend", choices=("numpy", "jit"), default="numpy",
                     help="array-kernel backend for the solver hot loops "
                          "(bit-identical results; jit needs numba or a C "
                          "compiler, else it falls back to numpy)")
    sim.add_argument("--z", type=int, default=3, help="BDMA alternation rounds")
    sim.add_argument("--fraction", type=float, default=1.0,
                     help="clock position in [0,1] for --solver fixed")
    sim.add_argument("--warm-start", action="store_true",
                     help="start the queue at its estimated equilibrium")
    sim.add_argument("--chart", action="store_true",
                     help="print text charts of backlog and latency")
    sim.add_argument("--output", type=str, default=None,
                     help="write trajectories to this .npz file")
    sim.add_argument("--trace", type=str, default=None, metavar="PATH",
                     help="stream span/counter/slot events to this JSONL "
                          "file (plus a sibling .manifest.json)")
    sim.add_argument("--profile", action="store_true",
                     help="print the per-phase timing table after the run")
    sim.add_argument("--monitors", action="store_true",
                     help="attach the domain health monitors and print "
                          "the health report after the run")
    sim.add_argument("--dashboard", action="store_true",
                     help="redraw a live per-slot terminal dashboard "
                          "(implies --monitors wiring for alerts)")
    sim.add_argument("--ascii", action="store_true",
                     help="dashboard renders with 7-bit ASCII only")
    sim.add_argument("--no-compiled-states", action="store_true",
                     help="draw states one slot at a time instead of the "
                          "compiled chunked pipeline (identical values)")
    sim.add_argument("--state-chunk", type=int, default=32,
                     help="slots per compiled state chunk")
    sim.add_argument("--cells", type=int, default=1,
                     help="shard the network into this many cells, each "
                          "with its own controller under one coordinated "
                          "budget (1 = unsharded)")
    sim.add_argument("--cell-epoch", type=int, default=24,
                     help="slots between budget-coordinator re-splits")
    sim.add_argument("--cell-processes", type=int, default=None,
                     help="worker processes for cell execution "
                          "(default: sequential in-process)")
    sim.add_argument("--cell-runtime", choices=("resident", "legacy"),
                     default="resident",
                     help="pooled execution runtime: resident stateful "
                          "workers (default) or the legacy per-epoch "
                          "process pool")
    sim.add_argument("--coordinator", choices=("proportional", "static"),
                     default="proportional",
                     help="budget re-split policy across cells")
    sim.add_argument("--overload-high", type=float, default=None,
                     metavar="BACKLOG",
                     help="enable overload protection: enter admission "
                          "control when the virtual-queue backlog reaches "
                          "this watermark")
    sim.add_argument("--overload-low", type=float, default=None,
                     metavar="BACKLOG",
                     help="recover from overload below this backlog "
                          "(default: half of --overload-high)")
    sim.add_argument("--overload-shed", type=float, default=0.25,
                     metavar="FRACTION",
                     help="fraction of active tasks shed per overloaded "
                          "slot, heaviest first")
    sim.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                     help="serve live OpenMetrics at "
                          "http://127.0.0.1:PORT/metrics for the duration "
                          "of the run (0 = ephemeral port; the URL is "
                          "printed to stderr)")
    sim.set_defaults(handler=_cmd_simulate)

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", nargs="?", default=None,
                     help="experiment id (fig2..fig9, ablation-*)")
    exp.add_argument("--list", action="store_true", help="list experiments")
    exp.add_argument("--verify", action="store_true",
                     help="assert the paper's qualitative claims")
    exp.set_defaults(handler=_cmd_experiment)

    rep = sub.add_parser("report", help="run experiments into one report")
    rep.add_argument("names", nargs="*", help="experiment ids (default: quick set)")
    rep.add_argument("--all", action="store_true",
                     help="run every experiment (several minutes)")
    rep.add_argument("--output", type=str, default=None,
                     help="write the markdown report to this file")
    rep.add_argument("--no-verify", action="store_true",
                     help="skip the qualitative-claim checks")
    rep.set_defaults(handler=_cmd_report)

    eq = sub.add_parser("equilibrium",
                        help="estimate the steady-state queue backlog")
    _add_scenario_arguments(eq)
    eq.set_defaults(handler=_cmd_equilibrium)

    trace = sub.add_parser("trace", help="inspect recorded JSONL traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    tsum = trace_sub.add_parser("summary", help="summarise one trace")
    tsum.add_argument("path", help="JSONL trace file")
    tsum.set_defaults(handler=_cmd_trace_summary)

    tdiff = trace_sub.add_parser(
        "diff",
        help="compare two traces; exit 1 on regression (CI gate)",
    )
    tdiff.add_argument("base", help="baseline JSONL trace")
    tdiff.add_argument("new", help="candidate JSONL trace")
    tdiff.add_argument("--time-threshold", type=float, default=0.5,
                       help="relative phase-time growth that counts as a "
                            "regression (0.5 = +50%%)")
    tdiff.add_argument("--metric-threshold", type=float, default=0.10,
                       help="relative metric growth that counts as a "
                            "regression")
    tdiff.add_argument("--min-phase-seconds", type=float, default=5e-4,
                       help="ignore phase regressions below this absolute "
                            "growth (noise floor)")
    tdiff.add_argument("--ignore-times", action="store_true",
                       help="compare metrics only (timings are machine-"
                            "dependent; use for cross-machine CI gates)")
    tdiff.set_defaults(handler=_cmd_trace_diff)

    def _add_telemetry_run_arguments(p: argparse.ArgumentParser) -> None:
        _add_scenario_arguments(p)
        p.add_argument("--horizon", type=int, default=48,
                       help="slots to simulate")
        p.add_argument("--solver", choices=_SOLVER_CHOICES, default="bdma")
        p.add_argument("--backend", choices=("numpy", "jit"), default="numpy")
        p.add_argument("--z", type=int, default=3,
                       help="BDMA alternation rounds")
        p.add_argument("--cells", type=int, default=1,
                       help="shard into this many cells (1 = unsharded)")
        p.add_argument("--cell-processes", type=int, default=None,
                       help="worker processes for cell execution")
        p.add_argument("--cell-runtime", choices=("resident", "legacy"),
                       default="resident",
                       help="pooled execution runtime")

    metrics = sub.add_parser(
        "metrics", help="run with telemetry and export OpenMetrics"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    msnap = metrics_sub.add_parser(
        "snapshot",
        help="run one simulation and dump its OpenMetrics exposition",
    )
    _add_telemetry_run_arguments(msnap)
    msnap.add_argument("--output", type=str, default=None, metavar="PATH",
                       help="write the exposition text here (default: stdout)")
    msnap.set_defaults(handler=_cmd_metrics_snapshot)

    prof = sub.add_parser(
        "profile", help="per-kernel/per-phase latency profiling views"
    )
    prof_sub = prof.add_subparsers(dest="profile_command", required=True)
    preport = prof_sub.add_parser(
        "report",
        help="run one simulation and print the hot-path latency profile",
    )
    _add_telemetry_run_arguments(preport)
    preport.add_argument("--top", type=int, default=12,
                         help="rows per histogram family")
    preport.add_argument("--ascii", action="store_true",
                         help="render sparklines with 7-bit ASCII only")
    preport.set_defaults(handler=_cmd_profile_report)

    info = sub.add_parser("info", help="version and scenario overview")
    _add_scenario_arguments(info)
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.handler(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
