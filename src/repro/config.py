"""One-call construction of the paper's simulation scenario (Sec. VI-A).

:func:`make_paper_scenario` wires together every substrate with the
published settings: six base stations, two rooms of eight servers,
uniform task draws (50-200 Mcycles, 3-10 Mbit), uniform channel draws
(15-50 bps/Hz), a synthetic NYISO-like diurnal price, and a budget
placed a chosen fraction of the way between the minimum and maximum
achievable costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.cost import suggest_budget
from repro.energy.pricing import PeriodicPriceModel, PriceModel, synthetic_nyiso_trend
from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkBuilder
from repro.network.validation import validate_network
from repro.radio.channel import ChannelModel, UniformChannelModel
from repro.radio.fronthaul import FronthaulModel
from repro.radio.mobility import MobilityModel
from repro.sim.faults import FaultPlan, OutageModel
from repro.sim.scenario import Scenario, StateGenerator
from repro.sim.seeding import SeedBank
from repro.workload.generators import (
    PeriodicTaskGenerator,
    TaskGenerator,
    UniformTaskGenerator,
)
from repro.workload.traces import diurnal_profile

#: Period (slots per day) shared by the default price and workload trends.
DEFAULT_PERIOD = 24

#: Wall-clock duration of one slot (hours); slots are hourly like the
#: NYISO prices motivating the model.
SLOT_HOURS = 1.0

#: Converts $/MWh prices into dollars per watt per slot, so energy costs
#: come out in dollars: $/MWh * W * h / (1e6 Wh/MWh).
PRICE_SCALE = SLOT_HOURS / 1e6


@dataclass
class ScenarioConfig:
    """Knobs for :func:`make_paper_scenario` beyond the network builder's.

    Attributes:
        num_devices: Number of mobile devices ``I``.
        workload: ``"uniform"`` (paper's simulation) or ``"diurnal"``
            (paper's non-iid model: periodic trend + noise).
        price_noise_std: Iid noise std around the price trend ($/MWh).
        budget_fraction: Budget position between the min and max
            achievable slot costs (see
            :func:`repro.energy.cost.suggest_budget`).
        workload_noise_cv: Noise level of the diurnal workload.
    """

    num_devices: int = 100
    workload: str = "uniform"
    price_noise_std: float = 3.0
    budget_fraction: float = 0.5
    workload_noise_cv: float = 0.1


def make_paper_scenario(
    seed: int,
    *,
    config: ScenarioConfig | None = None,
    mobility: MobilityModel | None = None,
    channel: ChannelModel | None = None,
    prices: PriceModel | None = None,
    tasks: TaskGenerator | None = None,
    fronthaul: FronthaulModel | None = None,
    faults: OutageModel | None = None,
    fault_plan: FaultPlan | None = None,
    **network_overrides: object,
) -> Scenario:
    """Build the default reproducible scenario.

    Args:
        seed: Root seed; all randomness derives from it.
        config: Scenario-level knobs; defaults mirror the paper.
        mobility: Override the (static) mobility model.
        channel: Override the uniform channel model.
        prices: Override the synthetic NYISO price model.
        tasks: Override the task generator entirely (its device count
            must match).
        fronthaul: Optional time-varying fronthaul-efficiency model
            (static per the paper when omitted).
        faults: Optional server-outage model (always-up per the paper
            when omitted).
        fault_plan: Optional composable :class:`~repro.sim.faults.FaultPlan`
            applied on top of every drawn state from its own seeded
            stream (base-station outages, fronthaul degradation,
            price-feed dropouts, scripted incidents, ...).
        **network_overrides: Passed to
            :class:`repro.network.builder.NetworkBuilder` (e.g.
            ``num_base_stations=8``).

    Returns:
        A validated :class:`~repro.sim.scenario.Scenario`.
    """
    cfg = config if config is not None else ScenarioConfig()
    seeds = SeedBank(seed)

    builder = NetworkBuilder(num_devices=cfg.num_devices, **network_overrides)  # type: ignore[arg-type]
    network, coverage = builder.build(seeds.rng("topology"))
    validate_network(network, coverage)

    if tasks is None:
        tasks = _make_tasks(cfg, seeds)
    elif tasks.num_devices != network.num_devices:
        raise ConfigurationError("task generator device count mismatch")
    if channel is None:
        channel = UniformChannelModel()
    if prices is None:
        prices = PeriodicPriceModel(
            synthetic_nyiso_trend(period=DEFAULT_PERIOD),
            noise_std=cfg.price_noise_std,
        )

    generator = StateGenerator(
        network,
        tasks,
        channel,
        prices,
        mobility=mobility,
        price_scale=PRICE_SCALE,
        fronthaul=fronthaul,
        faults=faults,
    )
    # suggest_budget works in the price model's native units ($/MWh); the
    # same conversion applied to per-slot prices makes the budget dollars.
    budget = PRICE_SCALE * suggest_budget(
        network.energy_models(),
        network.freq_min,
        network.freq_max,
        prices,
        fraction=cfg.budget_fraction,
    )
    return Scenario(
        network=network,
        generator=generator,
        seeds=seeds,
        budget=budget,
        fault_plan=fault_plan,
    )


def _make_tasks(cfg: ScenarioConfig, seeds: SeedBank) -> TaskGenerator:
    """Instantiate the configured workload family."""
    if cfg.workload == "uniform":
        return UniformTaskGenerator(cfg.num_devices)
    if cfg.workload == "diurnal":
        rng = seeds.rng("workload-bases")
        base_cycles = rng.uniform(50e6, 200e6, size=cfg.num_devices)
        base_bits = rng.uniform(3e6, 10e6, size=cfg.num_devices)
        return PeriodicTaskGenerator(
            base_cycles,
            base_bits,
            profile=diurnal_profile(period=DEFAULT_PERIOD),
            noise_cv=cfg.workload_noise_cv,
        )
    raise ConfigurationError(
        f"unknown workload {cfg.workload!r}; expected 'uniform' or 'diurnal'"
    )
