"""The paper's primary contribution: BDMA-based DPP and its pieces.

Layout (bottom-up):

* :mod:`repro.core.state` -- per-slot system state ``beta_t`` and the
  five decision types ``alpha_t`` with constraint validation.
* :mod:`repro.core.allocation` -- Lemma 1: closed-form optimal bandwidth
  and computing resource allocations.
* :mod:`repro.core.latency` -- Eqs. (7)-(20): latencies under arbitrary
  allocations and the closed forms ``T^P``/``T^C`` under optimal ones.
* :mod:`repro.core.congestion_game` -- the weighted congestion game view
  of P2-A (WCG) with incremental loads and an exact potential function.
* :mod:`repro.core.cgba` -- Algorithm 3, CGBA(lambda).
* :mod:`repro.core.p2b` -- the convex frequency-scaling subproblem P2-B,
  solved per server.
* :mod:`repro.core.bdma` -- Algorithm 2, BDMA(z), alternating P2-A/P2-B.
* :mod:`repro.core.virtual_queue` -- the DPP virtual queue ``Q(t)``.
* :mod:`repro.core.drift_penalty` -- the drift-plus-penalty objective
  ``f(x, y, Omega) = V T_t + Q(t) Theta_t``.
* :mod:`repro.core.controller` -- Algorithm 1: the online BDMA-based DPP
  controller, parameterised by the P2-A solver so ROPT-/MCBA-based DPP
  reuse it.
"""

from repro.core.state import (
    Assignment,
    Decision,
    ResourceAllocation,
    SlotState,
)
from repro.core.allocation import optimal_allocation
from repro.core.latency import (
    communication_latency,
    optimal_communication_latency,
    optimal_processing_latency,
    optimal_total_latency,
    per_device_latency,
    processing_latency,
    total_latency,
)
from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.cgba import CGBAResult, solve_p2a_cgba
from repro.core.p2b import solve_p2b
from repro.core.bdma import BDMAResult, solve_p2_bdma
from repro.core.virtual_queue import VirtualQueue
from repro.core.drift_penalty import dpp_objective
from repro.core.budget import (
    BudgetCoordinator,
    BudgetSchedule,
    ConstantBudget,
    CoordinatedBudget,
    PeriodicBudget,
    demand_weighted_budget,
)
from repro.core.controller import (
    DPPController,
    P2ASolver,
    SlotRecord,
)
from repro.core.resilience import ResiliencePolicy, SolverChaos

__all__ = [
    "SlotState",
    "Assignment",
    "ResourceAllocation",
    "Decision",
    "optimal_allocation",
    "processing_latency",
    "communication_latency",
    "total_latency",
    "per_device_latency",
    "optimal_processing_latency",
    "optimal_communication_latency",
    "optimal_total_latency",
    "OffloadingCongestionGame",
    "CGBAResult",
    "solve_p2a_cgba",
    "solve_p2b",
    "BDMAResult",
    "solve_p2_bdma",
    "VirtualQueue",
    "dpp_objective",
    "BudgetSchedule",
    "ConstantBudget",
    "PeriodicBudget",
    "CoordinatedBudget",
    "BudgetCoordinator",
    "demand_weighted_budget",
    "DPPController",
    "P2ASolver",
    "SlotRecord",
    "ResiliencePolicy",
    "SolverChaos",
]
