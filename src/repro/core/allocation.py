"""Lemma 1: closed-form optimal bandwidth and compute allocations.

Given the discrete selections ``(x_t, y_t)``, the REAL problem is convex
and its KKT conditions yield square-root proportional-fair shares:

* compute: ``phi_i  proportional to  sqrt(f_i / sigma_{i,n})`` among the
  devices sharing server ``n`` (Eq. 15);
* access: ``psi^A_i  proportional to  sqrt(d_i / h_{i,k})`` among the
  devices sharing base station ``k`` (Eq. 16);
* fronthaul: ``psi^F_i  proportional to  sqrt(d_i / h^F_k)``; since
  ``h^F_k`` is common to the group it cancels, leaving ``sqrt(d_i)``
  (Eq. 17).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import Assignment, ResourceAllocation, SlotState
from repro.exceptions import ValidationError
from repro.network.topology import MECNetwork
from repro.types import FloatArray


def _proportional_shares(
    weights: FloatArray, groups: np.ndarray, num_groups: int
) -> FloatArray:
    """Normalise *weights* within each group: ``w_i / sum_{j in group_i} w_j``.

    Devices with zero weight (zero demand) get a zero share; a group whose
    total weight is zero produces all-zero shares, which is harmless since
    the corresponding latency terms are zero too.
    """
    totals = np.bincount(groups, weights=weights, minlength=num_groups)
    denom = totals[groups]
    shares = np.zeros_like(weights)
    positive = denom > 0.0
    shares[positive] = weights[positive] / denom[positive]
    return shares


def optimal_allocation(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
) -> ResourceAllocation:
    """Compute ``(Psi_t^*(x_t), Phi_t^*(y_t))`` per Lemma 1.

    Args:
        network: Static topology (supplies ``sigma``).
        state: The slot's system state (supplies ``f_t, d_t, h_t``).
        assignment: The discrete selections ``(x_t, y_t)``.

    Returns:
        The optimal :class:`ResourceAllocation`.  Shares within each
        resource group sum to exactly 1 (when the group has any positive
        demand), so constraints (4)-(6) hold with equality.

    Raises:
        ValidationError: If a device's chosen base station does not cover
            it this slot (``h_{i,k} = 0`` would divide by zero).
    """
    devices = np.arange(assignment.num_devices)
    h_chosen = state.spectral_efficiency[devices, assignment.bs_of]
    if np.any((h_chosen <= 0.0) & (state.bits > 0.0)):
        bad = int(np.flatnonzero((h_chosen <= 0.0) & (state.bits > 0.0))[0])
        raise ValidationError(
            f"device {bad} selected base station {int(assignment.bs_of[bad])} "
            "with zero spectral efficiency"
        )

    sigma_chosen = network.suitability[devices, assignment.server_of]
    compute_weights = np.sqrt(state.cycles / sigma_chosen)
    compute_share = _proportional_shares(
        compute_weights, assignment.server_of, network.num_servers
    )

    access_weights = np.zeros(assignment.num_devices)
    positive = h_chosen > 0.0
    access_weights[positive] = np.sqrt(state.bits[positive] / h_chosen[positive])
    access_share = _proportional_shares(
        access_weights, assignment.bs_of, network.num_base_stations
    )

    fronthaul_weights = np.sqrt(state.bits)
    fronthaul_share = _proportional_shares(
        fronthaul_weights, assignment.bs_of, network.num_base_stations
    )

    return ResourceAllocation(
        access_share=access_share,
        fronthaul_share=fronthaul_share,
        compute_share=compute_share,
    )
