"""BDMA (Algorithm 2): alternating minimisation for P2.

P2 couples the NP-hard discrete selection ``(x, y)`` with the convex
frequency decision ``Omega``.  Motivated by Benders' decomposition, BDMA
alternates: starting from ``Omega = Omega^L`` (all servers at their
lowest clock), it solves P2-A for ``(x, y)`` under the current ``Omega``
(via a pluggable P2-A solver, CGBA by default), then P2-B for ``Omega``
under the new ``(x, y)``, for ``z`` rounds, returning the best
``f(x, y, Omega)`` seen.  Theorem 3 gives the
``R = 2.62 R_F / (1 - 8 lambda)`` guarantee already for ``z = 1``;
larger ``z`` can only improve the returned objective.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.cgba import solve_p2a_cgba
from repro.core.drift_penalty import energy_cost
from repro.core.latency import optimal_total_latency
from repro.core.p2b import _BATCH_CUTOVER, solve_p2b
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError, DeadlineError
from repro.kernels import KernelBackend
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.solvers.potential_game import EngineStats
from repro.types import FloatArray, Rng


class P2ASolver(Protocol):
    """Anything that produces an assignment for P2-A under fixed ``Omega``.

    Implementations: CGBA (the paper's algorithm), ROPT (uniform random),
    MCBA (Markov-chain Monte Carlo), and the exact branch-and-bound
    baseline; the DPP controller composes with any of them.
    """

    def __call__(
        self,
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment: ...


def cgba_p2a_solver(
    *,
    slack: float = 0.0,
    max_iter: int = 100_000,
    engine: str = "fast",
    tracer: "Tracer | None" = None,
    reuse_game: bool = True,
    accept_partial: bool = False,
    backend: "KernelBackend | str | None" = None,
) -> P2ASolver:
    """The default P2-A solver: CGBA(lambda) (Algorithm 3).

    The returned callable accumulates the best-response engine's work
    counters across calls; BDMA drains them via ``pop_stats()`` so each
    slot's :class:`BDMAResult` reports the engine work it caused.

    With ``reuse_game`` (the default), consecutive calls on the same
    ``(network, state, space)`` triple -- BDMA's alternation rounds --
    reuse one :class:`OffloadingCongestionGame` instead of rebuilding
    its candidate arrays every round.  Reuse is bit-identical to fresh
    construction (``update_frequencies`` + ``reset_profile`` reproduce
    the constructor's arithmetic and rng consumption exactly).

    ``accept_partial`` forwards to :func:`solve_p2a_cgba`: a run that
    exhausts ``max_iter`` returns its best-so-far profile (with a
    ``resilience.partial_accepts`` counter) instead of raising
    :class:`~repro.exceptions.ConvergenceError` -- the iteration-cap
    half of degraded-mode execution.

    ``backend`` selects the array-kernel backend for the congestion
    game's hot loops (bit-identical across backends; wall-clock only).
    """
    accumulated = EngineStats()
    cache: dict = {"key": None, "game": None}

    def solve(
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment:
        game = None
        if reuse_game and cache["key"] is not None:
            # Identity comparison is the point: the cache holds strong
            # references, so matching ids mean the same live objects.
            net0, state0, space0 = cache["key"]
            if net0 is network and state0 is state and space0 is space:
                game = cache["game"]
        result = solve_p2a_cgba(
            network,
            state,
            space,
            frequencies,
            rng,
            slack=slack,
            initial=initial,
            max_iter=max_iter,
            engine=engine,
            tracer=tracer,
            game=game,
            accept_partial=accept_partial,
            backend=backend,
        )
        if reuse_game:
            cache["key"] = (network, state, space)
            cache["game"] = result.game
        if result.engine_stats is not None:
            accumulated.merge(result.engine_stats)
        return result.assignment

    def pop_stats() -> EngineStats:
        nonlocal accumulated
        stats, accumulated = accumulated, EngineStats()
        return stats

    solve.pop_stats = pop_stats  # type: ignore[attr-defined]
    # Warm-seeded CGBA is deterministic (max_gap selection, no rng once
    # an initial profile is given) and returns its seed at a fixed
    # point, which is what lets BDMA's fixed-point exit replay the
    # remaining rounds without running them.
    solve.supports_fixed_point = True  # type: ignore[attr-defined]
    return solve


@dataclass
class BDMAResult:
    """Outcome of one BDMA(z) run on P2.

    Attributes:
        assignment: Best discrete selections found.
        frequencies: Best clock frequencies found (GHz).
        objective: ``f(x, y, Omega)`` of the returned decision.
        latency: ``T_t`` of the returned decision -- the latency term
            already evaluated while scoring the round, so callers
            (the DPP controller) need not recompute it.
        cost: ``C_t`` of the returned decision, likewise.
        objective_history: Objective after each of the ``z`` rounds
            (non-increasing in its running minimum by construction).
        engine_stats: Aggregated best-response-engine counters across
            all ``z`` P2-A solves, when the solver reports them.
    """

    assignment: Assignment
    frequencies: FloatArray
    objective: float
    latency: float = 0.0
    cost: float = 0.0
    objective_history: list[float] = field(default_factory=list)
    engine_stats: EngineStats | None = None


def solve_p2_bdma(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    rng: Rng,
    *,
    queue_backlog: float,
    v: float,
    budget: float,
    z: int = 5,
    p2a_solver: P2ASolver | None = None,
    warm_start: bool = True,
    initial: Assignment | None = None,
    initial_frequencies: FloatArray | None = None,
    warm_brackets: bool = False,
    tracer: "Tracer | None" = None,
    deadline: float | None = None,
    backend: "KernelBackend | str | None" = None,
) -> BDMAResult:
    """Solve P2 by alternating P2-A and P2-B for ``z`` rounds.

    Args:
        network: Static topology.
        state: The slot's system state ``beta_t``.
        space: Feasible strategy sets.
        rng: Randomness for the P2-A solver's initial profiles.
        queue_backlog: The virtual queue ``Q(t)``.
        v: DPP trade-off parameter ``V``.
        budget: The time-average cost budget ``Cbar``.
        z: Number of alternation rounds (Algorithm 2's tunable).
        p2a_solver: P2-A solver; CGBA(0) when omitted.
        warm_start: Seed each round's P2-A solve with the previous
            round's assignment.  Algorithm 3 as printed starts from a
            random profile every time; warm starting reaches the same
            fixed points in fewer moves and is the practical choice.
            Set ``False`` for the literal algorithm.
        initial: Seed the *first* round's P2-A solve with this
            assignment (e.g. the previous slot's decision); only used
            when ``warm_start`` is enabled.
        initial_frequencies: Start the alternation from these clocks
            instead of Algorithm 2's ``Omega^L`` (e.g. the previous
            slot's optimum).  Changes round 1's P2-A landscape, so the
            trajectory is *not* bit-identical to the literal algorithm
            -- it reaches an equally good alternation fixed point, just
            along a shorter path.  Leave ``None`` for exact
            reproducibility.
        warm_brackets: Seed each round's P2-B golden-section search with
            the previous round's frequencies (``bracket_hint``); the
            optima agree with the cold search to the search tolerance
            but not bit for bit.  Leave ``False`` for exact
            reproducibility.  Ignored below the batch cutover fleet
            size, where the plain scalar loop beats any bracket
            narrowing (``bracket_hint`` is a batch-path feature).
        tracer: Observability tracer; when enabled, every round's P2-A
            and P2-B solve runs inside ``p2a``/``p2b`` spans, and the
            counters ``bdma.rounds`` (alternation rounds actually
            executed) and ``engine.warm_start_hits`` (rounds whose
            warm-seeded P2-A solve returned its seed, counting replayed
            rounds) are emitted.  The default CGBA solver is constructed
            with the same tracer so engine counters flow through;
            externally supplied ``p2a_solver`` callables are timed but
            not internally instrumented.
        deadline: Optional wall-clock deadline as a ``time.perf_counter``
            value (the solver-watchdog half of degraded-mode execution).
            Checked between alternation rounds: once expired, the best
            decision so far is returned immediately (with a
            ``resilience.deadline_truncations`` counter).  If the
            deadline expires before even one round finished, a
            :class:`~repro.exceptions.DeadlineError` is raised for the
            caller's fallback chain.  ``None`` (the default) never
            truncates, so healthy runs are bit-identical.
        backend: Array-kernel backend (``"numpy"``/``"jit"``) used by
            the default CGBA solver's congestion game and by the P2-B
            frequency search.  Backends are bit-identical by contract,
            so this changes wall-clock only.  An externally supplied
            ``p2a_solver`` is not affected (configure its backend at
            construction); P2-B still honours the choice.

    Returns:
        The best decision by P2 objective across all rounds.

    Raises:
        DeadlineError: The ``deadline`` expired with zero completed
            rounds.

    Notes:
        **Fixed-point exit (bit-exact, always on when eligible).**  When
        ``warm_start`` is enabled and the solver advertises
        ``supports_fixed_point`` (the default CGBA solver does), a round
        whose P2-A solve returns its own seed ends the alternation
        early: P2-B depends only on the assignment, so it would return
        last round's frequencies bit for bit, the objective would
        repeat, and the next warm-seeded P2-A solve -- deterministic,
        consuming no randomness -- would return the same assignment
        again.  Every remaining round is therefore an exact replay; the
        returned decision and ``objective_history`` are bit-identical to
        running all ``z`` rounds, only the engine work counters shrink.
    """
    return drive_p2b(
        bdma_request_stream(
            network,
            state,
            space,
            rng,
            queue_backlog=queue_backlog,
            v=v,
            budget=budget,
            z=z,
            p2a_solver=p2a_solver,
            warm_start=warm_start,
            initial=initial,
            initial_frequencies=initial_frequencies,
            warm_brackets=warm_brackets,
            tracer=tracer,
            deadline=deadline,
            backend=backend,
        )
    )


def drive_p2b(stream):
    """Run a P2-B request stream to completion, one solve at a time.

    *stream* is a generator that yields :func:`~repro.core.p2b.solve_p2b`
    keyword dicts, receives the resulting frequencies back, and returns
    its final value -- the protocol produced by
    :func:`bdma_request_stream` and
    :meth:`repro.core.controller.DPPController.step_requests`.  This
    driver is the sequential interpreter; lockstep drivers
    (:mod:`repro.sim.batched`) advance several streams together and fuse
    their P2-B searches into one kernel invocation instead.
    """
    try:
        request = next(stream)
        while True:
            request = stream.send(solve_p2b(**request))
    except StopIteration as stop:
        return stop.value


def bdma_request_stream(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    rng: Rng,
    *,
    queue_backlog: float,
    v: float,
    budget: float,
    z: int = 5,
    p2a_solver: P2ASolver | None = None,
    warm_start: bool = True,
    initial: Assignment | None = None,
    initial_frequencies: FloatArray | None = None,
    warm_brackets: bool = False,
    tracer: "Tracer | None" = None,
    deadline: float | None = None,
    backend: "KernelBackend | str | None" = None,
):
    """Generator form of :func:`solve_p2_bdma` (same arguments).

    Yields one :func:`~repro.core.p2b.solve_p2b` keyword dict per
    alternation round, expects the resulting frequency array to be sent
    back, and returns the :class:`BDMAResult`.  Driving it with
    :func:`drive_p2b` *is* ``solve_p2_bdma``; batched replication drives
    several streams in lockstep so their P2-B searches can share one
    kernel call (bit-identical either way -- the search lanes are
    independent).
    """
    if z < 1:
        raise ConfigurationError(f"z must be a positive integer, got {z}")
    if v <= 0.0:
        raise ConfigurationError(f"V must be positive, got {v}")
    if queue_backlog < 0.0:
        raise ConfigurationError("queue backlog cannot be negative")
    tracer = as_tracer(tracer)
    solver = (
        p2a_solver
        if p2a_solver is not None
        else cgba_p2a_solver(tracer=tracer, backend=backend)
    )
    pop_stats = getattr(solver, "pop_stats", None)
    if callable(pop_stats):
        pop_stats()  # discard counters accumulated by earlier callers

    if initial_frequencies is None:
        frequencies = network.freq_min.copy()  # Omega^L (Algorithm 2, line 1)
        hint_ready = False
    else:
        frequencies = np.asarray(initial_frequencies, dtype=np.float64).copy()
        hint_ready = True  # a carried-over optimum is a meaningful hint
    best_objective = float("inf")
    best_assignment: Assignment | None = None
    best_frequencies = frequencies.copy()
    best_latency = 0.0
    best_cost = 0.0
    history: list[float] = []
    previous: Assignment | None = initial
    fixed_point_capable = warm_start and getattr(
        solver, "supports_fixed_point", False
    )
    warm_hits = 0
    rounds_run = 0
    use_hints = warm_brackets and network.num_servers >= _BATCH_CUTOVER

    truncated = False
    for round_idx in range(z):
        if deadline is not None and time.perf_counter() >= deadline:
            if best_assignment is None:
                raise DeadlineError(
                    "slot deadline expired before the first BDMA round finished"
                )
            truncated = True
            # Pad the history like the fixed-point exit does, so its
            # length stays z regardless of where the truncation hit.
            history.extend([history[-1]] * (z - round_idx))
            break
        with tracer.span("p2a"):
            assignment = solver(
                network,
                state,
                space,
                frequencies,
                rng,
                initial=previous if warm_start else None,
            )
        rounds_run += 1
        if (
            warm_start
            and previous is not None
            and np.array_equal(assignment.bs_of, previous.bs_of)
            and np.array_equal(assignment.server_of, previous.server_of)
        ):
            warm_hits += 1
            if fixed_point_capable and round_idx > 0:
                # Alternation fixed point: ``frequencies`` already holds
                # P2-B of this very assignment (computed last round), so
                # this round and every later one replay bit for bit --
                # see the fixed-point note in the docstring.
                remaining = z - round_idx
                warm_hits += remaining - 1
                history.extend([history[-1]] * remaining)
                break
        with tracer.span("p2b"):
            frequencies = yield dict(
                network=network,
                state=state,
                assignment=assignment,
                queue_backlog=queue_backlog,
                v=v,
                bracket_hint=frequencies if (use_hints and hint_ready) else None,
                tracer=tracer,
                backend=backend,
            )
        hint_ready = True
        # dpp_objective's arithmetic, with the latency and cost terms
        # kept so the winning round's values ride along in the result
        # (the controller reports both; recomputing them per slot would
        # double the work for identical floats).
        latency = optimal_total_latency(network, state, assignment, frequencies)
        cost = energy_cost(
            network,
            frequencies,
            state.price,
            available=state.available_servers,
        )
        objective = v * latency + queue_backlog * (cost - budget)
        history.append(objective)
        if objective < best_objective:
            best_objective = objective
            best_assignment = assignment
            best_frequencies = frequencies.copy()
            best_latency = latency
            best_cost = cost
        previous = assignment

    if tracer.enabled:
        tracer.counter("bdma.rounds", rounds_run)
        tracer.counter("engine.warm_start_hits", warm_hits)
        if truncated:
            tracer.counter("resilience.deadline_truncations", 1)
    assert best_assignment is not None
    return BDMAResult(
        assignment=best_assignment,
        frequencies=best_frequencies,
        objective=best_objective,
        latency=best_latency,
        cost=best_cost,
        objective_history=history,
        engine_stats=pop_stats() if callable(pop_stats) else None,
    )
