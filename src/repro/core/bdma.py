"""BDMA (Algorithm 2): alternating minimisation for P2.

P2 couples the NP-hard discrete selection ``(x, y)`` with the convex
frequency decision ``Omega``.  Motivated by Benders' decomposition, BDMA
alternates: starting from ``Omega = Omega^L`` (all servers at their
lowest clock), it solves P2-A for ``(x, y)`` under the current ``Omega``
(via a pluggable P2-A solver, CGBA by default), then P2-B for ``Omega``
under the new ``(x, y)``, for ``z`` rounds, returning the best
``f(x, y, Omega)`` seen.  Theorem 3 gives the
``R = 2.62 R_F / (1 - 8 lambda)`` guarantee already for ``z = 1``;
larger ``z`` can only improve the returned objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.cgba import solve_p2a_cgba
from repro.core.drift_penalty import dpp_objective
from repro.core.p2b import solve_p2b
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.solvers.potential_game import EngineStats
from repro.types import FloatArray, Rng


class P2ASolver(Protocol):
    """Anything that produces an assignment for P2-A under fixed ``Omega``.

    Implementations: CGBA (the paper's algorithm), ROPT (uniform random),
    MCBA (Markov-chain Monte Carlo), and the exact branch-and-bound
    baseline; the DPP controller composes with any of them.
    """

    def __call__(
        self,
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment: ...


def cgba_p2a_solver(
    *,
    slack: float = 0.0,
    max_iter: int = 100_000,
    engine: str = "fast",
    tracer: "Tracer | None" = None,
) -> P2ASolver:
    """The default P2-A solver: CGBA(lambda) (Algorithm 3).

    The returned callable accumulates the best-response engine's work
    counters across calls; BDMA drains them via ``pop_stats()`` so each
    slot's :class:`BDMAResult` reports the engine work it caused.
    """
    accumulated = EngineStats()

    def solve(
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        rng: Rng,
        *,
        initial: Assignment | None,
    ) -> Assignment:
        result = solve_p2a_cgba(
            network,
            state,
            space,
            frequencies,
            rng,
            slack=slack,
            initial=initial,
            max_iter=max_iter,
            engine=engine,
            tracer=tracer,
        )
        if result.engine_stats is not None:
            accumulated.merge(result.engine_stats)
        return result.assignment

    def pop_stats() -> EngineStats:
        nonlocal accumulated
        stats, accumulated = accumulated, EngineStats()
        return stats

    solve.pop_stats = pop_stats  # type: ignore[attr-defined]
    return solve


@dataclass
class BDMAResult:
    """Outcome of one BDMA(z) run on P2.

    Attributes:
        assignment: Best discrete selections found.
        frequencies: Best clock frequencies found (GHz).
        objective: ``f(x, y, Omega)`` of the returned decision.
        objective_history: Objective after each of the ``z`` rounds
            (non-increasing in its running minimum by construction).
        engine_stats: Aggregated best-response-engine counters across
            all ``z`` P2-A solves, when the solver reports them.
    """

    assignment: Assignment
    frequencies: FloatArray
    objective: float
    objective_history: list[float] = field(default_factory=list)
    engine_stats: EngineStats | None = None


def solve_p2_bdma(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    rng: Rng,
    *,
    queue_backlog: float,
    v: float,
    budget: float,
    z: int = 5,
    p2a_solver: P2ASolver | None = None,
    warm_start: bool = True,
    initial: Assignment | None = None,
    tracer: "Tracer | None" = None,
) -> BDMAResult:
    """Solve P2 by alternating P2-A and P2-B for ``z`` rounds.

    Args:
        network: Static topology.
        state: The slot's system state ``beta_t``.
        space: Feasible strategy sets.
        rng: Randomness for the P2-A solver's initial profiles.
        queue_backlog: The virtual queue ``Q(t)``.
        v: DPP trade-off parameter ``V``.
        budget: The time-average cost budget ``Cbar``.
        z: Number of alternation rounds (Algorithm 2's tunable).
        p2a_solver: P2-A solver; CGBA(0) when omitted.
        warm_start: Seed each round's P2-A solve with the previous
            round's assignment.  Algorithm 3 as printed starts from a
            random profile every time; warm starting reaches the same
            fixed points in fewer moves and is the practical choice.
            Set ``False`` for the literal algorithm.
        initial: Seed the *first* round's P2-A solve with this
            assignment (e.g. the previous slot's decision); only used
            when ``warm_start`` is enabled.
        tracer: Observability tracer; when enabled, every round's P2-A
            and P2-B solve runs inside ``p2a``/``p2b`` spans and a
            ``bdma.rounds`` counter is emitted.  The default CGBA solver
            is constructed with the same tracer so engine counters flow
            through; externally supplied ``p2a_solver`` callables are
            timed but not internally instrumented.

    Returns:
        The best decision by P2 objective across all rounds.
    """
    if z < 1:
        raise ConfigurationError(f"z must be a positive integer, got {z}")
    if v <= 0.0:
        raise ConfigurationError(f"V must be positive, got {v}")
    if queue_backlog < 0.0:
        raise ConfigurationError("queue backlog cannot be negative")
    tracer = as_tracer(tracer)
    solver = (
        p2a_solver if p2a_solver is not None else cgba_p2a_solver(tracer=tracer)
    )
    pop_stats = getattr(solver, "pop_stats", None)
    if callable(pop_stats):
        pop_stats()  # discard counters accumulated by earlier callers

    frequencies = network.freq_min.copy()  # Omega^L (Algorithm 2, line 1)
    best_objective = float("inf")
    best_assignment: Assignment | None = None
    best_frequencies = frequencies.copy()
    history: list[float] = []
    previous: Assignment | None = initial

    for _ in range(z):
        with tracer.span("p2a"):
            assignment = solver(
                network,
                state,
                space,
                frequencies,
                rng,
                initial=previous if warm_start else None,
            )
        with tracer.span("p2b"):
            frequencies = solve_p2b(
                network,
                state,
                assignment,
                queue_backlog=queue_backlog,
                v=v,
                tracer=tracer,
            )
        objective = dpp_objective(
            network,
            state,
            assignment,
            frequencies,
            queue_backlog=queue_backlog,
            v=v,
            budget=budget,
        )
        history.append(objective)
        if objective < best_objective:
            best_objective = objective
            best_assignment = assignment
            best_frequencies = frequencies.copy()
        previous = assignment

    if tracer.enabled:
        tracer.counter("bdma.rounds", z)
    assert best_assignment is not None
    return BDMAResult(
        assignment=best_assignment,
        frequencies=best_frequencies,
        objective=best_objective,
        objective_history=history,
        engine_stats=pop_stats() if callable(pop_stats) else None,
    )
