"""Energy-budget schedules: constant and time-varying pacing.

The paper's constraint is a *time-average* cost budget ``Cbar``; the DPP
queue enforces it through per-slot overshoots ``theta_t = C_t - Cbar``.
Nothing in the Lyapunov argument requires the reference to be the same
every slot -- any schedule ``Cbar_t`` with time-average ``Cbar`` yields
the identical long-run constraint, because only the running sum of
``theta`` enters the queue.

That freedom is an extension knob this module exposes: a
*demand-weighted* schedule allocates more of the budget to slots where
the workload trend is high (processing speed is worth more) and less to
idle slots, while maintaining the same average.  The ablation bench
``bench_ablation_budget_pacing.py`` quantifies what it buys.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray


class BudgetSchedule(abc.ABC):
    """Per-slot budget reference with a known time average."""

    @abc.abstractmethod
    def budget_at(self, t: int) -> float:
        """The reference ``Cbar_t`` for slot *t*."""

    @property
    @abc.abstractmethod
    def average(self) -> float:
        """The schedule's time-average ``Cbar`` (the actual constraint)."""


class ConstantBudget(BudgetSchedule):
    """The paper's setting: the same ``Cbar`` every slot."""

    def __init__(self, value: float) -> None:
        if value < 0.0:
            raise ConfigurationError("budget must be non-negative")
        self._value = float(value)

    def budget_at(self, t: int) -> float:
        del t
        return self._value

    @property
    def average(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"ConstantBudget({self._value:.4g})"


class PeriodicBudget(BudgetSchedule):
    """A periodic per-slot budget; its average is the enforced constraint.

    Args:
        values: One period of per-slot budgets, all non-negative.
    """

    def __init__(self, values: FloatArray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ConfigurationError("values must be a non-empty 1-D array")
        if np.any(values < 0.0):
            raise ConfigurationError("budgets must be non-negative")
        self._values = values

    @property
    def period(self) -> int:
        """Length of the schedule's period."""
        return int(self._values.size)

    def budget_at(self, t: int) -> float:
        return float(self._values[t % self._values.size])

    @property
    def average(self) -> float:
        return float(self._values.mean())

    def __repr__(self) -> str:
        return (
            f"PeriodicBudget(period={self.period}, "
            f"average={self.average:.4g})"
        )


def demand_weighted_budget(
    average: float,
    profile: FloatArray,
    *,
    strength: float = 1.0,
    floor_fraction: float = 0.1,
) -> PeriodicBudget:
    """A periodic budget that follows a demand profile.

    The per-slot budget is ``average * (1 + strength * (profile_t /
    mean(profile) - 1))``, floored and then renormalised so the average
    is *exactly* the requested one.

    Args:
        average: The time-average budget to maintain.
        profile: Demand trend over one period (e.g. a fitted diurnal
            profile); only its shape matters.
        strength: 0 reproduces the constant schedule; 1 tracks the
            profile proportionally; larger values over-weight peaks.
        floor_fraction: No slot's budget falls below this fraction of
            the average (keeps off-peak slots workable).

    Raises:
        ConfigurationError: On non-positive average/profile or negative
            strength.
    """
    if average <= 0.0:
        raise ConfigurationError("average budget must be positive")
    if strength < 0.0:
        raise ConfigurationError("strength must be non-negative")
    profile = np.asarray(profile, dtype=np.float64)
    if profile.ndim != 1 or profile.size == 0 or np.any(profile <= 0.0):
        raise ConfigurationError("profile must be a positive 1-D array")
    relative = profile / profile.mean()
    raw = average * (1.0 + strength * (relative - 1.0))
    raw = np.maximum(raw, floor_fraction * average)
    raw = raw * (average / raw.mean())  # renormalise after flooring
    return PeriodicBudget(raw)


def as_schedule(budget: "float | BudgetSchedule") -> BudgetSchedule:
    """Coerce a plain number into a :class:`ConstantBudget`."""
    if isinstance(budget, BudgetSchedule):
        return budget
    return ConstantBudget(float(budget))


class CoordinatedBudget(BudgetSchedule):
    """A per-cell budget reference steered by a :class:`BudgetCoordinator`.

    Within an epoch the reference is constant; between epochs the
    coordinator re-splits the global budget and calls :meth:`set`.  The
    same drift algebra as the time-varying schedules applies: the queue
    only sees the running sum of ``C_t - Cbar_t``, so any sequence of
    per-cell references that *sums* to the global ``Cbar`` every epoch
    enforces exactly the global constraint across cells.
    """

    def __init__(self, value: float) -> None:
        if value < 0.0:
            raise ConfigurationError("budget must be non-negative")
        self._value = float(value)

    def set(self, value: float) -> None:
        """Update the reference (called by the coordinator per epoch)."""
        if value < 0.0:
            raise ConfigurationError("budget must be non-negative")
        self._value = float(value)

    def budget_at(self, t: int) -> float:
        del t
        return self._value

    @property
    def average(self) -> float:
        """The *current* reference (the long-run average is the
        coordinator's conserved total split across cells)."""
        return self._value

    def __repr__(self) -> str:
        return f"CoordinatedBudget({self._value:.4g})"


class BudgetCoordinator:
    """Splits one global ``Cbar`` across cells, re-pacing each epoch.

    Each cell's controller runs against its own
    :class:`CoordinatedBudget`; after every epoch the coordinator
    observes per-cell mean spend and re-splits the total proportionally
    to (smoothed) demand, floored at a fraction of the fair share and
    renormalised so the per-cell references sum *exactly* to the total
    -- the same floor-then-renormalise algebra as
    :func:`demand_weighted_budget`, applied across cells instead of
    across slots.

    Args:
        total: The global time-average budget ``Cbar``.
        shares: Initial per-cell weights (e.g. device counts); only
            their proportions matter.
        mode: ``"proportional"`` re-paces on observed spend each epoch;
            ``"static"`` keeps the initial split for the whole run.
        floor_fraction: No cell's budget falls below this fraction of
            its *initial* share (keeps a quiet cell workable when its
            demand returns).
        smoothing: Exponential-smoothing factor on observed spends
            (0 reacts instantly, values near 1 change slowly).
    """

    MODES = ("proportional", "static")

    def __init__(
        self,
        total: float,
        shares: FloatArray,
        *,
        mode: str = "proportional",
        floor_fraction: float = 0.1,
        smoothing: float = 0.5,
    ) -> None:
        if total <= 0.0:
            raise ConfigurationError("total budget must be positive")
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown coordinator mode {mode!r}; expected one of {self.MODES}"
            )
        if not 0.0 <= floor_fraction < 1.0:
            raise ConfigurationError("floor_fraction must lie in [0, 1)")
        if not 0.0 <= smoothing < 1.0:
            raise ConfigurationError("smoothing must lie in [0, 1)")
        shares = np.asarray(shares, dtype=np.float64)
        if shares.ndim != 1 or shares.size == 0 or np.any(shares <= 0.0):
            raise ConfigurationError("shares must be a positive 1-D array")
        self.total = float(total)
        self.mode = mode
        self.floor_fraction = float(floor_fraction)
        self.smoothing = float(smoothing)
        self._shares = shares / shares.sum()
        self._demand: FloatArray | None = None
        self.epochs = 0
        initial = self._renormalise(self.total * self._shares)
        self.schedules = tuple(CoordinatedBudget(b) for b in initial)

    @property
    def num_cells(self) -> int:
        return len(self.schedules)

    def budgets(self) -> FloatArray:
        """Current per-cell budget references (sum == ``total``)."""
        return np.array([s.average for s in self.schedules])

    def _renormalise(self, raw: FloatArray) -> FloatArray:
        """Floor at a fraction of each cell's fair share, then scale so
        the split sums exactly to the total (conservation)."""
        raw = np.maximum(raw, self.floor_fraction * self.total * self._shares)
        return raw * (self.total / raw.sum())

    def state_dict(self) -> dict:
        """Serializable coordinator state (for sharded checkpoint/resume).

        Captures the smoothed demand estimate, the epoch counter, and
        the per-cell references currently installed on
        :attr:`schedules`; restoring it makes the next :meth:`update`
        bit-identical to the uninterrupted run's.
        """
        return {
            "demand": None if self._demand is None else self._demand.tolist(),
            "epochs": int(self.epochs),
            "budgets": [s.average for s in self.schedules],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        demand = state.get("demand")
        self._demand = (
            None if demand is None else np.asarray(demand, dtype=np.float64)
        )
        self.epochs = int(state.get("epochs", 0))
        budgets = state.get("budgets")
        if budgets is not None:
            if len(budgets) != self.num_cells:
                raise ConfigurationError(
                    f"coordinator state has {len(budgets)} cells, "
                    f"expected {self.num_cells}"
                )
            for schedule, value in zip(self.schedules, budgets):
                schedule.set(float(value))

    def update(self, spends: FloatArray) -> FloatArray:
        """Re-split the budget from one epoch's per-cell mean spends.

        Args:
            spends: Observed mean energy cost per cell over the epoch
                just finished (non-negative, one entry per cell).

        Returns:
            The new per-cell budgets (also installed on
            :attr:`schedules`); unchanged in ``"static"`` mode.
        """
        spends = np.asarray(spends, dtype=np.float64)
        if spends.shape != (self.num_cells,):
            raise ConfigurationError(
                f"expected {self.num_cells} spends, got shape {spends.shape}"
            )
        if np.any(spends < 0.0):
            raise ConfigurationError("spends must be non-negative")
        self.epochs += 1
        if self.mode == "static":
            return self.budgets()
        if self._demand is None:
            self._demand = spends.copy()
        else:
            self._demand = (
                self.smoothing * self._demand + (1.0 - self.smoothing) * spends
            )
        demand = self._demand
        if demand.sum() <= 0.0:  # nothing spent anywhere: keep fair shares
            demand = self._shares
        budgets = self._renormalise(self.total * demand / demand.sum())
        for schedule, value in zip(self.schedules, budgets):
            schedule.set(float(value))
        return budgets
