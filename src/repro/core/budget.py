"""Energy-budget schedules: constant and time-varying pacing.

The paper's constraint is a *time-average* cost budget ``Cbar``; the DPP
queue enforces it through per-slot overshoots ``theta_t = C_t - Cbar``.
Nothing in the Lyapunov argument requires the reference to be the same
every slot -- any schedule ``Cbar_t`` with time-average ``Cbar`` yields
the identical long-run constraint, because only the running sum of
``theta`` enters the queue.

That freedom is an extension knob this module exposes: a
*demand-weighted* schedule allocates more of the budget to slots where
the workload trend is high (processing speed is worth more) and less to
idle slots, while maintaining the same average.  The ablation bench
``bench_ablation_budget_pacing.py`` quantifies what it buys.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray


class BudgetSchedule(abc.ABC):
    """Per-slot budget reference with a known time average."""

    @abc.abstractmethod
    def budget_at(self, t: int) -> float:
        """The reference ``Cbar_t`` for slot *t*."""

    @property
    @abc.abstractmethod
    def average(self) -> float:
        """The schedule's time-average ``Cbar`` (the actual constraint)."""


class ConstantBudget(BudgetSchedule):
    """The paper's setting: the same ``Cbar`` every slot."""

    def __init__(self, value: float) -> None:
        if value < 0.0:
            raise ConfigurationError("budget must be non-negative")
        self._value = float(value)

    def budget_at(self, t: int) -> float:
        del t
        return self._value

    @property
    def average(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"ConstantBudget({self._value:.4g})"


class PeriodicBudget(BudgetSchedule):
    """A periodic per-slot budget; its average is the enforced constraint.

    Args:
        values: One period of per-slot budgets, all non-negative.
    """

    def __init__(self, values: FloatArray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ConfigurationError("values must be a non-empty 1-D array")
        if np.any(values < 0.0):
            raise ConfigurationError("budgets must be non-negative")
        self._values = values

    @property
    def period(self) -> int:
        """Length of the schedule's period."""
        return int(self._values.size)

    def budget_at(self, t: int) -> float:
        return float(self._values[t % self._values.size])

    @property
    def average(self) -> float:
        return float(self._values.mean())

    def __repr__(self) -> str:
        return (
            f"PeriodicBudget(period={self.period}, "
            f"average={self.average:.4g})"
        )


def demand_weighted_budget(
    average: float,
    profile: FloatArray,
    *,
    strength: float = 1.0,
    floor_fraction: float = 0.1,
) -> PeriodicBudget:
    """A periodic budget that follows a demand profile.

    The per-slot budget is ``average * (1 + strength * (profile_t /
    mean(profile) - 1))``, floored and then renormalised so the average
    is *exactly* the requested one.

    Args:
        average: The time-average budget to maintain.
        profile: Demand trend over one period (e.g. a fitted diurnal
            profile); only its shape matters.
        strength: 0 reproduces the constant schedule; 1 tracks the
            profile proportionally; larger values over-weight peaks.
        floor_fraction: No slot's budget falls below this fraction of
            the average (keeps off-peak slots workable).

    Raises:
        ConfigurationError: On non-positive average/profile or negative
            strength.
    """
    if average <= 0.0:
        raise ConfigurationError("average budget must be positive")
    if strength < 0.0:
        raise ConfigurationError("strength must be non-negative")
    profile = np.asarray(profile, dtype=np.float64)
    if profile.ndim != 1 or profile.size == 0 or np.any(profile <= 0.0):
        raise ConfigurationError("profile must be a positive 1-D array")
    relative = profile / profile.mean()
    raw = average * (1.0 + strength * (relative - 1.0))
    raw = np.maximum(raw, floor_fraction * average)
    raw = raw * (average / raw.mean())  # renormalise after flooring
    return PeriodicBudget(raw)


def as_schedule(budget: "float | BudgetSchedule") -> BudgetSchedule:
    """Coerce a plain number into a :class:`ConstantBudget`."""
    if isinstance(budget, BudgetSchedule):
        return budget
    return ConstantBudget(float(budget))
