"""CGBA (Algorithm 3): best-response dynamics for P2-A.

CGBA interprets P2-A as the weighted congestion game of
:mod:`repro.core.congestion_game` and runs best-response dynamics with
the paper's selection rule: the player with the largest absolute
improvement moves, until no player can shrink its cost by more than the
relative slack ``lambda``.  Theorem 2 gives the
``2.62 / (1 - 8 lambda)`` approximation for ``lambda in (0, 0.125)`` and
convergence to a 2.62-approximate Nash profile for ``lambda = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.congestion_game import OffloadingCongestionGame
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConvergenceError
from repro.kernels import KernelBackend
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.solvers.fast_engine import fast_best_response_dynamics
from repro.solvers.potential_game import EngineStats, best_response_dynamics
from repro.types import FloatArray, Rng


#: Theorem 2's base constant: the price of anarchy bound for weighted
#: congestion games with affine costs.
CGBA_BASE_RATIO = 2.62


def cgba_approximation_ratio(slack: float) -> float:
    """The ``2.62 / (1 - 8 lambda)`` bound of Theorem 2.

    Raises:
        ValueError: When ``slack`` is outside ``[0, 0.125)`` where the
            bound is meaningful.
    """
    if not 0.0 <= slack < 0.125:
        raise ValueError(f"Theorem 2 requires lambda in [0, 0.125), got {slack}")
    return CGBA_BASE_RATIO / (1.0 - 8.0 * slack)


@dataclass
class CGBAResult:
    """Outcome of one CGBA run.

    Attributes:
        assignment: The final (base station, server) selections.
        total_latency: ``T_t`` of the final profile under the game's
            fixed frequencies -- P2-A's objective value.
        iterations: Number of unilateral best-response moves performed.
        converged: Whether the ``lambda``-equilibrium test was met.
        cost_history: Total latency after every move, when recorded.
        engine_stats: Work counters of the best-response engine (moves,
            gap recomputations, candidate evaluations, per-phase times).
        game: The congestion game the run was played on.  Callers that
            solve P2-A repeatedly on the same slot (BDMA's alternation
            rounds) pass it back via ``solve_p2a_cgba(..., game=...)``
            to skip rebuilding the candidate arrays.
    """

    assignment: Assignment
    total_latency: float
    iterations: int
    converged: bool
    cost_history: list[float] = field(default_factory=list)
    engine_stats: EngineStats | None = None
    game: OffloadingCongestionGame | None = None


def solve_p2a_cgba(
    network: MECNetwork,
    state: SlotState,
    space: StrategySpace,
    frequencies: FloatArray,
    rng: Rng,
    *,
    slack: float = 0.0,
    initial: Assignment | None = None,
    max_iter: int = 100_000,
    record_history: bool = False,
    engine: str = "fast",
    tracer: "Tracer | None" = None,
    game: OffloadingCongestionGame | None = None,
    accept_partial: bool = False,
    backend: "KernelBackend | str | None" = None,
) -> CGBAResult:
    """Solve P2-A with CGBA(lambda).

    Args:
        network: Static topology.
        state: The slot's system state ``beta_t``.
        space: Feasible strategy sets ``Z_i``.
        frequencies: Fixed server clocks ``Omega`` (GHz) for this subproblem.
        rng: Randomness for the initial profile.
        slack: The paper's ``lambda``; 0 runs to an exact equilibrium.
        initial: Warm-start assignment instead of a random profile.
        max_iter: Cap on best-response moves.
        record_history: Keep the total-latency trajectory (Fig. 6 benches).
        engine: ``"fast"`` (the default vectorized incremental engine) or
            ``"reference"`` (the per-player Python loop).  Both produce
            the same move sequence and final equilibrium; the reference
            engine is kept as the oracle for equivalence tests.
        tracer: Observability tracer; when enabled, the best-response
            run is wrapped in a ``cgba`` span and the engine's work
            counters (moves, sweeps, gap recomputations, candidate
            evaluations) are emitted as ``engine.*`` counters.
        accept_partial: When the dynamics exhaust ``max_iter`` without
            converging, consume :attr:`ConvergenceError.best_so_far` and
            return the last profile (``converged=False``) instead of
            raising.  Every best-response move strictly improves the
            potential, so the partial profile is feasible and typically
            near-equilibrium; a ``resilience.partial_accepts`` counter
            records the event.
        game: A game from an earlier run on the *same* ``(network,
            state, space)`` triple to reuse.  Its frequencies are
            re-fixed and the profile re-seeded exactly as a fresh
            constructor would (same load bincounts, same rng
            consumption), so results are bit-identical either way; only
            the candidate-array construction is saved.  A reused game
            keeps the kernel backend it was built with.
        backend: Array-kernel backend for the game's hot loops
            (:func:`repro.kernels.get_kernels` argument).  Every backend
            is bit-identical to the NumPy oracle, so this changes
            wall-clock only.

    Returns:
        A :class:`CGBAResult`; ``total_latency`` equals
        ``optimal_total_latency(network, state, result.assignment,
        frequencies)`` up to float rounding.
    """
    if engine not in ("fast", "reference"):
        raise ValueError(f"unknown engine: {engine!r}")
    tracer = as_tracer(tracer)
    if game is None:
        game = OffloadingCongestionGame(
            network, state, space, frequencies, initial=initial, rng=rng,
            kernels=backend,
        )
    else:
        game.update_frequencies(frequencies)
        game.reset_profile(initial, rng=rng)
    dynamics = (
        fast_best_response_dynamics if engine == "fast" else best_response_dynamics
    )
    with tracer.span("cgba"):
        try:
            outcome = dynamics(
                game,
                slack=slack,
                max_iter=max_iter,
                selection="max_gap",
                record_history=record_history,
            )
        except ConvergenceError as exc:
            if not accept_partial or exc.best_so_far is None:
                raise
            # The game's profile already holds the last (best-so-far)
            # state -- moves are applied in place -- so the result below
            # reads the partial equilibrium via game.assignment().
            outcome = exc.best_so_far
            if tracer.enabled:
                tracer.counter("resilience.partial_accepts", 1)
    if tracer.enabled and outcome.stats is not None:
        stats = outcome.stats
        tracer.counter("engine.moves", stats.moves)
        tracer.counter("engine.sweeps", stats.sweeps)
        tracer.counter("engine.gap_recomputations", stats.gap_recomputations)
        tracer.counter("engine.candidate_evaluations", stats.candidate_evaluations)
    return CGBAResult(
        assignment=game.assignment(),
        total_latency=outcome.total_cost,
        iterations=outcome.iterations,
        converged=outcome.converged,
        cost_history=outcome.cost_history,
        engine_stats=outcome.stats,
        game=game,
    )
