"""The weighted congestion game view of P2-A (the paper's WCG problem).

Resources are the access link of every base station (weight
``m = 1/W^A_k``), the fronthaul of every base station
(``m = 1/(W^F_k h^F_k)``), and every server's compute capacity
(``m = 1/speed_n(omega_n)``).  Device ``i`` playing strategy ``(k, n)``
places weight

* ``sqrt(d_i / h_{i,k})`` on the access resource of ``k``,
* ``sqrt(d_i)`` on the fronthaul resource of ``k``,
* ``sqrt(f_i / sigma_{i,n})`` on the compute resource of ``n``,

and experiences cost ``sum_r m_r p_{i,r} p_r(z)`` where ``p_r(z)`` is the
total weight on resource ``r``.  Summing player costs gives exactly
``T_t(x, y, Omega)`` of Eq. (20), and the game admits the weighted
potential ``Phi(z) = 1/2 sum_r m_r (p_r^2 + sum_{i in r} p_{i,r}^2)``,
which every best-response move strictly decreases -- the key fact behind
CGBA's convergence.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import effective_fronthaul_se
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.solvers.potential_game import FiniteGame
from repro.types import FloatArray, Rng


class OffloadingCongestionGame(FiniteGame):
    """P2-A as a weighted congestion game with incremental bookkeeping.

    Args:
        network: Static topology.
        state: The slot's system state.
        space: Feasible strategies per device (must match the state's
            coverage: every listed pair has positive spectral efficiency).
        frequencies: Server clocks ``Omega`` in GHz, fixed for this game.
        initial: Starting assignment; drawn uniformly at random from the
            strategy space when omitted (Algorithm 3, line 1).
        rng: Required when *initial* is omitted.
    """

    def __init__(
        self,
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        *,
        initial: Assignment | None = None,
        rng: Rng | None = None,
    ) -> None:
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.size != network.num_servers:
            raise ConfigurationError("one frequency per server is required")
        self.network = network
        self.state = state
        self.space = space

        # Resource weights m_r.
        self._m_access = 1.0 / network.access_bandwidth
        self._m_front = 1.0 / (
            network.fronthaul_bandwidth * effective_fronthaul_se(network, state)
        )
        self._m_compute = 1.0 / network.speeds(frequencies)

        # Player weights p_{i,r}.  Access weights are +inf on uncovered
        # links so an accidental infeasible probe is never the argmin.
        h = state.spectral_efficiency
        # np.where evaluates both branches, so silence the overflow the
        # masked-out h=0 entries would otherwise warn about.
        with np.errstate(divide="ignore", over="ignore"):
            self._p_access = np.where(
                h > 0.0, np.sqrt(state.bits[:, None] / np.maximum(h, 1e-300)), np.inf
            )
        self._p_front = np.sqrt(state.bits)
        self._p_compute = np.sqrt(state.cycles[:, None] / network.suitability)

        if initial is None:
            if rng is None:
                raise ConfigurationError("either initial or rng must be provided")
            bs_of, server_of = space.random_assignment(rng)
        else:
            bs_of, server_of = initial.bs_of.copy(), initial.server_of.copy()
        self._bs_of = np.asarray(bs_of, dtype=np.int64)
        self._server_of = np.asarray(server_of, dtype=np.int64)

        # Resource loads p_r(z) and squared-weight sums (for the potential).
        devices = np.arange(self.num_players)
        pa = self._p_access[devices, self._bs_of]
        pc = self._p_compute[devices, self._server_of]
        self._load_access = np.bincount(
            self._bs_of, weights=pa, minlength=network.num_base_stations
        )
        self._load_front = np.bincount(
            self._bs_of, weights=self._p_front, minlength=network.num_base_stations
        )
        self._load_compute = np.bincount(
            self._server_of, weights=pc, minlength=network.num_servers
        )
        self._sq_access = np.bincount(
            self._bs_of, weights=pa * pa, minlength=network.num_base_stations
        )
        self._sq_front = np.bincount(
            self._bs_of,
            weights=self._p_front * self._p_front,
            minlength=network.num_base_stations,
        )
        self._sq_compute = np.bincount(
            self._server_of, weights=pc * pc, minlength=network.num_servers
        )
        if not np.all(np.isfinite(self._load_access)):
            bad = int(np.flatnonzero(~np.isfinite(pa))[0])
            raise ConfigurationError(
                f"initial assignment is infeasible: device {bad} selected a "
                f"base station with zero spectral efficiency this slot"
            )

    # -- FiniteGame interface ----------------------------------------------

    @property
    def num_players(self) -> int:
        return int(self._bs_of.size)

    def strategy_of(self, player: int) -> tuple[int, int]:
        return int(self._bs_of[player]), int(self._server_of[player])

    def player_cost(self, player: int) -> float:
        k = self._bs_of[player]
        n = self._server_of[player]
        pa = self._p_access[player, k]
        pf = self._p_front[player]
        pc = self._p_compute[player, n]
        return float(
            self._m_access[k] * pa * self._load_access[k]
            + self._m_front[k] * pf * self._load_front[k]
            + self._m_compute[n] * pc * self._load_compute[n]
        )

    def best_response(self, player: int) -> tuple[tuple[int, int], float]:
        ks, ns = self.space.pairs(player)
        k_cur = self._bs_of[player]
        n_cur = self._server_of[player]
        pa_cur = self._p_access[player, k_cur]
        pf = self._p_front[player]
        pc_cur = self._p_compute[player, n_cur]

        # Loads with the player removed from its current resources.
        load_a = self._load_access[ks].copy()
        load_f = self._load_front[ks].copy()
        load_c = self._load_compute[ns].copy()
        load_a[ks == k_cur] -= pa_cur
        load_f[ks == k_cur] -= pf
        load_c[ns == n_cur] -= pc_cur

        pa = self._p_access[player, ks]
        pc = self._p_compute[player, ns]
        costs = (
            self._m_access[ks] * pa * (load_a + pa)
            + self._m_front[ks] * pf * (load_f + pf)
            + self._m_compute[ns] * pc * (load_c + pc)
        )
        j = int(np.argmin(costs))
        return (int(ks[j]), int(ns[j])), float(costs[j])

    def move(self, player: int, strategy: tuple[int, int]) -> None:
        k_new, n_new = strategy
        k_old = int(self._bs_of[player])
        n_old = int(self._server_of[player])
        pa_old = self._p_access[player, k_old]
        pa_new = self._p_access[player, k_new]
        pf = self._p_front[player]
        pc_old = self._p_compute[player, n_old]
        pc_new = self._p_compute[player, n_new]

        self._load_access[k_old] -= pa_old
        self._load_access[k_new] += pa_new
        self._sq_access[k_old] -= pa_old * pa_old
        self._sq_access[k_new] += pa_new * pa_new

        self._load_front[k_old] -= pf
        self._load_front[k_new] += pf
        self._sq_front[k_old] -= pf * pf
        self._sq_front[k_new] += pf * pf

        self._load_compute[n_old] -= pc_old
        self._load_compute[n_new] += pc_new
        self._sq_compute[n_old] -= pc_old * pc_old
        self._sq_compute[n_new] += pc_new * pc_new

        self._bs_of[player] = k_new
        self._server_of[player] = n_new

    def total_cost(self) -> float:
        """``sum_r m_r p_r(z)^2`` -- equals ``T_t(x, y, Omega)`` of Eq. (20)."""
        return float(
            np.sum(self._m_access * self._load_access * self._load_access)
            + np.sum(self._m_front * self._load_front * self._load_front)
            + np.sum(self._m_compute * self._load_compute * self._load_compute)
        )

    # -- extras --------------------------------------------------------------

    def move_delta(self, player: int, strategy: tuple[int, int]) -> float:
        """Change of :meth:`total_cost` if *player* switched to *strategy*.

        Evaluated without mutating the game; used by the MCBA baseline's
        Metropolis acceptance test.
        """
        k_new, n_new = strategy
        k_old = int(self._bs_of[player])
        n_old = int(self._server_of[player])
        delta = 0.0

        if k_new != k_old:
            pa_old = self._p_access[player, k_old]
            pa_new = self._p_access[player, k_new]
            pf = self._p_front[player]
            la_old, la_new = self._load_access[k_old], self._load_access[k_new]
            lf_old, lf_new = self._load_front[k_old], self._load_front[k_new]
            delta += self._m_access[k_old] * ((la_old - pa_old) ** 2 - la_old**2)
            delta += self._m_access[k_new] * ((la_new + pa_new) ** 2 - la_new**2)
            delta += self._m_front[k_old] * ((lf_old - pf) ** 2 - lf_old**2)
            delta += self._m_front[k_new] * ((lf_new + pf) ** 2 - lf_new**2)

        if n_new != n_old:
            pc_old = self._p_compute[player, n_old]
            pc_new = self._p_compute[player, n_new]
            lc_old, lc_new = self._load_compute[n_old], self._load_compute[n_new]
            delta += self._m_compute[n_old] * ((lc_old - pc_old) ** 2 - lc_old**2)
            delta += self._m_compute[n_new] * ((lc_new + pc_new) ** 2 - lc_new**2)
        return float(delta)

    def potential(self) -> float:
        """The exact weighted potential ``Phi(z)``.

        Every unilateral move by player ``i`` changes ``Phi`` by exactly
        the change of ``T_i`` (the defining property of a potential game),
        so best-response dynamics strictly decrease it -- the invariant
        the property tests check.
        """
        return 0.5 * float(
            np.sum(
                self._m_access
                * (self._load_access * self._load_access + self._sq_access)
            )
            + np.sum(
                self._m_front * (self._load_front * self._load_front + self._sq_front)
            )
            + np.sum(
                self._m_compute
                * (self._load_compute * self._load_compute + self._sq_compute)
            )
        )

    def assignment(self) -> Assignment:
        """The current profile as an :class:`Assignment`."""
        return Assignment(bs_of=self._bs_of.copy(), server_of=self._server_of.copy())
