"""The weighted congestion game view of P2-A (the paper's WCG problem).

Resources are the access link of every base station (weight
``m = 1/W^A_k``), the fronthaul of every base station
(``m = 1/(W^F_k h^F_k)``), and every server's compute capacity
(``m = 1/speed_n(omega_n)``).  Device ``i`` playing strategy ``(k, n)``
places weight

* ``sqrt(d_i / h_{i,k})`` on the access resource of ``k``,
* ``sqrt(d_i)`` on the fronthaul resource of ``k``,
* ``sqrt(f_i / sigma_{i,n})`` on the compute resource of ``n``,

and experiences cost ``sum_r m_r p_{i,r} p_r(z)`` where ``p_r(z)`` is the
total weight on resource ``r``.  Summing player costs gives exactly
``T_t(x, y, Omega)`` of Eq. (20), and the game admits the weighted
potential ``Phi(z) = 1/2 sum_r m_r (p_r^2 + sum_{i in r} p_{i,r}^2)``,
which every best-response move strictly decreases -- the key fact behind
CGBA's convergence.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import effective_fronthaul_se
from repro.core.state import Assignment, SlotState
from repro.exceptions import ConfigurationError
from repro.kernels import DecomposedState, KernelBackend, get_kernels
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.solvers.potential_game import FiniteGame
from repro.types import FloatArray, Rng


class OffloadingCongestionGame(FiniteGame):
    """P2-A as a weighted congestion game with incremental bookkeeping.

    Args:
        network: Static topology.
        state: The slot's system state.
        space: Feasible strategies per device (must match the state's
            coverage: every listed pair has positive spectral efficiency).
        frequencies: Server clocks ``Omega`` in GHz, fixed for this game.
        initial: Starting assignment; drawn uniformly at random from the
            strategy space when omitted (Algorithm 3, line 1).
        rng: Required when *initial* is omitted.
        kernels: Array-kernel backend for the batch evaluators (a
            :class:`~repro.kernels.KernelBackend`, a backend name, or
            ``None`` for the NumPy reference kernels).  Every backend
            is bit-identical by contract, so this only changes speed.
    """

    def __init__(
        self,
        network: MECNetwork,
        state: SlotState,
        space: StrategySpace,
        frequencies: FloatArray,
        *,
        initial: Assignment | None = None,
        rng: Rng | None = None,
        kernels: KernelBackend | str | None = None,
    ) -> None:
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.size != network.num_servers:
            raise ConfigurationError("one frequency per server is required")
        self.network = network
        self.state = state
        self.space = space
        self.kernels = get_kernels(kernels)

        # Resource weights m_r.
        self._m_access = 1.0 / network.access_bandwidth
        self._m_front = 1.0 / (
            network.fronthaul_bandwidth * effective_fronthaul_se(network, state)
        )
        self._m_compute = 1.0 / network.speeds(frequencies)

        # Player weights p_{i,r}.  Access weights are +inf on uncovered
        # links so an accidental infeasible probe is never the argmin.
        h = state.spectral_efficiency
        # np.where evaluates both branches, so silence the overflow the
        # masked-out h=0 entries would otherwise warn about.
        with np.errstate(divide="ignore", over="ignore"):
            self._p_access = np.where(
                h > 0.0, np.sqrt(state.bits[:, None] / np.maximum(h, 1e-300)), np.inf
            )
        self._p_front = np.sqrt(state.bits)
        self._p_compute = np.sqrt(state.cycles[:, None] / network.suitability)

        if initial is None:
            if rng is None:
                raise ConfigurationError("either initial or rng must be provided")
            bs_of, server_of = space.random_assignment(rng)
        else:
            bs_of, server_of = initial.bs_of.copy(), initial.server_of.copy()
        self._bs_of = np.asarray(bs_of, dtype=np.int64)
        self._server_of = np.asarray(server_of, dtype=np.int64)
        self._devices = np.arange(self._bs_of.size)

        # Flattened candidate arrays for the vectorized engine, built
        # lazily on the first batch evaluation.
        self._cand_ready = False
        # Decomposed (product-form) evaluator state, built lazily; see
        # _ensure_decomposed.  The structure check is cheap and eager so
        # the engine can pick its refresh strategy up front.
        self._dc_ready = False
        self._ks: DecomposedState | None = None
        menu_sizes = np.array(
            [menu.size for menu in space.server_menu()], dtype=np.int64
        )
        self.supports_lazy_gaps = bool(
            np.array_equal(
                space.coverage.astype(np.int64) @ menu_sizes,
                space.flat().counts,
            )
        )
        #: The decomposed evaluator always refreshes every player (a full
        #: pass is cheaper than subset gathers at its granularity), so
        #: the engine should skip dirty-player tracking entirely.
        self.prefers_full_refresh = True

        # Resource loads p_r(z) live in one contiguous buffer
        # [access | fronthaul | compute] so the batch evaluator can
        # gather all three resource loads of every candidate in a single
        # np.take; the per-resource names are views into it.
        num_bs = network.num_base_stations
        num_srv = network.num_servers
        self._loads = np.empty(2 * num_bs + num_srv)
        self._load_access = self._loads[:num_bs]
        self._load_front = self._loads[num_bs : 2 * num_bs]
        self._load_compute = self._loads[2 * num_bs :]
        self._pa_cur: np.ndarray | None = None
        self._init_profile()

    def _init_profile(self) -> None:
        """(Re)build loads and per-player caches from the profile arrays.

        Rebuilds fill the same buffers in place rather than re-binding
        fresh arrays: the kernel-state view (and the jit backends'
        cached pointer conversions) alias these buffers, and a stable
        identity keeps those caches hot across BDMA-round resets.
        """
        network = self.network
        pa = self._p_access[self._devices, self._bs_of]
        pc = self._p_compute[self._devices, self._server_of]
        # Current-strategy weights per player, kept in sync by move();
        # the batch evaluator reads these instead of re-gathering 2-D.
        if self._pa_cur is None:
            self._pa_cur = pa.copy()
            self._pc_cur = pc.copy()
            self._sq_access = np.empty(network.num_base_stations)
            self._sq_front = np.empty(network.num_base_stations)
            self._sq_compute = np.empty(network.num_servers)
        else:
            self._pa_cur[:] = pa
            self._pc_cur[:] = pc
        self._load_access[:] = np.bincount(
            self._bs_of, weights=pa, minlength=network.num_base_stations
        )
        self._load_front[:] = np.bincount(
            self._bs_of, weights=self._p_front, minlength=network.num_base_stations
        )
        self._load_compute[:] = np.bincount(
            self._server_of, weights=pc, minlength=network.num_servers
        )
        self._sq_access[:] = np.bincount(
            self._bs_of, weights=pa * pa, minlength=network.num_base_stations
        )
        self._sq_front[:] = np.bincount(
            self._bs_of,
            weights=self._p_front * self._p_front,
            minlength=network.num_base_stations,
        )
        self._sq_compute[:] = np.bincount(
            self._server_of, weights=pc * pc, minlength=network.num_servers
        )
        if not np.all(np.isfinite(self._load_access)):
            bad = int(np.flatnonzero(~np.isfinite(pa))[0])
            raise ConfigurationError(
                f"initial assignment is infeasible: device {bad} selected a "
                f"base station with zero spectral efficiency this slot"
            )
        if self._dc_ready:
            self._dc_reset_profile_caches()

    def _dc_reset_profile_caches(self) -> None:
        """Rebuild the decomposed evaluator's per-profile arrays."""
        num_bs = self.network.num_base_stations
        rows = self._devices
        sub = self._dc_sub
        sub[:] = 0.0
        sub[rows, self._bs_of] = self._pa_cur
        sub[rows, num_bs + self._bs_of] = self._p_front
        sub[rows, 2 * num_bs + self._server_of] = self._pc_cur
        wcur = self._dc_wcur
        wcur[0] = self._m_access[self._bs_of] * self._pa_cur
        wcur[1] = self._m_front[self._bs_of] * self._p_front
        wcur[2] = self._m_compute[self._server_of] * self._pc_cur
        cur_idx = self._dc_cur_idx
        cur_idx[0] = self._bs_of
        np.add(self._bs_of, num_bs, out=cur_idx[1])
        np.add(self._server_of, 2 * num_bs, out=cur_idx[2])
        # The profile arrays above are re-bound (not mutated) by
        # _init_profile/reset_profile, so the kernel-state view must
        # re-capture them; everything else in it aliases stable buffers.
        ks = self._ks
        if ks is not None:
            ks.bs_of = self._bs_of
            ks.server_of = self._server_of
            ks.pa_cur = self._pa_cur
            ks.pc_cur = self._pc_cur
            ks.sq_access = self._sq_access
            ks.sq_front = self._sq_front
            ks.sq_compute = self._sq_compute

    def reset_profile(
        self, initial: Assignment | None = None, *, rng: Rng | None = None
    ) -> None:
        """Re-seed the strategy profile exactly as the constructor would.

        With the state, space, and frequencies unchanged, a reset game is
        indistinguishable from a freshly constructed one (same load
        bincounts, same rng consumption when *initial* is omitted), so
        BDMA can reuse one game across alternation rounds instead of
        rebuilding the candidate arrays every round.
        """
        if initial is None:
            if rng is None:
                raise ConfigurationError("either initial or rng must be provided")
            bs_of, server_of = self.space.random_assignment(rng)
        else:
            bs_of, server_of = initial.bs_of.copy(), initial.server_of.copy()
        # In place: the kernel-state view aliases these index arrays.
        np.copyto(self._bs_of, np.asarray(bs_of, dtype=np.int64))
        np.copyto(self._server_of, np.asarray(server_of, dtype=np.int64))
        self._init_profile()

    def update_frequencies(self, frequencies: FloatArray) -> None:
        """Re-fix the server clocks ``Omega`` without rebuilding the game.

        Only the compute resource weights depend on the frequencies;
        everything else (player weights, candidate index arrays) is a
        function of the state and the strategy space alone.
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.size != self.network.num_servers:
            raise ConfigurationError("one frequency per server is required")
        # In place (same `1.0 / x` ufunc): the kernel-state view and the
        # jit pointer caches alias this buffer.
        np.divide(1.0, self.network.speeds(frequencies), out=self._m_compute)
        if self._cand_ready:
            flat = self.space.flat()
            np.multiply(
                self._m_compute[flat.server], self._cand_pc, out=self._cand_w[2]
            )
        if self._dc_ready:
            num_bs = self.network.num_base_stations
            np.multiply(
                self._m_compute, self._p_compute, out=self._dc_w[:, 2 * num_bs :]
            )
            self._dc_wcur[2] = self._m_compute[self._server_of] * self._pc_cur
            if self._ks is not None:
                self._ks.m_compute = self._m_compute

    # -- FiniteGame interface ----------------------------------------------

    @property
    def num_players(self) -> int:
        return int(self._bs_of.size)

    def strategy_of(self, player: int) -> tuple[int, int]:
        return int(self._bs_of[player]), int(self._server_of[player])

    def player_cost(self, player: int) -> float:
        k = self._bs_of[player]
        n = self._server_of[player]
        pa = self._p_access[player, k]
        pf = self._p_front[player]
        pc = self._p_compute[player, n]
        return float(
            self._m_access[k] * pa * self._load_access[k]
            + self._m_front[k] * pf * self._load_front[k]
            + self._m_compute[n] * pc * self._load_compute[n]
        )

    def best_response(self, player: int) -> tuple[tuple[int, int], float]:
        ks, ns = self.space.pairs(player)
        k_cur = self._bs_of[player]
        n_cur = self._server_of[player]
        pa_cur = self._p_access[player, k_cur]
        pf = self._p_front[player]
        pc_cur = self._p_compute[player, n_cur]

        # Loads with the player removed from its current resources.
        load_a = self._load_access[ks].copy()
        load_f = self._load_front[ks].copy()
        load_c = self._load_compute[ns].copy()
        load_a[ks == k_cur] -= pa_cur
        load_f[ks == k_cur] -= pf
        load_c[ns == n_cur] -= pc_cur

        pa = self._p_access[player, ks]
        pc = self._p_compute[player, ns]
        costs = (
            self._m_access[ks] * pa * (load_a + pa)
            + self._m_front[ks] * pf * (load_f + pf)
            + self._m_compute[ns] * pc * (load_c + pc)
        )
        j = int(np.argmin(costs))
        return (int(ks[j]), int(ns[j])), float(costs[j])

    def num_strategies(self, player: int) -> int:
        return self.space.num_strategies(player)

    # -- vectorized batch interface (the fast engine's substrate) -----------

    def _ensure_candidates(self) -> None:
        """Precompute per-candidate weights over the flattened space.

        Every product here matches the scalar :meth:`best_response`
        expression tree term for term (``(m * p) * (load + p)``), so the
        batch evaluation is bit-identical to the per-player loop.
        """
        if self._cand_ready:
            return
        flat = self.space.flat()
        fb, fs, fp = flat.bs, flat.server, flat.player
        size = flat.num_candidates
        # Row-stacked (3, C) layout: one fused numpy op per refresh
        # touches the access, fronthaul, and compute terms of every
        # candidate at once.  The per-resource names below are row views.
        self._cand_p = np.empty((3, size))
        self._cand_p[0] = self._p_access[fp, fb]
        self._cand_p[1] = self._p_front[fp]
        self._cand_p[2] = self._p_compute[fp, fs]
        self._cand_pa, self._cand_pf, self._cand_pc = self._cand_p
        self._cand_w = np.empty((3, size))
        np.multiply(self._m_access[fb], self._cand_pa, out=self._cand_w[0])
        np.multiply(self._m_front[fb], self._cand_pf, out=self._cand_w[1])
        np.multiply(self._m_compute[fs], self._cand_pc, out=self._cand_w[2])
        self._cand_wa, self._cand_wf, self._cand_wc = self._cand_w
        self._cand_ready = True

    def _ensure_decomposed(self) -> None:
        """Precompute the product-form (decomposed) evaluator state.

        The strategy space is, by construction, a product set per covered
        base station: device ``i`` may pick any ``(k, n)`` with ``k``
        covering ``i`` and ``n`` on base station ``k``'s server menu,
        and the menu does not depend on ``i``.  A candidate's cost
        splits as ``cost(i, k, n) = A(i, k) + B(i, n)`` (access +
        fronthaul terms vs. the compute term), so the per-player minimum
        is ``min_k [A(i, k) + min_{n in menu(k)} B(i, n)]`` -- an
        ``O(I (K + N))`` pass instead of ``O(C)`` over the flattened
        candidates, with one server argmin per *distinct* menu.

        Bit-exactness: every array below is filled with the same
        pairwise products the flat evaluator uses, the per-entry
        adjustment runs the same ufunc sequence, and strictness of the
        split (``B >= Bmin`` with equality only at the argmin) makes the
        two-stage first-minimum tie break coincide with ``np.argmin``
        over the flat candidate enumeration.
        """
        if self._dc_ready:
            return
        network = self.network
        num_bs = network.num_base_stations
        num_srv = network.num_servers
        players = self.num_players
        width = 2 * num_bs + num_srv

        menu_of_bs, menus = self.space.product_patterns()
        self._dc_menu_of_bs = menu_of_bs
        self._dc_menus = menus
        # A contiguous menu (the paper topology's two 8-server halves)
        # indexes the compute block with a slice -- a view, sparing the
        # fancy-index gather copy; the argmin over the strided view
        # reads the same memory with the same first-minimum tie break.
        self._dc_cols = [
            slice(2 * num_bs + int(menu[0]), 2 * num_bs + int(menu[-1]) + 1)
            if np.array_equal(menu, np.arange(menu[0], menu[-1] + 1))
            else 2 * num_bs + menu
            for menu in menus
        ]

        # Static per-entry weights, fused [access | fronthaul | compute]
        # like the loads buffer so the adjustment is four ufunc calls.
        self._dc_p = np.empty((players, width))
        self._dc_p[:, :num_bs] = self._p_access
        self._dc_p[:, num_bs : 2 * num_bs] = self._p_front[:, None]
        self._dc_p[:, 2 * num_bs :] = self._p_compute
        self._dc_w = np.empty((players, width))
        np.multiply(self._m_access, self._p_access, out=self._dc_w[:, :num_bs])
        np.multiply(
            self._m_front,
            self._p_front[:, None],
            out=self._dc_w[:, num_bs : 2 * num_bs],
        )
        np.multiply(self._m_compute, self._p_compute, out=self._dc_w[:, 2 * num_bs :])

        # Per-profile caches: each player's own weight on its three
        # current resources (zero elsewhere), its current-cost weights
        # m_r * p_{i,r}, and its current resources as indices into the
        # fused loads buffer; all maintained incrementally by move().
        self._dc_sub = np.zeros((players, width))
        self._dc_wcur = np.empty((3, players))
        self._dc_cur_idx = np.empty((3, players), dtype=np.int64)

        # Work buffers reused by every refresh.
        self._dc_adj = np.empty((players, width))
        self._dc_t = np.empty((players, num_bs))
        self._dc_bk = np.empty((players, num_bs))
        # Column len(menus) stays +inf: base stations with an empty
        # server menu contribute no candidates, so their total is never
        # the minimum.
        self._dc_bvals = np.full((players, len(menus) + 1), np.inf)
        # intp (== int64 here) so np.argmin can write them in place.
        self._dc_nidx = np.empty((len(menus), players), dtype=np.intp)
        self._dc_kbest = np.zeros(players, dtype=np.intp)
        self._dc_rows = self._devices
        self._dc_cc = np.empty(players)
        self._dc_cc3 = np.empty((3, players))
        self._dc_num_bs = num_bs

        # Flattened menu tables for the non-NumPy kernels (the column
        # specs above are numpy gather syntax, not plain arrays).
        menu_offsets = np.zeros(len(menus) + 1, dtype=np.int64)
        if menus:
            np.cumsum([menu.size for menu in menus], out=menu_offsets[1:])
        menu_servers = (
            np.ascontiguousarray(np.concatenate(menus), dtype=np.int64)
            if menus
            else np.empty(0, dtype=np.int64)
        )
        self._ks = DecomposedState(
            num_players=players,
            num_bs=num_bs,
            num_servers=num_srv,
            loads=self._loads,
            p=self._dc_p,
            w=self._dc_w,
            sub=self._dc_sub,
            wcur=self._dc_wcur,
            cur_idx=self._dc_cur_idx,
            menu_of_bs=np.ascontiguousarray(menu_of_bs, dtype=np.int64),
            menu_offsets=menu_offsets,
            menu_servers=menu_servers,
            cols=self._dc_cols,
            adj=self._dc_adj,
            t=self._dc_t,
            bk=self._dc_bk,
            bvals=self._dc_bvals,
            nidx=self._dc_nidx,
            kbest=self._dc_kbest,
            cc=self._dc_cc,
            cc3=self._dc_cc3,
            rows=self._dc_rows,
            p_access=self._p_access,
            p_front=self._p_front,
            p_compute=self._p_compute,
            m_access=self._m_access,
            m_front=self._m_front,
            m_compute=self._m_compute,
            bs_of=self._bs_of,
            server_of=self._server_of,
            pa_cur=self._pa_cur,
            pc_cur=self._pc_cur,
            sq_access=self._sq_access,
            sq_front=self._sq_front,
            sq_compute=self._sq_compute,
        )

        self._dc_ready = True
        self._dc_reset_profile_caches()

    def candidate_count(self, players: np.ndarray | None = None) -> int:
        """Total candidate pairs of *players* (all players when ``None``)."""
        flat = self.space.flat()
        if players is None:
            return flat.num_candidates
        return int(flat.counts[players].sum())

    def batch_best_responses(
        self, players: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, FloatArray, FloatArray]:
        """Best responses and current costs for many players in one pass.

        One gather over the flattened candidate arrays plus two
        ``np.minimum.reduceat`` reductions replaces ``len(players)``
        calls to :meth:`best_response`/:meth:`player_cost`.

        Args:
            players: 1-D array of player indices, or ``None`` for all
                players (which skips the subset-index construction).

        Returns:
            ``(best_bs, best_server, best_cost, current_cost)`` arrays
            parallel to *players*, numerically identical to the scalar
            methods (same IEEE operation order, same first-minimum tie
            break as ``np.argmin``).
        """
        self._ensure_candidates()
        flat = self.space.flat()
        if players is None:
            players = np.arange(self.num_players, dtype=np.int64)
            idx = slice(None)
            offsets = flat.offsets[:-1]
            fb, fs = flat.bs, flat.server
            wa, wf, wc = self._cand_wa, self._cand_wf, self._cand_wc
            pa, pf, pc = self._cand_pa, self._cand_pf, self._cand_pc
            seg_player = flat.player
        else:
            players = np.asarray(players, dtype=np.int64)
            if players.size == 0:
                empty_i = np.empty(0, dtype=np.int64)
                empty_f = np.empty(0, dtype=np.float64)
                return empty_i, empty_i.copy(), empty_f, empty_f.copy()
            idx, offsets = flat.subset_indices(players)
            fb, fs = flat.bs[idx], flat.server[idx]
            wa, wf, wc = self._cand_wa[idx], self._cand_wf[idx], self._cand_wc[idx]
            pa, pf, pc = self._cand_pa[idx], self._cand_pf[idx], self._cand_pc[idx]
            seg_player = flat.player[idx]

        k_cur = self._bs_of[seg_player]
        n_cur = self._server_of[seg_player]
        # Loads with each candidate's player removed from its current
        # resources: the masked in-place subtract mirrors the scalar
        # ``load[ks == k_cur] -= p_cur`` exactly.
        load_a = self._load_access[fb]
        load_f = self._load_front[fb]
        load_c = self._load_compute[fs]
        same_bs = fb == k_cur
        same_server = fs == n_cur
        np.subtract(load_a, self._pa_cur[seg_player], out=load_a, where=same_bs)
        np.subtract(load_f, pf, out=load_f, where=same_bs)
        np.subtract(load_c, self._pc_cur[seg_player], out=load_c, where=same_server)

        costs = self.kernels.candidate_costs(
            wa, wf, wc, pa, pf, pc, load_a, load_f, load_c
        )
        # First index attaining the segment minimum == np.argmin's choice.
        counts = flat.counts[players]
        best_cost, first = self.kernels.segment_first_min(costs, offsets, counts)
        if isinstance(idx, slice):
            best_global = first
        else:
            best_global = idx[first]
        best_bs = flat.bs[best_global]
        best_server = flat.server[best_global]

        k_of = self._bs_of[players]
        n_of = self._server_of[players]
        pa_own = self._pa_cur[players]
        pc_own = self._pc_cur[players]
        pf_own = self._p_front[players]
        current_cost = (
            self._m_access[k_of] * pa_own * self._load_access[k_of]
            + self._m_front[k_of] * pf_own * self._load_front[k_of]
            + self._m_compute[n_of] * pc_own * self._load_compute[n_of]
        )
        return best_bs, best_server, best_cost, current_cost

    def batch_gap_costs(
        self, players: np.ndarray | None = None
    ) -> tuple[FloatArray, FloatArray]:
        """``(best_cost, current_cost)`` per player, best strategies deferred.

        Product-form evaluation (see :meth:`_ensure_decomposed`),
        delegated to the selected kernel backend's ``gap_sweep`` --
        numerically identical to :meth:`batch_best_responses` (same
        IEEE expression tree, same first-minimum tie break).  The full
        gap vector is always recomputed (it is cheaper than any subset
        gather at this granularity); when *players* is given only their
        entries are returned.  The per-player argmins are retained (in
        the kernel state) so the engine can resolve the selected
        mover's best strategy lazily via :meth:`best_strategy_for`.
        """
        self._ensure_decomposed()
        best_cost, current_cost = self.kernels.gap_sweep(self._ks)
        if players is None:
            return best_cost, current_cost
        players = np.asarray(players, dtype=np.int64)
        return best_cost[players], current_cost[players]

    def kernel_state(self) -> "DecomposedState":
        """The struct-of-arrays view driven by the kernel backends.

        Engines hand this to :attr:`kernels`' ``run_dynamics`` to run
        whole best-response trajectories without re-entering Python;
        all arrays alias this game's state, so kernel mutations are
        game mutations.
        """
        self._ensure_decomposed()
        assert self._ks is not None
        return self._ks

    def best_strategy_for(self, player: int) -> tuple[int, int]:
        """The best response of *player* from the last gap refresh.

        Resolved from the retained decomposed argmins: the best base
        station, then the best server on that base station's menu --
        the same first-minimum pair :meth:`batch_best_responses` returns.
        """
        k = int(self._dc_kbest[player])
        g = int(self._dc_menu_of_bs[k])
        n = int(self._dc_menus[g][self._dc_nidx[g, player]])
        return k, n

    def affected_players(
        self, old: tuple[int, int], new: tuple[int, int]
    ) -> np.ndarray:
        """Players whose gap can change after a move ``old -> new``.

        A unilateral move only alters the loads of the (at most) four
        resources it touches, so only players whose strategy set contains
        one of them -- the mover included, since its own strategies do --
        need their best responses recomputed.
        """
        k_old, n_old = old
        k_new, n_new = new
        parts = [self.space.players_touching_bs(k_old)]
        if k_new != k_old:
            parts.append(self.space.players_touching_bs(k_new))
        parts.append(self.space.players_touching_server(n_old))
        if n_new != n_old:
            parts.append(self.space.players_touching_server(n_new))
        num_players = self.num_players
        for part in parts:
            # Any single resource touched by everyone already decides it.
            if part.size == num_players:
                return part
        if len(parts) == 1:
            return parts[0]
        mask = np.zeros(num_players, dtype=bool)
        for part in parts:
            mask[part] = True
        return np.flatnonzero(mask)

    def move(self, player: int, strategy: tuple[int, int]) -> None:
        k_new, n_new = strategy
        k_old = int(self._bs_of[player])
        n_old = int(self._server_of[player])
        pa_old = self._p_access[player, k_old]
        pa_new = self._p_access[player, k_new]
        pf = self._p_front[player]
        pc_old = self._p_compute[player, n_old]
        pc_new = self._p_compute[player, n_new]

        self._load_access[k_old] -= pa_old
        self._load_access[k_new] += pa_new
        self._sq_access[k_old] -= pa_old * pa_old
        self._sq_access[k_new] += pa_new * pa_new

        self._load_front[k_old] -= pf
        self._load_front[k_new] += pf
        self._sq_front[k_old] -= pf * pf
        self._sq_front[k_new] += pf * pf

        self._load_compute[n_old] -= pc_old
        self._load_compute[n_new] += pc_new
        self._sq_compute[n_old] -= pc_old * pc_old
        self._sq_compute[n_new] += pc_new * pc_new

        self._bs_of[player] = k_new
        self._server_of[player] = n_new
        self._pa_cur[player] = pa_new
        self._pc_cur[player] = pc_new

        if self._dc_ready:
            num_bs = self._dc_num_bs
            sub = self._dc_sub
            sub[player, k_old] = 0.0
            sub[player, num_bs + k_old] = 0.0
            sub[player, 2 * num_bs + n_old] = 0.0
            sub[player, k_new] = pa_new
            sub[player, num_bs + k_new] = pf
            sub[player, 2 * num_bs + n_new] = pc_new
            wcur = self._dc_wcur
            wcur[0, player] = self._m_access[k_new] * pa_new
            wcur[1, player] = self._m_front[k_new] * pf
            wcur[2, player] = self._m_compute[n_new] * pc_new
            cur_idx = self._dc_cur_idx
            cur_idx[0, player] = k_new
            cur_idx[1, player] = num_bs + k_new
            cur_idx[2, player] = 2 * num_bs + n_new

    def total_cost(self) -> float:
        """``sum_r m_r p_r(z)^2`` -- equals ``T_t(x, y, Omega)`` of Eq. (20)."""
        return float(
            np.sum(self._m_access * self._load_access * self._load_access)
            + np.sum(self._m_front * self._load_front * self._load_front)
            + np.sum(self._m_compute * self._load_compute * self._load_compute)
        )

    # -- extras --------------------------------------------------------------

    def total_cost_of(self, assignment: Assignment) -> float:
        """``T_t`` of an arbitrary *assignment* under this game's state.

        Reuses the cached player-weight matrices, so evaluating a stored
        profile (e.g. MCBA's incumbent) costs three ``bincount`` calls
        instead of constructing a whole new game.
        """
        bs_of = np.asarray(assignment.bs_of, dtype=np.int64)
        server_of = np.asarray(assignment.server_of, dtype=np.int64)
        devices = np.arange(self.num_players)
        pa = self._p_access[devices, bs_of]
        pc = self._p_compute[devices, server_of]
        k = self.network.num_base_stations
        n = self.network.num_servers
        load_a = np.bincount(bs_of, weights=pa, minlength=k)
        load_f = np.bincount(bs_of, weights=self._p_front, minlength=k)
        load_c = np.bincount(server_of, weights=pc, minlength=n)
        return float(
            np.sum(self._m_access * load_a * load_a)
            + np.sum(self._m_front * load_f * load_f)
            + np.sum(self._m_compute * load_c * load_c)
        )

    def move_delta(self, player: int, strategy: tuple[int, int]) -> float:
        """Change of :meth:`total_cost` if *player* switched to *strategy*.

        Evaluated without mutating the game; used by the MCBA baseline's
        Metropolis acceptance test.
        """
        k_new, n_new = strategy
        k_old = int(self._bs_of[player])
        n_old = int(self._server_of[player])
        delta = 0.0

        if k_new != k_old:
            pa_old = self._p_access[player, k_old]
            pa_new = self._p_access[player, k_new]
            pf = self._p_front[player]
            la_old, la_new = self._load_access[k_old], self._load_access[k_new]
            lf_old, lf_new = self._load_front[k_old], self._load_front[k_new]
            delta += self._m_access[k_old] * ((la_old - pa_old) ** 2 - la_old**2)
            delta += self._m_access[k_new] * ((la_new + pa_new) ** 2 - la_new**2)
            delta += self._m_front[k_old] * ((lf_old - pf) ** 2 - lf_old**2)
            delta += self._m_front[k_new] * ((lf_new + pf) ** 2 - lf_new**2)

        if n_new != n_old:
            pc_old = self._p_compute[player, n_old]
            pc_new = self._p_compute[player, n_new]
            lc_old, lc_new = self._load_compute[n_old], self._load_compute[n_new]
            delta += self._m_compute[n_old] * ((lc_old - pc_old) ** 2 - lc_old**2)
            delta += self._m_compute[n_new] * ((lc_new + pc_new) ** 2 - lc_new**2)
        return float(delta)

    def potential(self) -> float:
        """The exact weighted potential ``Phi(z)``.

        Every unilateral move by player ``i`` changes ``Phi`` by exactly
        the change of ``T_i`` (the defining property of a potential game),
        so best-response dynamics strictly decrease it -- the invariant
        the property tests check.
        """
        return 0.5 * float(
            np.sum(
                self._m_access
                * (self._load_access * self._load_access + self._sq_access)
            )
            + np.sum(
                self._m_front * (self._load_front * self._load_front + self._sq_front)
            )
            + np.sum(
                self._m_compute
                * (self._load_compute * self._load_compute + self._sq_compute)
            )
        )

    def assignment(self) -> Assignment:
        """The current profile as an :class:`Assignment`."""
        return Assignment(bs_of=self._bs_of.copy(), server_of=self._server_of.copy())
