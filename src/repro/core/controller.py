"""Algorithm 1: the online DPP controller.

Each slot the controller observes ``beta_t``, solves P2 (by BDMA with a
pluggable P2-A solver, so *BDMA-based DPP*, *ROPT-based DPP*, and
*MCBA-based DPP* are all instances of the same class), recovers the
closed-form optimal resource allocation of Lemma 1, and updates the
virtual queue with the realised energy-cost overshoot.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import optimal_allocation
from repro.core.bdma import (
    P2ASolver,
    bdma_request_stream,
    cgba_p2a_solver,
    drive_p2b,
)
from repro.core.budget import BudgetSchedule, as_schedule
from repro.core.overload import OverloadPolicy, shed_tasks
from repro.core.resilience import (
    ResiliencePolicy,
    fallback_decision,
    find_infeasible_devices,
    quarantine_state,
)
from repro.core.state import Assignment, Decision, ResourceAllocation, SlotState
from repro.core.virtual_queue import VirtualQueue
from repro.exceptions import ConfigurationError, InfeasibleError, InjectedFaultError, SolverError
from repro.kernels import get_kernels
from repro.network.connectivity import StrategySpace
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.obs.telemetry import maybe_instrument_kernels
from repro.solvers.potential_game import EngineStats
from repro.types import FloatArray, Rng

__all__ = [
    "SlotRecord",
    "OnlineController",
    "DPPController",
    "P2ASolver",
    "emit_feasibility_gauges",
]


@dataclass(frozen=True)
class SlotRecord:
    """Everything a controller did and observed in one slot.

    Attributes:
        t: Slot index.
        assignment: The discrete selections performed.
        frequencies: Server clocks (GHz) chosen for the slot.
        allocation: Lemma-1 optimal shares actually granted.
        latency: Realised overall latency ``T_t`` (seconds summed over
            devices).
        cost: Realised energy cost ``C_t``.
        theta: ``C_t - Cbar``.
        backlog_before: ``Q(t)`` used when deciding.
        backlog_after: ``Q(t+1)`` after the update (Eq. 21).
        solve_seconds: Wall-clock time spent deciding.
        engine_stats: Best-response-engine work counters aggregated over
            the slot's BDMA rounds (``None`` for P2-A solvers that do
            not report them).
        fallback: Which solver produced the decision: ``"primary"`` (the
            healthy path) or a degraded tier (``"greedy"``,
            ``"last_good"``, ``"random"``) from the resilience fallback
            chain.
        quarantined: Devices excluded this slot because their strategy
            set was genuinely empty (served with zero demand).
        shed: Devices whose tasks were shed this slot by the overload
            policy's admission control (served with zero demand; see
            :class:`~repro.core.overload.OverloadPolicy`).
    """

    t: int
    assignment: Assignment
    frequencies: FloatArray
    allocation: ResourceAllocation
    latency: float
    cost: float
    theta: float
    backlog_before: float
    backlog_after: float
    solve_seconds: float
    engine_stats: EngineStats | None = None
    fallback: str = "primary"
    quarantined: tuple[int, ...] = ()
    shed: tuple[int, ...] = ()

    def decision(self) -> Decision:
        """Bundle the slot's choices as a :class:`Decision`."""
        return Decision(
            assignment=self.assignment,
            allocation=self.allocation,
            frequencies=self.frequencies,
        )

    def to_dict(self, *, include_arrays: bool = False) -> dict:
        """JSON-ready view of the record, shared by the JSONL trace sink
        and :mod:`repro.io`.

        Args:
            include_arrays: Also include the bulky per-device/per-server
                decision arrays (assignments, frequencies, allocation
                shares) as plain lists.
        """
        out: dict = {
            "t": int(self.t),
            "latency": float(self.latency),
            "cost": float(self.cost),
            "theta": float(self.theta),
            "backlog_before": float(self.backlog_before),
            "backlog_after": float(self.backlog_after),
            "solve_seconds": float(self.solve_seconds),
        }
        if self.engine_stats is not None:
            out["engine_stats"] = self.engine_stats.to_dict()
        # Only present on degraded slots, so healthy traces (and the CI
        # trace baseline) keep their exact shape.
        if self.fallback != "primary":
            out["fallback"] = self.fallback
        if self.quarantined:
            out["quarantined"] = list(self.quarantined)
        if self.shed:
            out["shed"] = list(self.shed)
        if include_arrays:
            out["bs_of"] = self.assignment.bs_of.tolist()
            out["server_of"] = self.assignment.server_of.tolist()
            out["frequencies"] = np.asarray(self.frequencies).tolist()
            out["access_share"] = np.asarray(
                self.allocation.access_share
            ).tolist()
            out["compute_share"] = np.asarray(
                self.allocation.compute_share
            ).tolist()
        return out


def emit_feasibility_gauges(
    tracer: Tracer,
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
    frequencies: FloatArray,
) -> None:
    """Emit the per-slot ``feas.*`` gauges consumed by
    :class:`repro.obs.monitors.FeasibilityMonitor`.

    Gauges are worst cases over the slot: the largest access/fronthaul
    share sum on any base station, the largest compute share sum on any
    server (constraints (4)-(6), each must be ``<= 1``), and the largest
    clock excursion outside ``[F^L, F^U]`` among powered servers (must
    be 0).  Callers should guard on ``tracer.enabled``.
    """
    num_bs = network.num_base_stations
    access = np.bincount(
        assignment.bs_of, weights=allocation.access_share, minlength=num_bs
    )
    fronthaul = np.bincount(
        assignment.bs_of, weights=allocation.fronthaul_share, minlength=num_bs
    )
    compute = np.bincount(
        assignment.server_of,
        weights=allocation.compute_share,
        minlength=network.num_servers,
    )
    freqs = np.asarray(frequencies, dtype=np.float64)
    excess = np.maximum(freqs - network.freq_max, 0.0) + np.maximum(
        network.freq_min - freqs, 0.0
    )
    if state.available_servers is not None:
        excess = excess[state.available_servers]
    tracer.gauge("feas.access_share_max", float(access.max(initial=0.0)))
    tracer.gauge("feas.fronthaul_share_max", float(fronthaul.max(initial=0.0)))
    tracer.gauge("feas.compute_share_max", float(compute.max(initial=0.0)))
    tracer.gauge("feas.freq_excess", float(excess.max(initial=0.0)))


class OnlineController(abc.ABC):
    """An online policy: one decision per observed slot state."""

    @abc.abstractmethod
    def step(self, state: SlotState) -> SlotRecord:
        """Observe ``beta_t``, decide ``alpha_t``, and account for it."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear internal state between independent runs."""


class DPPController(OnlineController):
    """BDMA-based DPP (Algorithm 1), generic in the P2-A solver.

    Args:
        network: Static topology.
        rng: Randomness used by the per-slot solver.
        v: The DPP trade-off parameter ``V`` (larger favours latency).
        budget: The time-average energy-cost budget ``Cbar`` -- a float
            for the paper's constant reference, or a
            :class:`~repro.core.budget.BudgetSchedule` for time-varying
            pacing with the same long-run constraint (the queue only
            sees the running sum of ``C_t - Cbar_t``).
        z: BDMA alternation rounds (Algorithm 2's tunable).
        p2a_solver: P2-A solver; CGBA(0) when omitted.  Pass the ROPT or
            MCBA solvers from :mod:`repro.baselines` to reproduce the
            paper's *ROPT-based DPP* / *MCBA-based DPP* baselines.
        initial_backlog: ``Q(1)``.
        warm_start: Seed each BDMA round with the previous assignment.
        carry_over: Seed each slot's first BDMA round with the previous
            slot's assignment.  System states evolve smoothly, so the
            previous equilibrium is a near-optimal start; disable for the
            literal Algorithm 1 (fresh random profile every slot).
        freq_carry_over: Also start each slot's BDMA alternation from
            the previous slot's optimal clocks instead of ``Omega^L``,
            and warm-start the P2-B bracket searches from the previous
            round's frequencies.  Unlike ``carry_over`` (which is
            bit-exact given the same rng draws), this changes the
            alternation path: the per-slot decisions agree with the
            cold start only up to the alternation's fixed point and the
            scalar-search tolerance, not bit for bit.  Off by default;
            enable for throughput benchmarking.
        tracer: Observability tracer (:class:`repro.obs.Probe` to
            record, ``None``/:data:`repro.obs.NULL_TRACER` to disable).
            When enabled, every step is wrapped in a ``slot`` span with
            nested ``state``/``bdma``/``allocation``/``queue`` phases.
        resilience: Degraded-mode policy
            (:class:`repro.core.resilience.ResiliencePolicy`).  ``None``
            (the default) keeps the historical fail-fast behaviour; with
            a policy, solver failures run the fallback chain, infeasible
            devices are quarantined with explicit accounting, and the
            per-slot watchdog (deadline + iteration cap) bounds solve
            time.  Healthy slots are bit-identical either way.
        overload: Optional :class:`~repro.core.overload.OverloadPolicy`.
            When the virtual-queue backlog crosses the policy's high
            watermark the controller sheds a deterministic fraction of
            the heaviest tasks per slot (admission control: shed
            devices are served with zero demand, listed on the
            :class:`SlotRecord`, and counted in
            ``repro_shed_tasks_total``) until the backlog drains below
            the low watermark.  ``None`` (default) never sheds --
            below the high watermark the two are bit-identical.
        engine_backend: Array-kernel backend (``"numpy"``/``"jit"``)
            for the per-slot solvers' hot loops; resolved once at
            construction via :func:`repro.kernels.get_kernels`.
            Backends are bit-identical by contract, so this changes
            wall-clock only.  Externally supplied ``p2a_solver``
            callables keep whatever backend they were built with.
    """

    def __init__(
        self,
        network: MECNetwork,
        rng: Rng,
        *,
        v: float,
        budget: "float | BudgetSchedule",
        z: int = 5,
        p2a_solver: P2ASolver | None = None,
        initial_backlog: float = 0.0,
        warm_start: bool = True,
        carry_over: bool = True,
        freq_carry_over: bool = False,
        tracer: "Tracer | None" = None,
        resilience: ResiliencePolicy | None = None,
        overload: OverloadPolicy | None = None,
        engine_backend: str | None = None,
    ) -> None:
        if v <= 0.0:
            raise ConfigurationError(f"V must be positive, got {v}")
        self.network = network
        self.rng = rng
        self.v = float(v)
        self.budget_schedule = as_schedule(budget)
        #: Time-average budget (the actual constraint), for reporting.
        self.budget = self.budget_schedule.average
        self.z = int(z)
        self.p2a_solver = p2a_solver
        self.warm_start = bool(warm_start)
        self.carry_over = bool(carry_over)
        self.freq_carry_over = bool(freq_carry_over)
        self.tracer = as_tracer(tracer)
        self.resilience = resilience
        self.overload = overload
        # Hysteresis flag: whether the previous slot left the
        # controller in overload (crosses slots, so it rides
        # state_dict for checkpoint/resume and sharded salvage).
        self._overloaded = False
        # Resolve once so an unavailable jit provider warns here, at
        # construction, rather than on every slot.  Under an active
        # telemetry context the resolved backend gains per-call
        # wall-clock histograms (repro_kernel_seconds); get_kernels
        # passes resolved backends through unchanged, so the
        # instrumented callables reach every downstream call site
        # (P2-B, the congestion game, the fast engine).
        self.engine_backend = maybe_instrument_kernels(
            get_kernels(engine_backend)
        )
        if (
            resilience is not None
            and p2a_solver is None
            and (resilience.max_engine_iter is not None or resilience.accept_partial)
        ):
            # Same default CGBA solver solve_p2_bdma would build, with
            # the watchdog's iteration cap and partial-acceptance knobs.
            self.p2a_solver = cgba_p2a_solver(
                tracer=self.tracer,
                max_iter=(
                    resilience.max_engine_iter
                    if resilience.max_engine_iter is not None
                    else 100_000
                ),
                accept_partial=resilience.accept_partial,
                backend=self.engine_backend,
            )
        self._initial_backlog = float(initial_backlog)
        self.queue = VirtualQueue(initial_backlog, tracer=self.tracer)
        self._space: StrategySpace | None = None
        self._space_reused = False
        self._previous: Assignment | None = None
        self._previous_freqs: FloatArray | None = None
        # Last accepted decision, kept regardless of the carry-over
        # knobs: it feeds the fallback chain's last-known-good tier.
        self._last_assignment: Assignment | None = None
        self._last_frequencies: FloatArray | None = None

    def strategy_space(self, state: SlotState) -> StrategySpace:
        """The feasible strategy sets under the slot's coverage, cached.

        Coverage is static in the default scenario so the space is built
        once and every later slot short-circuits on a direct mask
        comparison (no per-slot key packing); with mobility or server
        faults the masks differ and the space is rebuilt.  ``step`` also
        skips the carry-over repair on a cache hit, since an assignment
        produced under the identical space is feasible by construction.
        """
        coverage = state.coverage()
        cached = self._space
        if cached is not None:
            same_availability = (
                state.available_servers is None
                and cached.available_servers is None
            ) or (
                state.available_servers is not None
                and cached.available_servers is not None
                and np.array_equal(state.available_servers, cached.available_servers)
            )
            if same_availability and np.array_equal(coverage, cached.coverage):
                self._space_reused = True
                return cached
        self._space = StrategySpace(self.network, coverage, state.available_servers)
        self._space_reused = False
        return self._space

    def step(self, state: SlotState) -> SlotRecord:
        return drive_p2b(self.step_requests(state))

    def step_requests(self, state: SlotState):
        """Generator form of :meth:`step` for lockstep batch drivers.

        Yields :func:`~repro.core.p2b.solve_p2b` keyword dicts (the
        slot's BDMA rounds), expects the frequency arrays sent back, and
        returns the :class:`SlotRecord`.  Driving it with
        :func:`~repro.core.bdma.drive_p2b` is exactly ``step``; the
        batched replication runner advances several controllers'
        streams together so their P2-B searches share one kernel call.
        Bit-identical to ``step`` either way.
        """
        tracer = self.tracer
        policy = self.resilience
        with tracer.span("slot"):
            with tracer.span("state"):
                quarantined = np.empty(0, dtype=np.int64)
                effective = state
                if policy is not None and policy.quarantine:
                    try:
                        space = self.strategy_space(state)
                    except InfeasibleError:
                        quarantined = find_infeasible_devices(self.network, state)
                        effective = quarantine_state(
                            self.network, state, quarantined
                        )
                        space = self.strategy_space(effective)
                        if tracer.enabled:
                            tracer.counter(
                                "resilience.quarantined", int(quarantined.size)
                            )
                            tracer.event(
                                "quarantine",
                                {"t": state.t, "devices": quarantined.tolist()},
                            )
                else:
                    space = self.strategy_space(state)
                backlog_before = self.queue.backlog
                shed: tuple[int, ...] = ()
                if self.overload is not None:
                    self._overloaded = self.overload.engaged(
                        self._overloaded, backlog_before
                    )
                    if tracer.enabled:
                        tracer.gauge(
                            "overload.state", 1.0 if self._overloaded else 0.0
                        )
                    if self._overloaded:
                        # Admission control: zero the heaviest devices'
                        # demand.  Coverage is untouched, so the
                        # strategy space built above stays valid;
                        # quarantined devices already carry zero demand
                        # and sort last, so they are never re-shed.
                        to_shed = self.overload.select(effective.cycles)
                        if to_shed.size:
                            effective = shed_tasks(effective, to_shed)
                            shed = tuple(int(i) for i in to_shed)
                            if tracer.enabled:
                                tracer.event(
                                    "shed",
                                    {"t": state.t, "devices": list(shed)},
                                )
                if (
                    self.carry_over
                    and self._previous is not None
                    and not self._space_reused
                ):
                    # Mobility can invalidate last slot's pairs; repair
                    # before reuse.
                    bs_of, server_of = space.repair(
                        self._previous.bs_of, self._previous.server_of, self.rng
                    )
                    self._previous = Assignment(bs_of=bs_of, server_of=server_of)
                slot_budget = self.budget_schedule.budget_at(state.t)
            started = time.perf_counter()
            fallback_tier = "primary"
            deadline = (
                started + policy.deadline_seconds
                if policy is not None and policy.deadline_seconds is not None
                else None
            )
            with tracer.span("bdma"):
                try:
                    if (
                        policy is not None
                        and policy.chaos is not None
                        and policy.chaos.trips(state.t)
                    ):
                        raise InjectedFaultError(
                            f"chaos: injected solver failure at slot {state.t}"
                        )
                    result = yield from bdma_request_stream(
                        self.network,
                        effective,
                        space,
                        self.rng,
                        queue_backlog=backlog_before,
                        v=self.v,
                        budget=slot_budget,
                        z=self.z,
                        p2a_solver=self.p2a_solver,
                        warm_start=self.warm_start,
                        initial=self._previous if self.carry_over else None,
                        initial_frequencies=(
                            self._previous_freqs if self.freq_carry_over else None
                        ),
                        warm_brackets=self.freq_carry_over,
                        tracer=tracer,
                        deadline=deadline,
                        backend=self.engine_backend,
                    )
                except SolverError as exc:
                    if policy is None or not policy.fallback:
                        raise
                    if tracer.enabled:
                        tracer.event(
                            "solver_failure",
                            {"t": state.t, "error": str(exc)},
                        )
                    result, fallback_tier = fallback_decision(
                        self.network,
                        effective,
                        space,
                        self.rng,
                        queue_backlog=backlog_before,
                        v=self.v,
                        budget=slot_budget,
                        previous=self._last_assignment,
                        previous_frequencies=self._last_frequencies,
                        quarantined=quarantined if quarantined.size else None,
                        tracer=tracer,
                    )
            solve_seconds = time.perf_counter() - started
            if self.carry_over:
                self._previous = result.assignment
            if self.freq_carry_over:
                self._previous_freqs = result.frequencies
            self._last_assignment = result.assignment
            self._last_frequencies = result.frequencies

            with tracer.span("allocation"):
                allocation = optimal_allocation(
                    self.network, effective, result.assignment
                )
                # BDMA scored the winning round with exactly these
                # calls; reuse its floats instead of recomputing.
                latency = result.latency
                cost = result.cost
                if tracer.enabled:
                    emit_feasibility_gauges(
                        tracer,
                        self.network,
                        effective,
                        result.assignment,
                        allocation,
                        result.frequencies,
                    )
            with tracer.span("queue"):
                theta = cost - slot_budget
                backlog_after = self.queue.update(theta)
        return SlotRecord(
            t=state.t,
            assignment=result.assignment,
            frequencies=result.frequencies,
            allocation=allocation,
            latency=latency,
            cost=cost,
            theta=theta,
            backlog_before=backlog_before,
            backlog_after=backlog_after,
            solve_seconds=solve_seconds,
            engine_stats=result.engine_stats,
            fallback=fallback_tier,
            quarantined=tuple(int(i) for i in quarantined),
            shed=shed,
        )

    def reset(self) -> None:
        self.queue = VirtualQueue(self._initial_backlog, tracer=self.tracer)
        self._space = None
        self._space_reused = False
        self._previous = None
        self._previous_freqs = None
        self._last_assignment = None
        self._last_frequencies = None
        self._overloaded = False

    def state_dict(self) -> dict:
        """Serializable controller state (for checkpoint/resume).

        Captures everything :meth:`step` reads across slots: the virtual
        queue backlog, the solver rng's bit-generator state, and the
        carried-over assignment/frequencies.  The strategy-space cache is
        deliberately omitted -- it is rebuilt from the first resumed
        slot's coverage, and :meth:`repair` draws randomness only for
        infeasible entries, so a rebuild consumes no rng when coverage
        is unchanged.
        """

        def _assignment(a: Assignment | None) -> dict | None:
            if a is None:
                return None
            return {"bs_of": a.bs_of.tolist(), "server_of": a.server_of.tolist()}

        def _freqs(f: FloatArray | None) -> list | None:
            return None if f is None else np.asarray(f, dtype=np.float64).tolist()

        return {
            "backlog": float(self.queue.backlog),
            "rng": self.rng.bit_generator.state,
            "previous": _assignment(self._previous),
            "previous_freqs": _freqs(self._previous_freqs),
            "last_assignment": _assignment(self._last_assignment),
            "last_frequencies": _freqs(self._last_frequencies),
            "overload_active": bool(self._overloaded),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore controller state captured by :meth:`state_dict`."""

        def _assignment(data: dict | None) -> Assignment | None:
            if data is None:
                return None
            return Assignment(
                bs_of=np.asarray(data["bs_of"], dtype=np.int64),
                server_of=np.asarray(data["server_of"], dtype=np.int64),
            )

        def _freqs(data) -> FloatArray | None:
            return None if data is None else np.asarray(data, dtype=np.float64)

        self.queue = VirtualQueue(float(state["backlog"]), tracer=self.tracer)
        self.rng.bit_generator.state = state["rng"]
        self._previous = _assignment(state.get("previous"))
        self._previous_freqs = _freqs(state.get("previous_freqs"))
        self._last_assignment = _assignment(state.get("last_assignment"))
        self._last_frequencies = _freqs(state.get("last_frequencies"))
        self._overloaded = bool(state.get("overload_active", False))
        self._space = None
        self._space_reused = False
