"""The drift-plus-penalty objective of P2.

``f(x, y, Omega) = V * T_t(x, y, Omega, beta_t) + Q(t) * Theta(Omega, p_t)``
with ``Theta = C_t - Cbar``.  Kept as free functions so BDMA, the
baselines, and the tests all score candidate decisions identically.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import optimal_total_latency
from repro.core.state import Assignment, SlotState
from repro.energy.cost import slot_energy_cost
from repro.network.topology import MECNetwork
from repro.types import BoolArray, FloatArray


def energy_cost(
    network: MECNetwork,
    frequencies: FloatArray,
    price: float,
    *,
    available: BoolArray | None = None,
) -> float:
    """``C_t(Omega_t, p_t)`` (Eq. 13) for the network's servers.

    Args:
        available: Optional server availability mask; offline servers
            draw no power (failure injection).
    """
    models = network.energy_models()
    if available is None:
        return slot_energy_cost(models, frequencies, price)
    frequencies = np.asarray(frequencies, dtype=np.float64)
    total_power = sum(
        m.power(float(f))
        for m, f, up in zip(models, frequencies, available)
        if up
    )
    return price * total_power


def theta(
    network: MECNetwork,
    frequencies: FloatArray,
    price: float,
    budget: float,
    *,
    available: BoolArray | None = None,
) -> float:
    """``Theta(Omega_t, p_t) = C_t - Cbar``."""
    return energy_cost(network, frequencies, price, available=available) - budget


def dpp_objective(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    frequencies: FloatArray,
    *,
    queue_backlog: float,
    v: float,
    budget: float,
) -> float:
    """Evaluate ``f(x, y, Omega)`` -- P2's objective -- for a candidate."""
    latency = optimal_total_latency(network, state, assignment, frequencies)
    return v * latency + queue_backlog * theta(
        network,
        frequencies,
        state.price,
        budget,
        available=state.available_servers,
    )
