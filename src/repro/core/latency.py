"""Latency algebra: Eqs. (7)-(11) and the closed forms (18)-(20).

Two layers:

* ``processing_latency`` / ``communication_latency`` / ``total_latency``
  evaluate the latency of *arbitrary* resource allocations (the ``L``
  quantities of the paper).
* ``optimal_processing_latency`` / ``optimal_communication_latency`` /
  ``optimal_total_latency`` evaluate the closed forms under Lemma 1's
  optimal allocations (the ``T`` quantities), without materialising the
  allocation -- these drive all the per-slot optimisation.

Zero-demand devices contribute zero latency even when their share is
zero (the 0/0 case is resolved to 0, matching the limit of the model).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import Assignment, ResourceAllocation, SlotState
from repro.network.topology import MECNetwork
from repro.types import FloatArray


def effective_fronthaul_se(network: MECNetwork, state: SlotState) -> FloatArray:
    """The slot's fronthaul spectral efficiencies ``h^F_k``.

    The per-slot override in the state wins over the static topology
    values (the paper's time-invariant default).
    """
    if state.fronthaul_se is not None:
        return state.fronthaul_se
    return network.fronthaul_se


def _safe_ratio(numerator: FloatArray, denominator: FloatArray) -> FloatArray:
    """``numerator / denominator`` with 0/0 -> 0 and x/0 -> inf for x > 0."""
    out = np.full_like(numerator, np.inf, dtype=np.float64)
    zero_num = numerator == 0.0
    out[zero_num] = 0.0
    positive = denominator > 0.0
    np.divide(numerator, denominator, out=out, where=positive & ~zero_num)
    return out


def per_device_processing_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
    frequencies: FloatArray,
) -> FloatArray:
    """``L^P_{i,t}`` (Eq. 7) for every device, shape ``(I,)``."""
    devices = np.arange(assignment.num_devices)
    speeds = network.speeds(frequencies)[assignment.server_of]
    sigma = network.suitability[devices, assignment.server_of]
    capacity = speeds * sigma * allocation.compute_share
    return _safe_ratio(state.cycles, capacity)


def per_device_communication_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
) -> tuple[FloatArray, FloatArray]:
    """``(L^{C,A}_{i,t}, L^{C,F}_{i,t})`` (Eqs. 9-10), each shape ``(I,)``."""
    devices = np.arange(assignment.num_devices)
    h_access = state.spectral_efficiency[devices, assignment.bs_of]
    w_access = network.access_bandwidth[assignment.bs_of]
    access_rate = w_access * h_access * allocation.access_share
    access = _safe_ratio(state.bits, access_rate)

    w_front = network.fronthaul_bandwidth[assignment.bs_of]
    h_front = effective_fronthaul_se(network, state)[assignment.bs_of]
    front_rate = w_front * h_front * allocation.fronthaul_share
    fronthaul = _safe_ratio(state.bits, front_rate)
    return access, fronthaul


def per_device_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
    frequencies: FloatArray,
) -> FloatArray:
    """Total per-device latency ``L^P_i + L^{C,A}_i + L^{C,F}_i``."""
    proc = per_device_processing_latency(
        network, state, assignment, allocation, frequencies
    )
    access, fronthaul = per_device_communication_latency(
        network, state, assignment, allocation
    )
    return proc + access + fronthaul


def processing_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
    frequencies: FloatArray,
) -> float:
    """``L^P_t`` (Eq. 8): total processing latency across devices."""
    return float(
        np.sum(
            per_device_processing_latency(
                network, state, assignment, allocation, frequencies
            )
        )
    )


def communication_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
) -> float:
    """``L^C_t`` (Eq. 11): total communication latency across devices."""
    access, fronthaul = per_device_communication_latency(
        network, state, assignment, allocation
    )
    return float(np.sum(access) + np.sum(fronthaul))


def total_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    allocation: ResourceAllocation,
    frequencies: FloatArray,
) -> float:
    """``L_t(alpha_t, beta_t)``: overall system latency of the slot."""
    return processing_latency(
        network, state, assignment, allocation, frequencies
    ) + communication_latency(network, state, assignment, allocation)


# -- closed forms under Lemma 1's optimal allocation ------------------------


def server_load_roots(
    network: MECNetwork, state: SlotState, assignment: Assignment
) -> FloatArray:
    """Per-server aggregated weights ``sum_{i on n} sqrt(f_i / sigma_{i,n})``."""
    devices = np.arange(assignment.num_devices)
    sigma = network.suitability[devices, assignment.server_of]
    weights = np.sqrt(state.cycles / sigma)
    return np.bincount(
        assignment.server_of, weights=weights, minlength=network.num_servers
    )


def optimal_processing_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    frequencies: FloatArray,
) -> float:
    """``T^P_t`` (Eq. 18): processing latency under the optimal ``Phi``."""
    roots = server_load_roots(network, state, assignment)
    speeds = network.speeds(frequencies)
    return float(np.sum(roots * roots / speeds))


def optimal_communication_latency(
    network: MECNetwork, state: SlotState, assignment: Assignment
) -> float:
    """``T^C_t`` (Eq. 19): communication latency under the optimal ``Psi``."""
    devices = np.arange(assignment.num_devices)
    h_access = state.spectral_efficiency[devices, assignment.bs_of]
    access_weights = np.zeros(assignment.num_devices)
    positive = h_access > 0.0
    access_weights[positive] = np.sqrt(state.bits[positive] / h_access[positive])
    access_roots = np.bincount(
        assignment.bs_of, weights=access_weights, minlength=network.num_base_stations
    )
    access = float(np.sum(access_roots * access_roots / network.access_bandwidth))

    front_weights = np.sqrt(state.bits)
    front_roots = np.bincount(
        assignment.bs_of, weights=front_weights, minlength=network.num_base_stations
    )
    # (1/W^F)(sum sqrt(d/h^F))^2 == (sum sqrt(d))^2 / (W^F h^F)
    fronthaul = float(
        np.sum(
            front_roots
            * front_roots
            / (network.fronthaul_bandwidth * effective_fronthaul_se(network, state))
        )
    )
    return access + fronthaul


def optimal_total_latency(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    frequencies: FloatArray,
) -> float:
    """``T_t(x_t, y_t, Omega_t, beta_t)`` (Eq. 20)."""
    return optimal_processing_latency(
        network, state, assignment, frequencies
    ) + optimal_communication_latency(network, state, assignment)
