"""Overload protection: virtual-queue watermarks and task shedding.

The DPP controller's virtual queue ``Q(t)`` integrates the budget
overshoot ``C_t - Cbar``; when the arrival rate is scaled past what the
budget can serve, the fault-free analysis no longer applies and ``Q``
grows without bound -- taking per-slot solve pressure and the latency
penalty with it.  Collaborative-MEC formulations treat shedding load on
an overloaded server as a first-class control action; this module is
that action for our controller.

:class:`OverloadPolicy` is a watermark pair with hysteresis on the
virtual-queue backlog: the controller *enters* overload when the
backlog reaches ``high_watermark``, sheds a deterministic fraction of
the heaviest tasks each slot while overloaded (admission control --
shed devices are served with zero demand, exactly the quarantine
mechanics), and *exits* once the backlog drains below
``low_watermark``.  Shedding is deterministic -- largest cycle demand
first, ties broken by device index via a stable sort -- so overloaded
runs remain bit-reproducible and checkpoint/resume exact (the single
bit of cross-slot state, the hysteresis flag, rides the controller's
``state_dict``).

Every shed is accounted three ways: the slot's
:class:`~repro.core.controller.SlotRecord` lists the shed devices, a
``shed`` event goes to the obs bus, and the telemetry layer maintains
the ``repro_shed_tasks_total`` counter plus the ``repro_overload_state``
gauge.  :class:`~repro.obs.monitors.OverloadMonitor` watches the same
events and raises the health alert.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.core.state import SlotState
from repro.exceptions import ConfigurationError
from repro.types import FloatArray, IntArray

__all__ = ["OverloadPolicy", "shed_tasks"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Virtual-queue watermarks driving admission control.

    Attributes:
        high_watermark: Backlog at which the controller enters overload
            and starts shedding (must be positive).
        low_watermark: Backlog below which an overloaded controller
            recovers; defaults to half the high watermark.  The gap is
            the hysteresis band -- a controller hovering at one
            watermark does not flap between modes.
        shed_fraction: Fraction of the slot's active devices (rounded
            up) shed per overloaded slot, heaviest cycle demand first.
    """

    high_watermark: float
    low_watermark: "float | None" = None
    shed_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.high_watermark <= 0.0:
            raise ConfigurationError(
                f"high_watermark must be positive, got {self.high_watermark}"
            )
        if self.low_watermark is None:
            object.__setattr__(
                self, "low_watermark", 0.5 * float(self.high_watermark)
            )
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ConfigurationError(
                f"low_watermark must lie in [0, high_watermark); got "
                f"low={self.low_watermark}, high={self.high_watermark}"
            )
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ConfigurationError(
                f"shed_fraction must lie in (0, 1], got {self.shed_fraction}"
            )

    def engaged(self, active: bool, backlog: float) -> bool:
        """Advance the hysteresis: the new overload flag given the
        previous one and the slot's pre-decision backlog ``Q(t)``."""
        if active:
            return backlog > self.low_watermark
        return backlog >= self.high_watermark

    def select(self, cycles: FloatArray) -> IntArray:
        """The devices to shed this slot, deterministically.

        Picks ``ceil(shed_fraction * active)`` of the devices with
        positive demand, largest cycle demand first; equal demands
        resolve by device index (stable sort), never by an unspecified
        tie order.  Returns sorted device indices.
        """
        demand = np.asarray(cycles, dtype=np.float64)
        candidates = np.flatnonzero(demand > 0.0)
        if candidates.size == 0:
            return candidates
        count = int(math.ceil(self.shed_fraction * candidates.size))
        order = np.argsort(-demand[candidates], kind="stable")
        return np.sort(candidates[order[:count]])


def shed_tasks(state: SlotState, devices: IntArray) -> SlotState:
    """Serve *devices* with zero demand this slot (admission control).

    Zero cycles and bits contribute zero latency and zero resource
    shares (the same inert-placeholder algebra
    :func:`~repro.core.resilience.quarantine_state` relies on), while
    coverage is untouched -- shed devices keep their links, so the
    strategy space computed before the shed remains valid.
    """
    if len(devices) == 0:
        return state
    cycles = state.cycles.copy()
    bits = state.bits.copy()
    cycles[devices] = 0.0
    bits[devices] = 0.0
    return dataclasses.replace(state, cycles=cycles, bits=bits)
