"""P2-B: the convex frequency-scaling subproblem.

With the discrete selections fixed, P2-B separates per server into

    min_{omega in [F^L, F^U]}  V * A_n / speed_n(omega)
                               + Q(t) * p_t * g_n(omega),

where ``A_n = (sum_{i on n} sqrt(f_i / sigma_{i,n}))^2`` is the server's
aggregated demand and ``speed_n(omega) = cores_n * omega * 1e9``.  The
first term is convex decreasing, the second convex increasing (the
paper's convex-energy assumption), so each scalar problem is convex on a
box.  The paper hands this to CVX; we solve it with the golden-section
substitute in :mod:`repro.solvers.scalar` -- a *batched* search over all
servers that need it (``method="batch"``), with the original per-server
Python loop kept as the ``method="scalar"`` oracle.  Both are
bit-identical per lane, so the default ``method="auto"`` freely picks
whichever is faster for the fleet size (numpy dispatch overhead makes
the scalar loop win below ~64 servers: measured 320 us vs 1060 us per
call at N=16 on the paper scenario).
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import server_load_roots
from repro.core.state import Assignment, SlotState
from repro.energy.models import QuadraticEnergyModel, ScaledEnergyModel
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.solvers.scalar import (
    _INVPHI,
    _INVPHI2,
    minimize_convex_scalar,
    minimize_convex_scalar_batch,
)
from repro.types import FloatArray

#: Fleet size above which the batched golden-section search beats the
#: scalar loop (numpy dispatch overhead amortises across lanes).
_BATCH_CUTOVER = 64


def solve_p2b(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    *,
    queue_backlog: float,
    v: float,
    tol: float = 1e-8,
    method: str = "auto",
    bracket_hint: FloatArray | None = None,
    bracket_margin: float = 0.25,
    tracer: "Tracer | None" = None,
) -> FloatArray:
    """Optimal clock frequencies ``Omega`` for P2-B.

    Args:
        network: Static topology (speeds, frequency bounds, energy models).
        state: Current system state (task sizes, electricity price).
        assignment: Fixed discrete selections ``(x_t, y_t)``.
        queue_backlog: The virtual queue ``Q(t)``.
        v: The DPP trade-off parameter ``V``.
        tol: Relative tolerance of the scalar search.
        method: ``"batch"`` (one vectorized golden-section over every
            server that needs the search), ``"scalar"`` (the original
            per-server Python loop, kept as the oracle the equality
            tests compare against), or ``"auto"`` (the default: batch
            for fleets of 64+ servers, scalar below, where Python loop
            overhead is smaller than numpy dispatch overhead).  All
            three produce bit-identical frequencies.
        bracket_hint: Optional per-server warm-start frequencies (e.g.
            the previous BDMA round's ``Omega``).  The search then runs
            on a narrowed bracket around the hint first and falls back
            to the full box for any server whose narrowed optimum lands
            on an artificial bracket edge -- convexity makes the result
            equal to the cold search up to ``tol``, but *not* bit-exact,
            so callers wanting exact reproducibility must leave this
            ``None``.  Batch method only.
        bracket_margin: Half-width of the warm bracket as a fraction of
            the full box width.
        tracer: Observability tracer; when enabled, emits
            ``p2b.scalar_solves`` / ``p2b.fastpath`` counters telling
            how many servers needed the golden-section search versus the
            closed-form shortcuts, plus ``p2b.batch_iters`` (total
            golden-section iterations across the batch) on the batch
            path.

    Returns:
        ``(N,)`` array of frequencies in GHz, elementwise in
        ``[F^L, F^U]``.

    Raises:
        ValueError: On an unknown *method*.

    Notes:
        Two fast paths avoid the scalar search: with zero energy pressure
        (``Q p_t = 0``) latency alone drives the decision, so loaded
        servers run at ``F^U`` and idle ones at ``F^L``; an idle server
        (``A_n = 0``) always parks at ``F^L`` because only the energy
        term remains, and it is increasing.
    """
    if method not in ("auto", "batch", "scalar"):
        raise ValueError(f"unknown method: {method!r}")
    if method == "auto":
        # bracket_hint is a batch-only feature, so it forces that path.
        if bracket_hint is None and network.num_servers < _BATCH_CUTOVER:
            method = "scalar"
        else:
            method = "batch"
    roots = server_load_roots(network, state, assignment)
    demand = roots * roots  # A_n
    energy_pressure = queue_backlog * state.price
    tracer = as_tracer(tracer)

    if method == "scalar":
        return _solve_p2b_scalar(
            network, state, demand, energy_pressure, v, tol, tracer
        )

    lo = network.freq_min
    hi = network.freq_max
    frequencies = lo.copy()
    if state.available_servers is None:
        online = np.ones(network.num_servers, dtype=bool)
    else:
        online = np.asarray(state.available_servers, dtype=bool)
    # Fast paths as masks, in the scalar loop's precedence order:
    # offline -> F^L, idle -> F^L, zero energy pressure -> F^U.
    loaded = online & (demand > 0.0)
    if energy_pressure <= 0.0:
        frequencies[loaded] = hi[loaded]
        servers = np.empty(0, dtype=np.int64)
    else:
        servers = np.flatnonzero(loaded)

    batch_iters = 0
    if servers.size:
        # speed(omega) is linear in omega, so V A / speed = scale / omega.
        speed_one = network.speed_scale[servers] * 1.0 * 1e9
        latency_scale = v * demand[servers] / speed_one
        objective = _batch_objective(network, servers, latency_scale, energy_pressure)
        lo_s, hi_s = lo[servers], hi[servers]
        if bracket_hint is None:
            result = minimize_convex_scalar_batch(objective, lo_s, hi_s, tol=tol)
            frequencies[servers] = result.x
            batch_iters = int(result.iterations.sum())
        else:
            hint = np.clip(np.asarray(bracket_hint, dtype=np.float64)[servers],
                           lo_s, hi_s)
            span = bracket_margin * (hi_s - lo_s)
            lo_w = np.maximum(lo_s, hint - span)
            hi_w = np.minimum(hi_s, hint + span)
            result = minimize_convex_scalar_batch(objective, lo_w, hi_w, tol=tol)
            best = result.x
            batch_iters = int(result.iterations.sum())
            # A minimum on an artificial bracket edge may be a false
            # boundary optimum; rerun those lanes on the full box.
            redo = ((best == lo_w) & (lo_w > lo_s)) | ((best == hi_w) & (hi_w < hi_s))
            if np.any(redo):
                idx = np.flatnonzero(redo)
                retry = minimize_convex_scalar_batch(
                    _batch_objective(
                        network, servers[idx], latency_scale[idx], energy_pressure
                    ),
                    lo_s[idx],
                    hi_s[idx],
                    tol=tol,
                )
                best = best.copy()
                best[idx] = retry.x
                batch_iters += int(retry.iterations.sum())
            frequencies[servers] = best

    if tracer.enabled:
        tracer.counter("p2b.scalar_solves", int(servers.size))
        tracer.counter("p2b.fastpath", network.num_servers - int(servers.size))
        tracer.counter("p2b.batch_iters", batch_iters)
    return frequencies


def _as_scaled_quadratic(model) -> tuple[float, float, float, float] | None:
    """``(scale, a, b, c)`` when *model* is a (possibly scaled) quadratic."""
    if type(model) is QuadraticEnergyModel:
        return (1.0, model.a, model.b, model.c)
    if type(model) is ScaledEnergyModel and type(model.base) is QuadraticEnergyModel:
        return (model.scale, model.base.a, model.base.b, model.base.c)
    return None


def _batch_objective(
    network: MECNetwork,
    servers: np.ndarray,
    latency_scale: FloatArray,
    energy_pressure: float,
):
    """The vectorized P2-B objective over the given server lanes.

    Elementwise identical to the scalar loop's closure: lanes sharing a
    :class:`QuadraticEnergyModel` family evaluate the quadratic directly
    on coefficient arrays; anything else falls back to each model's
    ``power_many`` (itself elementwise equal to ``power``).
    """
    models = [network.servers[int(n)].energy_model for n in servers]
    quads = [_as_scaled_quadratic(m) for m in models]
    if all(q is not None for q in quads):
        scale, a, b, c = (np.array(col) for col in zip(*quads))

        def objective(freq: FloatArray) -> FloatArray:
            # scale * (a f^2 + b f + c): ScaledEnergyModel's expression
            # tree; plain quadratics carry scale == 1.0, and multiplying
            # by exactly 1.0 is a bitwise identity.
            return latency_scale / freq + energy_pressure * (
                scale * (a * freq * freq + b * freq + c)
            )

        return objective

    groups: dict[int, tuple[object, list[int]]] = {}
    for lane, model in enumerate(models):
        groups.setdefault(id(model), (model, []))[1].append(lane)
    grouped = [(model, np.array(lanes)) for model, lanes in groups.values()]

    def objective(freq: FloatArray) -> FloatArray:
        out = latency_scale / freq
        for model, lanes in grouped:
            out[lanes] += energy_pressure * model.power_many(freq[lanes])
        return out

    return objective


def _solve_p2b_scalar(
    network: MECNetwork,
    state: SlotState,
    demand: FloatArray,
    energy_pressure: float,
    v: float,
    tol: float,
    tracer: Tracer,
) -> FloatArray:
    """The original per-server loop -- the batch path's reference oracle."""
    scalar_solves = 0
    frequencies = np.empty(network.num_servers)
    for n, server in enumerate(network.servers):
        lo, hi = server.freq_min, server.freq_max
        if (
            state.available_servers is not None
            and not state.available_servers[n]
        ):
            # Offline server: parked; it neither serves nor draws power.
            frequencies[n] = lo
            continue
        if demand[n] <= 0.0:
            frequencies[n] = lo
            continue
        if energy_pressure <= 0.0:
            frequencies[n] = hi
            continue
        # speed(omega) is linear in omega, so V A / speed = scale / omega.
        latency_scale = v * demand[n] / server.speed(1.0)
        model = server.energy_model
        quad = _as_scaled_quadratic(model)

        if quad is not None and hi > lo:
            # Golden-section search with the (Scaled)QuadraticEnergyModel
            # objective fused into the loop: the same probe points,
            # branch rule, iteration cap, and endpoint-included
            # first-minimum tie break as minimize_convex_scalar, and the
            # same expression tree as the model's ``power`` --
            # scale * (a f^2 + b f + c), where multiplying by a scale of
            # exactly 1.0 (the unscaled model) is a bitwise identity.
            # Inlining removes a Python call per probe, the hottest
            # scalar-path cost.
            s, qa, qb, qc = quad
            ls, ep = latency_scale, energy_pressure
            threshold = tol * max(1.0, hi - lo)
            a, b = lo, hi
            c = a + _INVPHI2 * (b - a)
            d = a + _INVPHI * (b - a)
            fc = ls / c + ep * (s * (qa * c * c + qb * c + qc))
            fd = ls / d + ep * (s * (qa * d * d + qb * d + qc))
            for _ in range(200):
                if (b - a) <= threshold:
                    break
                if fc <= fd:
                    b, d, fd = d, c, fc
                    c = a + _INVPHI2 * (b - a)
                    fc = ls / c + ep * (s * (qa * c * c + qb * c + qc))
                else:
                    a, c, fc = c, d, fd
                    d = a + _INVPHI * (b - a)
                    fd = ls / d + ep * (s * (qa * d * d + qb * d + qc))
            best_value = ls / lo + ep * (s * (qa * lo * lo + qb * lo + qc))
            best_x = lo
            value_hi = ls / hi + ep * (s * (qa * hi * hi + qb * hi + qc))
            if value_hi < best_value:
                best_value, best_x = value_hi, hi
            if fc < best_value:
                best_value, best_x = fc, c
            if fd < best_value:
                best_value, best_x = fd, d
            frequencies[n] = best_x
        else:

            def objective(freq: float) -> float:
                return latency_scale / freq + energy_pressure * model.power(freq)

            result = minimize_convex_scalar(objective, lo, hi, tol=tol)
            frequencies[n] = result.x
        scalar_solves += 1
    if tracer.enabled:
        tracer.counter("p2b.scalar_solves", scalar_solves)
        tracer.counter("p2b.fastpath", network.num_servers - scalar_solves)
    return frequencies
