"""P2-B: the convex frequency-scaling subproblem.

With the discrete selections fixed, P2-B separates per server into

    min_{omega in [F^L, F^U]}  V * A_n / speed_n(omega)
                               + Q(t) * p_t * g_n(omega),

where ``A_n = (sum_{i on n} sqrt(f_i / sigma_{i,n}))^2`` is the server's
aggregated demand and ``speed_n(omega) = cores_n * omega * 1e9``.  The
first term is convex decreasing, the second convex increasing (the
paper's convex-energy assumption), so each scalar problem is convex on a
box.  The paper hands this to CVX; we solve it with the golden-section
substitute in :mod:`repro.solvers.scalar`.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import server_load_roots
from repro.core.state import Assignment, SlotState
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.solvers.scalar import minimize_convex_scalar
from repro.types import FloatArray


def solve_p2b(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    *,
    queue_backlog: float,
    v: float,
    tol: float = 1e-8,
    tracer: "Tracer | None" = None,
) -> FloatArray:
    """Optimal clock frequencies ``Omega`` for P2-B.

    Args:
        network: Static topology (speeds, frequency bounds, energy models).
        state: Current system state (task sizes, electricity price).
        assignment: Fixed discrete selections ``(x_t, y_t)``.
        queue_backlog: The virtual queue ``Q(t)``.
        v: The DPP trade-off parameter ``V``.
        tol: Relative tolerance of the scalar search.
        tracer: Observability tracer; when enabled, emits
            ``p2b.scalar_solves`` / ``p2b.fastpath`` counters telling
            how many servers needed the golden-section search versus the
            closed-form shortcuts.

    Returns:
        ``(N,)`` array of frequencies in GHz, elementwise in
        ``[F^L, F^U]``.

    Notes:
        Two fast paths avoid the scalar search: with zero energy pressure
        (``Q p_t = 0``) latency alone drives the decision, so loaded
        servers run at ``F^U`` and idle ones at ``F^L``; an idle server
        (``A_n = 0``) always parks at ``F^L`` because only the energy
        term remains, and it is increasing.
    """
    roots = server_load_roots(network, state, assignment)
    demand = roots * roots  # A_n
    energy_pressure = queue_backlog * state.price

    scalar_solves = 0
    frequencies = np.empty(network.num_servers)
    for n, server in enumerate(network.servers):
        lo, hi = server.freq_min, server.freq_max
        if (
            state.available_servers is not None
            and not state.available_servers[n]
        ):
            # Offline server: parked; it neither serves nor draws power.
            frequencies[n] = lo
            continue
        if demand[n] <= 0.0:
            frequencies[n] = lo
            continue
        if energy_pressure <= 0.0:
            frequencies[n] = hi
            continue
        # speed(omega) is linear in omega, so V A / speed = scale / omega.
        latency_scale = v * demand[n] / server.speed(1.0)
        model = server.energy_model

        def objective(freq: float) -> float:
            return latency_scale / freq + energy_pressure * model.power(freq)

        result = minimize_convex_scalar(objective, lo, hi, tol=tol)
        frequencies[n] = result.x
        scalar_solves += 1
    tracer = as_tracer(tracer)
    if tracer.enabled:
        tracer.counter("p2b.scalar_solves", scalar_solves)
        tracer.counter("p2b.fastpath", network.num_servers - scalar_solves)
    return frequencies
