"""P2-B: the convex frequency-scaling subproblem.

With the discrete selections fixed, P2-B separates per server into

    min_{omega in [F^L, F^U]}  V * A_n / speed_n(omega)
                               + Q(t) * p_t * g_n(omega),

where ``A_n = (sum_{i on n} sqrt(f_i / sigma_{i,n}))^2`` is the server's
aggregated demand and ``speed_n(omega) = cores_n * omega * 1e9``.  The
first term is convex decreasing, the second convex increasing (the
paper's convex-energy assumption), so each scalar problem is convex on a
box.  The paper hands this to CVX; we solve it with the golden-section
substitute in :mod:`repro.solvers.scalar` -- a *batched* search over all
servers that need it (``method="batch"``), with the original per-server
Python loop kept as the ``method="scalar"`` oracle.  Both are
bit-identical per lane, so the default ``method="auto"`` freely picks
whichever is faster for the fleet size (numpy dispatch overhead makes
the scalar loop win below ~64 servers: measured 320 us vs 1060 us per
call at N=16 on the paper scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.latency import server_load_roots
from repro.core.state import Assignment, SlotState
from repro.energy.models import QuadraticEnergyModel, ScaledEnergyModel
from repro.kernels import KernelBackend, get_kernels
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.solvers.scalar import (
    _INVPHI,
    _INVPHI2,
    minimize_convex_scalar,
    minimize_convex_scalar_batch,
)
from repro.types import FloatArray

#: Fleet size above which the batched golden-section search beats the
#: scalar loop (numpy dispatch overhead amortises across lanes).
_BATCH_CUTOVER = 64


def solve_p2b(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    *,
    queue_backlog: float,
    v: float,
    tol: float = 1e-8,
    method: str = "auto",
    bracket_hint: FloatArray | None = None,
    bracket_margin: float = 0.25,
    tracer: "Tracer | None" = None,
    backend: "KernelBackend | str | None" = None,
) -> FloatArray:
    """Optimal clock frequencies ``Omega`` for P2-B.

    Args:
        network: Static topology (speeds, frequency bounds, energy models).
        state: Current system state (task sizes, electricity price).
        assignment: Fixed discrete selections ``(x_t, y_t)``.
        queue_backlog: The virtual queue ``Q(t)``.
        v: The DPP trade-off parameter ``V``.
        tol: Relative tolerance of the scalar search.
        method: ``"batch"`` (one vectorized golden-section over every
            server that needs the search), ``"scalar"`` (the original
            per-server Python loop, kept as the oracle the equality
            tests compare against), or ``"auto"`` (the default: batch
            for fleets of 64+ servers, scalar below, where Python loop
            overhead is smaller than numpy dispatch overhead).  All
            three produce bit-identical frequencies.
        bracket_hint: Optional per-server warm-start frequencies (e.g.
            the previous BDMA round's ``Omega``).  The search then runs
            on a narrowed bracket around the hint first and falls back
            to the full box for any server whose narrowed optimum lands
            on an artificial bracket edge -- convexity makes the result
            equal to the cold search up to ``tol``, but *not* bit-exact,
            so callers wanting exact reproducibility must leave this
            ``None``.  Batch method only.
        bracket_margin: Half-width of the warm bracket as a fraction of
            the full box width.
        tracer: Observability tracer; when enabled, emits
            ``p2b.scalar_solves`` / ``p2b.fastpath`` counters telling
            how many servers needed the golden-section search versus the
            closed-form shortcuts, plus ``p2b.batch_iters`` (total
            golden-section iterations across the batch) on the batch
            path.
        backend: Kernel backend for the golden-section search.  A
            backend providing a native ``golden_quad`` (the ``jit``
            backend) replaces the search core on lanes with quadratic
            energy models, bit-identically; method resolution and the
            emitted counters are unchanged, so traces diff clean across
            backends.  ``None`` keeps the NumPy search.

    Returns:
        ``(N,)`` array of frequencies in GHz, elementwise in
        ``[F^L, F^U]``.

    Raises:
        ValueError: On an unknown *method*.

    Notes:
        Two fast paths avoid the scalar search: with zero energy pressure
        (``Q p_t = 0``) latency alone drives the decision, so loaded
        servers run at ``F^U`` and idle ones at ``F^L``; an idle server
        (``A_n = 0``) always parks at ``F^L`` because only the energy
        term remains, and it is increasing.
    """
    if method not in ("auto", "batch", "scalar"):
        raise ValueError(f"unknown method: {method!r}")
    if method == "auto":
        # bracket_hint is a batch-only feature, so it forces that path.
        if bracket_hint is None and network.num_servers < _BATCH_CUTOVER:
            method = "scalar"
        else:
            method = "batch"
    roots = server_load_roots(network, state, assignment)
    demand = roots * roots  # A_n
    energy_pressure = queue_backlog * state.price
    tracer = as_tracer(tracer)
    kernels = get_kernels(backend)
    native = kernels.golden_quad is not None

    if method == "scalar":
        if native:
            solved = _solve_p2b_scalar_native(
                network, state, demand, energy_pressure, v, tol, kernels
            )
            if solved is not None:
                frequencies, searched = solved
                if tracer.enabled:
                    tracer.counter("p2b.scalar_solves", searched)
                    tracer.counter(
                        "p2b.fastpath", network.num_servers - searched
                    )
                return frequencies
        return _solve_p2b_scalar(
            network, state, demand, energy_pressure, v, tol, tracer
        )

    lo = network.freq_min
    hi = network.freq_max
    frequencies = lo.copy()
    if state.available_servers is None:
        online = np.ones(network.num_servers, dtype=bool)
    else:
        online = np.asarray(state.available_servers, dtype=bool)
    # Fast paths as masks, in the scalar loop's precedence order:
    # offline -> F^L, idle -> F^L, zero energy pressure -> F^U.
    loaded = online & (demand > 0.0)
    if energy_pressure <= 0.0:
        frequencies[loaded] = hi[loaded]
        servers = np.empty(0, dtype=np.int64)
    else:
        servers = np.flatnonzero(loaded)

    batch_iters = 0
    if servers.size:
        # speed(omega) is linear in omega, so V A / speed = scale / omega.
        speed_one = network.speed_scale[servers] * 1.0 * 1e9
        latency_scale = v * demand[servers] / speed_one
        search_kernels = kernels if native else None
        lo_s, hi_s = lo[servers], hi[servers]
        if bracket_hint is None:
            best, batch_iters = _golden_search(
                search_kernels, network, servers, latency_scale,
                energy_pressure, lo_s, hi_s, tol,
            )
            frequencies[servers] = best
        else:
            hint = np.clip(np.asarray(bracket_hint, dtype=np.float64)[servers],
                           lo_s, hi_s)
            span = bracket_margin * (hi_s - lo_s)
            lo_w = np.maximum(lo_s, hint - span)
            hi_w = np.minimum(hi_s, hint + span)
            best, batch_iters = _golden_search(
                search_kernels, network, servers, latency_scale,
                energy_pressure, lo_w, hi_w, tol,
            )
            # A minimum on an artificial bracket edge may be a false
            # boundary optimum; rerun those lanes on the full box.
            redo = ((best == lo_w) & (lo_w > lo_s)) | ((best == hi_w) & (hi_w < hi_s))
            if np.any(redo):
                idx = np.flatnonzero(redo)
                retry_x, retry_iters = _golden_search(
                    search_kernels, network, servers[idx],
                    latency_scale[idx], energy_pressure,
                    lo_s[idx], hi_s[idx], tol,
                )
                best = best.copy()
                best[idx] = retry_x
                batch_iters += retry_iters
            frequencies[servers] = best

    if tracer.enabled:
        tracer.counter("p2b.scalar_solves", int(servers.size))
        tracer.counter("p2b.fastpath", network.num_servers - int(servers.size))
        tracer.counter("p2b.batch_iters", batch_iters)
    return frequencies


def _as_scaled_quadratic(model) -> tuple[float, float, float, float] | None:
    """``(scale, a, b, c)`` when *model* is a (possibly scaled) quadratic."""
    if type(model) is QuadraticEnergyModel:
        return (1.0, model.a, model.b, model.c)
    if type(model) is ScaledEnergyModel and type(model.base) is QuadraticEnergyModel:
        return (model.scale, model.base.a, model.base.b, model.base.c)
    return None


def _batch_objective(
    network: MECNetwork,
    servers: np.ndarray,
    latency_scale: FloatArray,
    energy_pressure: float,
):
    """The vectorized P2-B objective over the given server lanes.

    Elementwise identical to the scalar loop's closure: lanes sharing a
    :class:`QuadraticEnergyModel` family evaluate the quadratic directly
    on coefficient arrays; anything else falls back to each model's
    ``power_many`` (itself elementwise equal to ``power``).
    """
    models = [network.servers[int(n)].energy_model for n in servers]
    quads = [_as_scaled_quadratic(m) for m in models]
    if all(q is not None for q in quads):
        scale, a, b, c = (np.array(col) for col in zip(*quads))

        def objective(freq: FloatArray) -> FloatArray:
            # scale * (a f^2 + b f + c): ScaledEnergyModel's expression
            # tree; plain quadratics carry scale == 1.0, and multiplying
            # by exactly 1.0 is a bitwise identity.
            return latency_scale / freq + energy_pressure * (
                scale * (a * freq * freq + b * freq + c)
            )

        return objective

    groups: dict[int, tuple[object, list[int]]] = {}
    for lane, model in enumerate(models):
        groups.setdefault(id(model), (model, []))[1].append(lane)
    grouped = [(model, np.array(lanes)) for model, lanes in groups.values()]

    def objective(freq: FloatArray) -> FloatArray:
        out = latency_scale / freq
        for model, lanes in grouped:
            out[lanes] += energy_pressure * model.power_many(freq[lanes])
        return out

    return objective


def _quad_columns(
    network: MECNetwork, servers: np.ndarray
) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray] | None:
    """Per-lane ``(scale, a, b, c)`` arrays, or ``None`` on any non-quad."""
    quads = [
        _as_scaled_quadratic(network.servers[int(n)].energy_model)
        for n in servers
    ]
    if any(q is None for q in quads):
        return None
    scale, a, b, c = (np.array(col) for col in zip(*quads))
    return scale, a, b, c


def _golden_search(
    kernels: "KernelBackend | None",
    network: MECNetwork,
    servers: np.ndarray,
    latency_scale: FloatArray,
    energy_pressure: float,
    lo: FloatArray,
    hi: FloatArray,
    tol: float,
) -> tuple[FloatArray, int]:
    """``(x, total_evals)`` for the per-lane golden-section search.

    Uses the kernel backend's native ``golden_quad`` when every lane has
    a (scaled) quadratic energy model -- bit-identical to the NumPy
    batch search, including the evaluation counts -- and the NumPy
    search otherwise.
    """
    if kernels is not None and kernels.golden_quad is not None:
        cols = _quad_columns(network, servers)
        if cols is not None:
            scale, a, b, c = cols
            ep = np.full(servers.size, energy_pressure)
            x, evals = kernels.golden_quad(
                lo, hi, latency_scale, ep, scale, a, b, c, tol
            )
            return x, int(evals.sum())
    result = minimize_convex_scalar_batch(
        _batch_objective(network, servers, latency_scale, energy_pressure),
        lo,
        hi,
        tol=tol,
    )
    return result.x, int(result.iterations.sum())


def _solve_p2b_scalar_native(
    network: MECNetwork,
    state: SlotState,
    demand: FloatArray,
    energy_pressure: float,
    v: float,
    tol: float,
    kernels: "KernelBackend",
) -> tuple[FloatArray, int] | None:
    """The scalar method's result via the native golden kernel.

    Applies the scalar loop's fast paths as masks (the batch path's
    construction, itself bit-identical to the loop) and hands every lane
    that needs the search to ``golden_quad`` in one call.  Returns
    ``(frequencies, searched_lanes)``, or ``None`` when any searched
    lane has a non-quadratic energy model (the caller then runs the
    Python loop, which handles arbitrary models).
    """
    lo = network.freq_min
    hi = network.freq_max
    frequencies = lo.copy()
    if state.available_servers is None:
        online = np.ones(network.num_servers, dtype=bool)
    else:
        online = np.asarray(state.available_servers, dtype=bool)
    loaded = online & (demand > 0.0)
    if energy_pressure <= 0.0:
        frequencies[loaded] = hi[loaded]
        return frequencies, 0
    servers = np.flatnonzero(loaded)
    if servers.size == 0:
        return frequencies, 0
    cols = _quad_columns(network, servers)
    if cols is None:
        return None
    scale, a, b, c = cols
    speed_one = network.speed_scale[servers] * 1.0 * 1e9
    latency_scale = v * demand[servers] / speed_one
    ep = np.full(servers.size, energy_pressure)
    x, _ = kernels.golden_quad(
        lo[servers], hi[servers], latency_scale, ep, scale, a, b, c, tol
    )
    frequencies[servers] = x
    return frequencies, int(servers.size)


def _solve_p2b_scalar(
    network: MECNetwork,
    state: SlotState,
    demand: FloatArray,
    energy_pressure: float,
    v: float,
    tol: float,
    tracer: Tracer,
) -> FloatArray:
    """The original per-server loop -- the batch path's reference oracle."""
    scalar_solves = 0
    frequencies = np.empty(network.num_servers)
    for n, server in enumerate(network.servers):
        lo, hi = server.freq_min, server.freq_max
        if (
            state.available_servers is not None
            and not state.available_servers[n]
        ):
            # Offline server: parked; it neither serves nor draws power.
            frequencies[n] = lo
            continue
        if demand[n] <= 0.0:
            frequencies[n] = lo
            continue
        if energy_pressure <= 0.0:
            frequencies[n] = hi
            continue
        # speed(omega) is linear in omega, so V A / speed = scale / omega.
        latency_scale = v * demand[n] / server.speed(1.0)
        model = server.energy_model
        quad = _as_scaled_quadratic(model)

        if quad is not None and hi > lo:
            # Golden-section search with the (Scaled)QuadraticEnergyModel
            # objective fused into the loop: the same probe points,
            # branch rule, iteration cap, and endpoint-included
            # first-minimum tie break as minimize_convex_scalar, and the
            # same expression tree as the model's ``power`` --
            # scale * (a f^2 + b f + c), where multiplying by a scale of
            # exactly 1.0 (the unscaled model) is a bitwise identity.
            # Inlining removes a Python call per probe, the hottest
            # scalar-path cost.
            s, qa, qb, qc = quad
            ls, ep = latency_scale, energy_pressure
            threshold = tol * max(1.0, hi - lo)
            a, b = lo, hi
            c = a + _INVPHI2 * (b - a)
            d = a + _INVPHI * (b - a)
            fc = ls / c + ep * (s * (qa * c * c + qb * c + qc))
            fd = ls / d + ep * (s * (qa * d * d + qb * d + qc))
            for _ in range(200):
                if (b - a) <= threshold:
                    break
                if fc <= fd:
                    b, d, fd = d, c, fc
                    c = a + _INVPHI2 * (b - a)
                    fc = ls / c + ep * (s * (qa * c * c + qb * c + qc))
                else:
                    a, c, fc = c, d, fd
                    d = a + _INVPHI * (b - a)
                    fd = ls / d + ep * (s * (qa * d * d + qb * d + qc))
            best_value = ls / lo + ep * (s * (qa * lo * lo + qb * lo + qc))
            best_x = lo
            value_hi = ls / hi + ep * (s * (qa * hi * hi + qb * hi + qc))
            if value_hi < best_value:
                best_value, best_x = value_hi, hi
            if fc < best_value:
                best_value, best_x = fc, c
            if fd < best_value:
                best_value, best_x = fd, d
            frequencies[n] = best_x
        else:

            def objective(freq: float) -> float:
                return latency_scale / freq + energy_pressure * model.power(freq)

            result = minimize_convex_scalar(objective, lo, hi, tol=tol)
            frequencies[n] = result.x
        scalar_solves += 1
    if tracer.enabled:
        tracer.counter("p2b.scalar_solves", scalar_solves)
        tracer.counter("p2b.fastpath", network.num_servers - scalar_solves)
    return frequencies

@dataclass
class _FusedLanes:
    """One request's contribution to a fused ``golden_quad`` call."""

    frequencies: FloatArray  # output array, fast paths already applied
    servers: np.ndarray  # lanes that need the search
    lo: FloatArray
    hi: FloatArray
    latency_scale: FloatArray
    ep: FloatArray
    scale: FloatArray
    qa: FloatArray
    qb: FloatArray
    qc: FloatArray
    method: str  # resolved method, for counter parity
    tracer: Tracer
    kernels: KernelBackend
    tol: float
    num_servers: int


def _fuse_prep(
    network: MECNetwork,
    state: SlotState,
    assignment: Assignment,
    *,
    queue_backlog: float,
    v: float,
    tol: float = 1e-8,
    method: str = "auto",
    bracket_hint: FloatArray | None = None,
    bracket_margin: float = 0.25,
    tracer: "Tracer | None" = None,
    backend: "KernelBackend | str | None" = None,
) -> _FusedLanes | None:
    """The search-prologue of :func:`solve_p2b`, packaged for fusion.

    Returns ``None`` when the request cannot join a fused kernel call --
    no native ``golden_quad``, a bracket hint (its redo loop is
    data-dependent), or a non-quadratic energy model on a searched lane
    -- in which case the caller solves it solo.  The returned lanes
    reproduce the solo call's masks, brackets, and coefficient columns
    exactly, so concatenating them with other requests' lanes cannot
    change any lane's arithmetic.
    """
    if bracket_hint is not None or method not in ("auto", "batch", "scalar"):
        return None
    kernels = get_kernels(backend)
    if kernels.golden_quad is None:
        return None
    if method == "auto":
        method = "scalar" if network.num_servers < _BATCH_CUTOVER else "batch"
    roots = server_load_roots(network, state, assignment)
    demand = roots * roots
    energy_pressure = queue_backlog * state.price
    lo = network.freq_min
    hi = network.freq_max
    frequencies = lo.copy()
    if state.available_servers is None:
        online = np.ones(network.num_servers, dtype=bool)
    else:
        online = np.asarray(state.available_servers, dtype=bool)
    loaded = online & (demand > 0.0)
    if energy_pressure <= 0.0:
        frequencies[loaded] = hi[loaded]
        servers = np.empty(0, dtype=np.int64)
    else:
        servers = np.flatnonzero(loaded)
    if servers.size:
        cols = _quad_columns(network, servers)
        if cols is None:
            return None
        scale, qa, qb, qc = cols
        speed_one = network.speed_scale[servers] * 1.0 * 1e9
        latency_scale = v * demand[servers] / speed_one
    else:
        empty = np.empty(0)
        scale = qa = qb = qc = latency_scale = empty
    return _FusedLanes(
        frequencies=frequencies,
        servers=servers,
        lo=lo[servers],
        hi=hi[servers],
        latency_scale=latency_scale,
        ep=np.full(servers.size, energy_pressure),
        scale=scale,
        qa=qa,
        qb=qb,
        qc=qc,
        method=method,
        tracer=as_tracer(tracer),
        kernels=kernels,
        tol=tol,
        num_servers=network.num_servers,
    )


def solve_p2b_many(requests: "list[dict]") -> "list[FloatArray]":
    """Solve several independent P2-B instances, fused where possible.

    Args:
        requests: :func:`solve_p2b` keyword dicts, e.g. as yielded by
            :func:`repro.core.bdma.bdma_request_stream` -- typically one
            per replication seed advancing in lockstep.

    Returns:
        The frequency arrays in request order, each bit-identical to
        ``solve_p2b(**request)`` run alone.

    Requests that would run the un-hinted search on a native
    ``golden_quad`` kernel are stacked -- all their server lanes in one
    kernel invocation per distinct ``(backend, tol)`` -- which is what
    makes cross-seed batched replication cheaper than R solo runs.
    The kernel treats lanes independently, so fusion cannot change any
    lane's result; per-request counters (``p2b.scalar_solves`` /
    ``p2b.fastpath`` / ``p2b.batch_iters``) are emitted to each
    request's own tracer exactly as the solo call would.  Requests that
    cannot fuse (numpy backend, bracket hints, non-quadratic energy
    models) fall back to a plain :func:`solve_p2b` call.
    """
    out: "list[FloatArray | None]" = [None] * len(requests)
    groups: dict = {}
    for idx, request in enumerate(requests):
        prep = _fuse_prep(**request)
        if prep is None:
            out[idx] = solve_p2b(**request)
        else:
            groups.setdefault((id(prep.kernels), prep.tol), []).append(
                (idx, prep)
            )
    for members in groups.values():
        lanes = [prep for _, prep in members]
        sizes = [int(prep.servers.size) for prep in lanes]
        if sum(sizes):
            x_all, evals_all = lanes[0].kernels.golden_quad(
                np.concatenate([p.lo for p in lanes]),
                np.concatenate([p.hi for p in lanes]),
                np.concatenate([p.latency_scale for p in lanes]),
                np.concatenate([p.ep for p in lanes]),
                np.concatenate([p.scale for p in lanes]),
                np.concatenate([p.qa for p in lanes]),
                np.concatenate([p.qb for p in lanes]),
                np.concatenate([p.qc for p in lanes]),
                lanes[0].tol,
            )
        else:
            x_all = np.empty(0)
            evals_all = np.empty(0, dtype=np.int64)
        offset = 0
        for (idx, prep), size in zip(members, sizes):
            prep.frequencies[prep.servers] = x_all[offset : offset + size]
            evals = evals_all[offset : offset + size]
            offset += size
            tracer = prep.tracer
            if tracer.enabled:
                tracer.counter("p2b.scalar_solves", size)
                tracer.counter("p2b.fastpath", prep.num_servers - size)
                if prep.method == "batch":
                    tracer.counter("p2b.batch_iters", int(evals.sum()))
            out[idx] = prep.frequencies
    return out
