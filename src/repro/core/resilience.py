"""Degraded-mode execution: watchdogs, fallbacks, and quarantine.

The paper's Algorithm 1 assumes P2 is always solved to (approximate)
equilibrium within the slot.  A production controller cannot: solvers
overrun deadlines, iteration budgets run out, and substrate faults can
leave a device with an empty strategy set.  This module supplies the
pieces :class:`~repro.core.controller.DPPController` composes into a
never-abort slot loop:

* :class:`ResiliencePolicy` -- the knobs: per-slot wall-clock deadline,
  best-response iteration cap, partial-result acceptance, the fallback
  chain, quarantine, and an optional :class:`SolverChaos` injector.
* :func:`quarantine_state` -- identifies devices whose strategy set
  is genuinely empty under the slot's coverage/availability and rewrites
  the state so the rest of the fleet can still be served: quarantined
  devices get zero demand (they contribute zero latency, zero shares)
  and a synthetic feasible placeholder link so index-vector decisions
  remain well-formed.
* :func:`fallback_decision` -- the degraded chain behind CGBA:
  greedy -> repaired last-known-good -> random-feasible, each validated
  before being accepted.

All randomness in the fallback path is either avoided (greedy runs in
deterministic ascending order) or drawn from the controller's own rng,
so degraded runs stay reproducible.

Overload is the one failure mode handled elsewhere: when the *offered
load* (not a solver or a fault) is the problem, the controller's
:class:`~repro.core.overload.OverloadPolicy` sheds tasks with the same
zero-demand placeholder algebra :func:`quarantine_state` establishes
here -- shed devices keep their links but contribute zero latency and
zero shares for the slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import optimal_allocation
from repro.core.bdma import BDMAResult
from repro.core.drift_penalty import energy_cost
from repro.core.latency import optimal_total_latency
from repro.core.p2b import solve_p2b
from repro.core.state import Assignment, Decision, SlotState, validate_decision
from repro.exceptions import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    SolverError,
)
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.types import FloatArray, IntArray, Rng


@dataclass(frozen=True)
class SolverChaos:
    """Deterministic solver-failure injection for chaos testing.

    Decides per slot -- via a stateless, platform-independent draw from
    ``default_rng([seed, t])`` -- whether the primary solver "fails"
    this slot, exercising the fallback chain without patching solver
    internals.  Stateless in ``t`` means checkpoint/resume cannot
    desynchronise it.

    Attributes:
        failure_rate: Probability a given slot's primary solve is
            failed artificially.
        seed: Seed of the per-slot decision stream.
        fail_slots: Slots that always fail, on top of the random draw.
    """

    failure_rate: float = 0.0
    seed: int = 0
    fail_slots: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ConfigurationError("failure_rate must lie in [0, 1]")
        object.__setattr__(
            self, "fail_slots", tuple(int(t) for t in self.fail_slots)
        )

    def trips(self, t: int) -> bool:
        """Whether the injected failure fires on slot *t*."""
        if t in self.fail_slots:
            return True
        if self.failure_rate <= 0.0:
            return False
        draw = float(np.random.default_rng([self.seed, t]).random())
        return draw < self.failure_rate


@dataclass(frozen=True)
class ResiliencePolicy:
    """Degraded-mode knobs for :class:`~repro.core.controller.DPPController`.

    The default-constructed policy turns everything on with no deadline
    and no iteration cap: the primary solver is never truncated, but a
    :class:`~repro.exceptions.SolverError` no longer aborts the run --
    the fallback chain produces a feasible decision and the slot record
    says so.  A controller without a policy behaves exactly as before
    (fail-fast).

    Attributes:
        deadline_seconds: Per-slot wall-clock budget for the BDMA solve;
            expired deadlines first truncate the alternation to the best
            round so far, and only fall back when not even one round
            finished.  ``None`` disables the watchdog.
        max_engine_iter: Cap on best-response moves per CGBA run (the
            iteration half of the watchdog).  ``None`` keeps the solver
            default.
        accept_partial: Consume ``ConvergenceError.best_so_far`` when the
            iteration cap is hit instead of failing the slot.
        fallback: Run the greedy -> last-known-good -> random chain on
            solver failure instead of re-raising.
        quarantine: Serve the feasible fleet when some devices have
            empty strategy sets, instead of aborting the slot.
        chaos: Optional injected-failure schedule (testing only).
    """

    deadline_seconds: float | None = None
    max_engine_iter: int | None = None
    accept_partial: bool = True
    fallback: bool = True
    quarantine: bool = True
    chaos: SolverChaos | None = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0.0:
            raise ConfigurationError("deadline_seconds must be positive")
        if self.max_engine_iter is not None and self.max_engine_iter < 1:
            raise ConfigurationError("max_engine_iter must be >= 1")


def find_infeasible_devices(network: MECNetwork, state: SlotState) -> IntArray:
    """Devices with an empty strategy set under *state*.

    A device is infeasible when no covering base station offers at least
    one reachable, available server -- exactly the condition that makes
    :class:`~repro.network.connectivity.StrategySpace` raise.
    """
    coverage = state.coverage()
    num_bs = network.num_base_stations
    if state.available_servers is None:
        # Feasible scenarios guarantee every BS reaches >= 1 server, but
        # compute it anyway: a malformed topology should quarantine too.
        bs_has_server = np.array(
            [network.servers_reachable_from(k).size > 0 for k in range(num_bs)]
        )
    else:
        avail = state.available_servers
        bs_has_server = np.array(
            [bool(avail[network.servers_reachable_from(k)].any()) for k in range(num_bs)]
        )
    feasible_bs = coverage & bs_has_server[None, :]
    return np.flatnonzero(~feasible_bs.any(axis=1))


def quarantine_state(
    network: MECNetwork, state: SlotState, quarantined: IntArray
) -> SlotState:
    """Rewrite *state* so quarantined devices are inert placeholders.

    Quarantined devices get zero cycles and bits -- they contribute zero
    latency and zero resource shares (the latency algebra maps 0/0 loads
    to 0) -- plus a synthetic unit-efficiency link to the first base
    station that still offers a served pair, so index-vector decisions
    stay well-formed.  The returned state is fully validated.
    """
    if quarantined.size == 0:
        return state
    if state.available_servers is None:
        bs_ok = np.array(
            [
                network.servers_reachable_from(k).size > 0
                for k in range(network.num_base_stations)
            ]
        )
    else:
        avail = state.available_servers
        bs_ok = np.array(
            [
                bool(avail[network.servers_reachable_from(k)].any())
                for k in range(network.num_base_stations)
            ]
        )
    anchors = np.flatnonzero(bs_ok)
    if anchors.size == 0:
        raise InfeasibleError(
            "no base station offers any available server this slot; the "
            "scenario is globally infeasible and cannot be quarantined around"
        )
    anchor = int(anchors[0])
    cycles = state.cycles.copy()
    bits = state.bits.copy()
    h = state.spectral_efficiency.copy()
    cycles[quarantined] = 0.0
    bits[quarantined] = 0.0
    h[quarantined, :] = 0.0
    h[quarantined, anchor] = 1.0
    return SlotState(
        t=state.t,
        cycles=cycles,
        bits=bits,
        spectral_efficiency=h,
        price=state.price,
        fronthaul_se=state.fronthaul_se,
        available_servers=state.available_servers,
    )


def fallback_decision(
    network: MECNetwork,
    state: SlotState,
    space,
    rng: Rng,
    *,
    queue_backlog: float,
    v: float,
    budget: float,
    previous: Assignment | None = None,
    previous_frequencies: FloatArray | None = None,
    quarantined: IntArray | None = None,
    tracer: "Tracer | None" = None,
) -> tuple[BDMAResult, str]:
    """The degraded chain behind the primary solver.

    Tiers, in order, each validated against *state* before acceptance:

    1. ``greedy`` -- deterministic joint greedy P2-A (ascending device
       order, no rng) followed by the convex P2-B frequency solve.
    2. ``last_good`` -- the previous slot's assignment repaired into the
       current strategy space, with the previous frequencies clipped to
       bounds (no solver at all: survives even a broken P2-B).
    3. ``random`` -- a random feasible assignment at minimum clocks, the
       last-resort floor (always feasible when the space exists).

    Returns the decision plus the name of the tier that produced it;
    emits a ``fallback`` event and ``resilience.fallbacks`` /
    ``resilience.fallback.<tier>`` counters on *tracer*.

    Raises:
        SolverError: Every tier failed (only possible when the strategy
            space itself is inconsistent with the state).
    """
    # Deferred: repro.baselines pulls in fixed_frequency, which imports
    # the controller, which imports this module -- a top-level import
    # here would close that cycle during package initialisation.
    from repro.baselines.greedy import solve_p2a_greedy

    tracer = as_tracer(tracer)
    failures: list[str] = []
    for tier in ("greedy", "last_good", "random"):
        try:
            if tier == "greedy":
                assignment = solve_p2a_greedy(
                    network, state, space, network.freq_min, None
                )
                frequencies = solve_p2b(
                    network, state, assignment, queue_backlog=queue_backlog, v=v
                )
            elif tier == "last_good":
                if previous is None:
                    continue
                bs_of, server_of = space.repair(
                    previous.bs_of, previous.server_of, rng
                )
                assignment = Assignment(bs_of=bs_of, server_of=server_of)
                if previous_frequencies is not None:
                    frequencies = np.clip(
                        previous_frequencies, network.freq_min, network.freq_max
                    )
                else:
                    frequencies = network.freq_min.copy()
            else:
                bs_of, server_of = space.random_assignment(rng)
                assignment = Assignment(bs_of=bs_of, server_of=server_of)
                frequencies = network.freq_min.copy()
            allocation = optimal_allocation(network, state, assignment)
            decision = Decision(
                assignment=assignment,
                allocation=allocation,
                frequencies=frequencies,
            )
            validate_decision(
                network, state, decision, quarantined=quarantined
            )
        except ReproError as exc:
            failures.append(f"{tier}: {exc}")
            continue
        latency = optimal_total_latency(network, state, assignment, frequencies)
        cost = energy_cost(
            network, frequencies, state.price, available=state.available_servers
        )
        objective = v * latency + queue_backlog * (cost - budget)
        if tracer.enabled:
            tracer.counter("resilience.fallbacks", 1)
            tracer.counter(f"resilience.fallback.{tier}", 1)
            tracer.event("fallback", {"t": state.t, "tier": tier})
        return (
            BDMAResult(
                assignment=assignment,
                frequencies=np.asarray(frequencies, dtype=np.float64),
                objective=objective,
                latency=latency,
                cost=cost,
            ),
            tier,
        )
    raise SolverError(
        "every fallback tier failed: " + "; ".join(failures)
    )
