"""Per-slot system state ``beta_t`` and decision types ``alpha_t``.

The paper's binary matrices ``x_{i,k,t}`` and ``y_{i,n,t}`` each have a
single 1 per row (constraints (1)-(2)), so we store them as index
vectors: ``bs_of[i] = k`` and ``server_of[i] = n``.  Conversion helpers
produce the one-hot form when the algebra is easier to read that way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.network.topology import MECNetwork
from repro.types import FloatArray, IntArray, as_float_array, as_int_array


@dataclass(frozen=True)
class SlotState:
    """The observed system state ``beta_t = (f_t, d_t, h_t, p_t)``.

    Attributes:
        t: Slot index.
        cycles: ``f_t`` -- task sizes in CPU cycles, shape ``(I,)``.
        bits: ``d_t`` -- input data lengths in bits, shape ``(I,)``.
        spectral_efficiency: ``h_t`` -- access-link bps/Hz, shape
            ``(I, K)``; zero entries mean "out of coverage".
        price: ``p_t`` -- electricity price for the slot.
        fronthaul_se: Optional per-slot fronthaul spectral efficiencies
            ``h^F_{k,t}``, shape ``(K,)``.  The paper treats ``h^F`` as
            time-invariant but notes the algorithm handles variation;
            when present this overrides the base stations' static values
            for the slot.
        available_servers: Optional per-slot server availability mask,
            shape ``(N,)``.  ``False`` entries are failed/offline servers:
            no device may select them and they draw no power this slot.
            ``None`` (the paper's setting) means every server is up.
    """

    t: int
    cycles: FloatArray
    bits: FloatArray
    spectral_efficiency: FloatArray
    price: float
    fronthaul_se: FloatArray | None = None
    available_servers: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        cycles = as_float_array(self.cycles, "cycles")
        bits = as_float_array(self.bits, "bits")
        h = as_float_array(self.spectral_efficiency, "spectral_efficiency")
        if cycles.ndim != 1 or cycles.shape != bits.shape:
            raise ValidationError("cycles and bits must be matching 1-D arrays")
        if h.ndim != 2 or h.shape[0] != cycles.size:
            raise ValidationError(
                f"spectral_efficiency must be (I, K) with I={cycles.size}, "
                f"got {h.shape}"
            )
        if np.any(h < 0.0):
            raise ValidationError("spectral efficiencies must be non-negative")
        if self.price < 0.0:
            raise ValidationError("price must be non-negative")
        object.__setattr__(self, "cycles", cycles)
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "spectral_efficiency", h)
        if self.fronthaul_se is not None:
            fr = as_float_array(self.fronthaul_se, "fronthaul_se")
            if fr.ndim != 1 or fr.size != h.shape[1]:
                raise ValidationError(
                    f"fronthaul_se must have shape (K,) = ({h.shape[1]},), "
                    f"got {fr.shape}"
                )
            if np.any(fr <= 0.0):
                raise ValidationError("fronthaul_se entries must be positive")
            object.__setattr__(self, "fronthaul_se", fr)
        if self.available_servers is not None:
            avail = np.asarray(self.available_servers, dtype=bool)
            if avail.ndim != 1:
                raise ValidationError("available_servers must be a 1-D mask")
            if not np.any(avail):
                raise ValidationError(
                    "available_servers cannot mark every server as down"
                )
            object.__setattr__(self, "available_servers", avail)

    @classmethod
    def trusted(
        cls,
        *,
        t: int,
        cycles: FloatArray,
        bits: FloatArray,
        spectral_efficiency: FloatArray,
        price: float,
        fronthaul_se: FloatArray | None = None,
        available_servers: "np.ndarray | None" = None,
    ) -> "SlotState":
        """Construct without per-field validation.

        The compiled state pipeline
        (:meth:`repro.sim.scenario.StateGenerator.compile_states`) draws
        whole chunks of slots at once and validates the stacked arrays
        in one pass, so re-running ``__post_init__``'s checks and
        ``as_float_array`` conversions per slot would only repeat work.
        Callers must guarantee what the normal constructor enforces:
        contiguous float64 arrays, ``cycles``/``bits`` matching 1-D,
        ``spectral_efficiency`` a non-negative ``(I, K)`` matrix,
        ``price >= 0``, and -- when given -- a positive ``(K,)``
        ``fronthaul_se`` and a boolean availability mask with at least
        one server up.
        """
        state = object.__new__(cls)
        set_ = object.__setattr__
        set_(state, "t", t)
        set_(state, "cycles", cycles)
        set_(state, "bits", bits)
        set_(state, "spectral_efficiency", spectral_efficiency)
        set_(state, "price", price)
        set_(state, "fronthaul_se", fronthaul_se)
        set_(state, "available_servers", available_servers)
        return state

    @property
    def num_devices(self) -> int:
        """``I``."""
        return int(self.cycles.size)

    @property
    def num_base_stations(self) -> int:
        """``K``."""
        return int(self.spectral_efficiency.shape[1])

    def coverage(self) -> np.ndarray:
        """Boolean ``(I, K)`` mask of usable access links this slot."""
        return self.spectral_efficiency > 0.0


@dataclass(frozen=True)
class Assignment:
    """Joint base-station and server selection ``(x_t, y_t)``.

    Attributes:
        bs_of: ``bs_of[i] = k`` -- the base station chosen by device ``i``.
        server_of: ``server_of[i] = n`` -- the chosen edge server.
    """

    bs_of: IntArray
    server_of: IntArray

    def __post_init__(self) -> None:
        bs_of = as_int_array(self.bs_of, "bs_of")
        server_of = as_int_array(self.server_of, "server_of")
        if bs_of.ndim != 1 or bs_of.shape != server_of.shape:
            raise ValidationError("bs_of and server_of must be matching 1-D arrays")
        object.__setattr__(self, "bs_of", bs_of)
        object.__setattr__(self, "server_of", server_of)

    @property
    def num_devices(self) -> int:
        """``I``."""
        return int(self.bs_of.size)

    def x_matrix(self, num_base_stations: int) -> np.ndarray:
        """One-hot ``(I, K)`` base-station selection matrix ``x_t``."""
        x = np.zeros((self.num_devices, num_base_stations))
        x[np.arange(self.num_devices), self.bs_of] = 1.0
        return x

    def y_matrix(self, num_servers: int) -> np.ndarray:
        """One-hot ``(I, N)`` server selection matrix ``y_t``."""
        y = np.zeros((self.num_devices, num_servers))
        y[np.arange(self.num_devices), self.server_of] = 1.0
        return y

    def devices_on_bs(self, k: int) -> IntArray:
        """``I_k(x_t)`` -- devices that selected base station *k*."""
        return np.flatnonzero(self.bs_of == k)

    def devices_on_server(self, n: int) -> IntArray:
        """``I_n(y_t)`` -- devices that selected server *n*."""
        return np.flatnonzero(self.server_of == n)

    def replace(self, device: int, bs: int, server: int) -> "Assignment":
        """Copy with *device* reassigned to (bs, server)."""
        bs_of = self.bs_of.copy()
        server_of = self.server_of.copy()
        bs_of[device] = bs
        server_of[device] = server
        return Assignment(bs_of=bs_of, server_of=server_of)


@dataclass(frozen=True)
class ResourceAllocation:
    """Bandwidth and compute shares ``(Psi_t, Phi_t)``.

    Because each device uses exactly one base station and one server, the
    shares are stored per device: ``compute_share[i]`` is the fraction
    ``phi`` of its chosen server, ``access_share[i]``/``fronthaul_share[i]``
    the fractions ``psi^A``/``psi^F`` of its chosen base station.
    """

    access_share: FloatArray
    fronthaul_share: FloatArray
    compute_share: FloatArray

    def __post_init__(self) -> None:
        access = as_float_array(self.access_share, "access_share")
        front = as_float_array(self.fronthaul_share, "fronthaul_share")
        compute = as_float_array(self.compute_share, "compute_share")
        if not (access.shape == front.shape == compute.shape) or access.ndim != 1:
            raise ValidationError("all share vectors must be matching 1-D arrays")
        for name, arr in (
            ("access_share", access),
            ("fronthaul_share", front),
            ("compute_share", compute),
        ):
            if np.any(arr < 0.0) or np.any(arr > 1.0 + 1e-9):
                raise ValidationError(f"{name} entries must lie in [0, 1]")
        object.__setattr__(self, "access_share", access)
        object.__setattr__(self, "fronthaul_share", front)
        object.__setattr__(self, "compute_share", compute)

    @property
    def num_devices(self) -> int:
        """``I``."""
        return int(self.access_share.size)


@dataclass(frozen=True)
class Decision:
    """The full per-slot decision ``alpha_t``."""

    assignment: Assignment
    allocation: ResourceAllocation
    frequencies: FloatArray

    def __post_init__(self) -> None:
        freqs = as_float_array(self.frequencies, "frequencies")
        if freqs.ndim != 1:
            raise ValidationError("frequencies must be a 1-D array")
        if self.allocation.num_devices != self.assignment.num_devices:
            raise ValidationError("allocation and assignment sizes differ")
        object.__setattr__(self, "frequencies", freqs)


def validate_decision(
    network: MECNetwork,
    state: SlotState,
    decision: Decision,
    *,
    atol: float = 1e-9,
    quarantined: "np.ndarray | Sequence[int] | None" = None,
) -> None:
    """Check a decision against constraints (1)-(6) and frequency bounds.

    Args:
        network: Static topology.
        state: The slot's observed state.
        decision: The decision to check.
        atol: Numerical tolerance on share sums and frequency bounds.
        quarantined: Optional device indices excluded from the
            per-device checks and from the capacity sums.  Degraded-mode
            control (:mod:`repro.core.resilience`) quarantines devices
            whose strategy set is genuinely empty; their placeholder
            assignment entries carry zero demand and zero shares, so
            they cannot affect any other device's constraints.

    Raises:
        ValidationError: Describing the first violated constraint.
    """
    assignment = decision.assignment
    allocation = decision.allocation
    num_devices = network.num_devices
    if assignment.num_devices != num_devices or state.num_devices != num_devices:
        raise ValidationError("device-count mismatch between network/state/decision")
    active = np.ones(num_devices, dtype=bool)
    if quarantined is not None:
        idx = np.asarray(quarantined, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= num_devices):
            raise ValidationError("quarantined device index out of range")
        active[idx] = False

    # Per-device checks, vectorized.  The masks reproduce the original
    # per-device loop's report exactly: the lowest-indexed device with
    # any violation wins, and at that device the checks apply in the
    # loop's order (bs range, server range, coverage, availability,
    # reachability).  Out-of-range selections are clamped to 0 for the
    # later gathers; the clamp cannot misreport, because any clamped
    # device already fails its range check, which is tested first.
    bs_of = assignment.bs_of
    server_of = assignment.server_of
    num_bs = network.num_base_stations
    num_servers = network.num_servers
    bad_bs = (bs_of < 0) | (bs_of >= num_bs)
    bad_server = (server_of < 0) | (server_of >= num_servers)
    k_safe = np.where(bad_bs, 0, bs_of)
    n_safe = np.where(bad_server, 0, server_of)
    devices = np.arange(num_devices)
    uncovered = state.spectral_efficiency[devices, k_safe] <= 0.0
    if state.available_servers is None:
        offline = np.zeros(num_devices, dtype=bool)
    else:
        offline = ~state.available_servers[n_safe]
    reachable = np.zeros((num_bs, num_servers), dtype=bool)
    for k in range(num_bs):
        reachable[k, network.servers_reachable_from(k)] = True
    unreachable = ~reachable[k_safe, n_safe]
    violated = (bad_bs | bad_server | uncovered | offline | unreachable) & active
    if violated.any():
        i = int(np.argmax(violated))
        k = int(bs_of[i])
        n = int(server_of[i])
        if bad_bs[i]:
            raise ValidationError(f"device {i}: base station {k} out of range")
        if bad_server[i]:
            raise ValidationError(f"device {i}: server {n} out of range")
        if uncovered[i]:
            raise ValidationError(
                f"device {i}: selected base station {k} does not cover it"
            )
        if offline[i]:
            raise ValidationError(
                f"device {i}: selected server {n} is offline this slot"
            )
        raise ValidationError(
            f"device {i}: server {n} unreachable through base station {k} "
            "(constraint (3))"
        )

    # Capacity constraints (4)-(6): shares on each resource sum to <= 1.
    # One bincount per resource kind replaces the per-resource member
    # scans; the first offending resource in the original loop order
    # (base stations ascending with access before fronthaul, then
    # servers) is reported.
    access_sums = np.bincount(
        bs_of[active], weights=allocation.access_share[active], minlength=num_bs
    )
    fronthaul_sums = np.bincount(
        bs_of[active], weights=allocation.fronthaul_share[active], minlength=num_bs
    )
    limit = 1.0 + atol
    bs_over = (access_sums > limit) | (fronthaul_sums > limit)
    if bs_over.any():
        k = int(np.argmax(bs_over))
        if access_sums[k] > limit:
            raise ValidationError(f"base station {k}: access shares exceed 1")
        raise ValidationError(f"base station {k}: fronthaul shares exceed 1")
    compute_sums = np.bincount(
        server_of[active], weights=allocation.compute_share[active], minlength=num_servers
    )
    if np.any(compute_sums > limit):
        n = int(np.argmax(compute_sums > limit))
        raise ValidationError(f"server {n}: compute shares exceed 1")

    freqs = decision.frequencies
    if freqs.size != network.num_servers:
        raise ValidationError("one frequency per server is required")
    if np.any(freqs < network.freq_min - atol) or np.any(
        freqs > network.freq_max + atol
    ):
        raise ValidationError("a frequency lies outside [F^L, F^U]")
