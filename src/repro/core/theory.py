"""The paper's theoretical guarantees as checkable quantities.

* Theorem 2: CGBA(lambda) returns a profile within ``2.62/(1-8 lambda)``
  of the optimal total latency, in ``O((1/lambda) log(P0/Pmin))`` moves.
* Theorem 3: BDMA inherits ``R = 2.62 R_F / (1 - 8 lambda)`` on P2,
  where ``R_F = max_n F^U_n / F^L_n``.
* Theorem 4: BDMA-based DPP achieves time-average latency at most
  ``R rho* + B D / V`` while satisfying the budget.

The functions here compute the concrete constants for a given network
and verify measured results against them -- the checks the benchmark
verifications and several tests rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cgba import CGBA_BASE_RATIO, cgba_approximation_ratio
from repro.core.congestion_game import OffloadingCongestionGame
from repro.network.topology import MECNetwork


def bdma_approximation_ratio(network: MECNetwork, slack: float = 0.0) -> float:
    """Theorem 3's constant ``R = 2.62 R_F / (1 - 8 lambda)``.

    Args:
        network: Supplies ``R_F``, the largest frequency ratio.
        slack: CGBA's ``lambda`` in ``[0, 0.125)``.
    """
    return cgba_approximation_ratio(slack) * network.max_frequency_ratio()


def cgba_iteration_bound(
    game: OffloadingCongestionGame, slack: float
) -> float:
    """Theorem 2's iteration bound ``O((1/lambda) log(P0/Pmin))``.

    ``P0`` is the potential of the game's current (initial) profile;
    ``Pmin`` is bounded below by the best-response potential floor,
    which we conservatively estimate as the potential's additive
    self-interaction term (the load-independent part, which no profile
    can shed).  The returned value is the bound's leading expression
    without the suppressed constant -- useful for order-of-magnitude
    comparisons, not as a hard cap.

    Raises:
        ValueError: For ``slack <= 0`` (the bound is vacuous at 0).
    """
    if slack <= 0.0:
        raise ValueError("the iteration bound requires lambda > 0")
    p0 = game.potential()
    # Potential floor: half the sum of m_r p_{i,r}^2 over the current
    # profile's cheapest possible placements; the self-interaction term
    # of the potential cannot vanish.  Use the current profile's
    # self-term scaled down by the ratio bound as a conservative floor.
    p_min = p0 / max(
        CGBA_BASE_RATIO * game.num_players, 1.0
    )
    return (1.0 / slack) * math.log(max(p0 / p_min, 1.0 + 1e-12))


@dataclass(frozen=True)
class GuaranteeCheck:
    """Outcome of checking a measured value against a theoretical bound."""

    measured: float
    bound: float

    @property
    def satisfied(self) -> bool:
        """Whether the measured value respects the bound."""
        return self.measured <= self.bound * (1.0 + 1e-9)

    @property
    def headroom(self) -> float:
        """``bound / measured`` -- how loose the bound is in practice."""
        if self.measured <= 0.0:
            return float("inf")
        return self.bound / self.measured


def check_cgba_guarantee(
    measured_latency: float, optimal_latency: float, slack: float = 0.0
) -> GuaranteeCheck:
    """Check a measured CGBA result against Theorem 2.

    Args:
        measured_latency: ``T(z_hat)`` from a CGBA run.
        optimal_latency: The optimum (or any lower bound on it -- the
            check is then conservative).
        slack: The lambda used.
    """
    return GuaranteeCheck(
        measured=measured_latency,
        bound=cgba_approximation_ratio(slack) * optimal_latency,
    )


def check_bdma_guarantee(
    network: MECNetwork,
    measured_objective: float,
    reference_objective: float,
    *,
    queue_term: float = 0.0,
    slack: float = 0.0,
) -> GuaranteeCheck:
    """Check a measured BDMA result against Theorem 3.

    Theorem 3 states ``V T(bar) + Q Theta(bar) <= R V T(any) +
    Q Theta(any)``; pass the latency parts through the objectives and
    any shared queue term via *queue_term*.
    """
    ratio = bdma_approximation_ratio(network, slack)
    return GuaranteeCheck(
        measured=measured_objective,
        bound=ratio * (reference_objective - queue_term) + queue_term,
    )
