"""The DPP virtual queue ``Q(t)`` (Eq. 21).

The queue accumulates energy-cost overshoot ``theta(t) = C_t - Cbar``
and drains when the system under-spends.  Its time-average stability is
what converts the per-slot minimisation into the time-average constraint
(14): if ``Q(t)/t -> 0`` then the average of ``theta`` is at most 0.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.probe import Tracer, as_tracer
from repro.types import FloatArray


class VirtualQueue:
    """Scalar virtual queue with recorded history.

    Args:
        initial: ``Q(1)``, non-negative.
        tracer: Observability tracer; when enabled, every update emits a
            ``queue.backlog`` gauge sample.
    """

    def __init__(self, initial: float = 0.0, tracer: "Tracer | None" = None) -> None:
        if initial < 0.0:
            raise ConfigurationError("queue backlog cannot be negative")
        self._backlog = float(initial)
        self._history: list[float] = [self._backlog]
        self._tracer = as_tracer(tracer)

    @property
    def backlog(self) -> float:
        """Current ``Q(t)``."""
        return self._backlog

    def update(self, theta: float) -> float:
        """Apply ``Q(t+1) = max(Q(t) + theta, 0)`` and return the new backlog."""
        self._backlog = max(self._backlog + theta, 0.0)
        self._history.append(self._backlog)
        if self._tracer.enabled:
            self._tracer.gauge("queue.backlog", self._backlog)
        return self._backlog

    def history(self) -> FloatArray:
        """Backlog trajectory including the initial value, shape ``(T+1,)``."""
        return np.array(self._history)

    def time_average(self) -> float:
        """Mean backlog over the recorded history."""
        return float(np.mean(self._history))

    def reset(self, initial: float = 0.0) -> None:
        """Restart the queue (e.g. between independent simulation runs)."""
        if initial < 0.0:
            raise ConfigurationError("queue backlog cannot be negative")
        self._backlog = float(initial)
        self._history = [self._backlog]
