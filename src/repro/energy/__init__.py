"""Energy substrate: server power models and electricity pricing.

This subpackage reproduces the energy side of the paper:

* :mod:`repro.energy.cpu_data` -- the digitised i7-3770K frequency/power
  measurements of Fig. 3 and their least-squares quadratic fit.
* :mod:`repro.energy.models` -- convex energy-consumption functions
  ``g_n(omega)``; the paper leaves the functional form unspecified and
  only requires convexity, so several families are provided.
* :mod:`repro.energy.pricing` -- time-varying electricity price processes
  ``p_t`` modelled as a periodic trend plus iid noise (the paper's
  NYISO-motivated model, Fig. 2).
* :mod:`repro.energy.cost` -- per-slot energy cost ``C_t`` (Eq. 13) and
  budget-selection helpers.
"""

from repro.energy.cpu_data import (
    I7_3770K_FREQUENCIES_GHZ,
    I7_3770K_POWER_WATTS,
    fit_quadratic_power_curve,
)
from repro.energy.models import (
    CubicEnergyModel,
    EnergyModel,
    LinearEnergyModel,
    PiecewiseLinearEnergyModel,
    QuadraticEnergyModel,
    ScaledEnergyModel,
    perturbed_quadratic_model,
)
from repro.energy.pricing import (
    ConstantPriceModel,
    PeriodicPriceModel,
    PriceModel,
    TracePriceModel,
    synthetic_nyiso_trend,
)
from repro.energy.cost import (
    max_slot_cost,
    min_slot_cost,
    slot_energy_cost,
    suggest_budget,
)

__all__ = [
    "I7_3770K_FREQUENCIES_GHZ",
    "I7_3770K_POWER_WATTS",
    "fit_quadratic_power_curve",
    "EnergyModel",
    "QuadraticEnergyModel",
    "LinearEnergyModel",
    "CubicEnergyModel",
    "PiecewiseLinearEnergyModel",
    "ScaledEnergyModel",
    "perturbed_quadratic_model",
    "PriceModel",
    "PeriodicPriceModel",
    "ConstantPriceModel",
    "TracePriceModel",
    "synthetic_nyiso_trend",
    "slot_energy_cost",
    "min_slot_cost",
    "max_slot_cost",
    "suggest_budget",
]
