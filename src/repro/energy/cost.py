"""Per-slot energy cost ``C_t`` (Eq. 13) and budget-selection helpers.

These functions operate on sequences of :class:`~repro.energy.models.EnergyModel`
plus frequency vectors so they do not depend on the network topology
types; the topology layer passes its servers' models in.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.energy.models import EnergyModel
from repro.energy.pricing import PriceModel
from repro.exceptions import ConfigurationError
from repro.types import FloatArray


def slot_energy_cost(
    models: Sequence[EnergyModel],
    frequencies: FloatArray,
    price: float,
) -> float:
    """Total energy cost at one slot: ``C_t = p_t * sum_n g_n(omega_n)``."""
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if len(models) != frequencies.size:
        raise ConfigurationError(
            f"{len(models)} energy models but {frequencies.size} frequencies"
        )
    total_power = sum(m.power(float(f)) for m, f in zip(models, frequencies))
    return price * total_power


def min_slot_cost(
    models: Sequence[EnergyModel],
    freq_min: FloatArray,
    price: float,
) -> float:
    """Energy cost when every server idles at its lowest frequency."""
    return slot_energy_cost(models, freq_min, price)


def max_slot_cost(
    models: Sequence[EnergyModel],
    freq_max: FloatArray,
    price: float,
) -> float:
    """Energy cost when every server runs flat out at its top frequency."""
    return slot_energy_cost(models, freq_max, price)


def suggest_budget(
    models: Sequence[EnergyModel],
    freq_min: FloatArray,
    freq_max: FloatArray,
    price_model: PriceModel,
    *,
    fraction: float = 0.5,
) -> float:
    """Pick a time-average energy budget ``Cbar`` between the extremes.

    The achievable time-average cost lies between the all-at-``F^L`` and
    all-at-``F^U`` costs evaluated at the mean trend price.  ``fraction``
    interpolates between them (0 -> barely feasible, 1 -> unconstrained),
    mirroring how the paper sweeps budgets in its Fig. 9.

    Raises:
        ConfigurationError: If ``fraction`` lies outside ``[0, 1]``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
    mean_price = float(
        np.mean([price_model.trend(t) for t in range(price_model.period)])
    )
    lo = min_slot_cost(models, np.asarray(freq_min, dtype=np.float64), mean_price)
    hi = max_slot_cost(models, np.asarray(freq_max, dtype=np.float64), mean_price)
    return lo + fraction * (hi - lo)
