"""Digitised i7-3770K frequency/power measurements and quadratic fit.

The paper's Fig. 3 shows the measured power of an Intel i7-3770K core at
clock frequencies between 1.8 GHz and 3.6 GHz and fits the points with a
quadratic.  We did not have access to the authors' raw measurements, so
the table below is a digitisation of the published literature values for
that part (convex, increasing, ~30 W at 1.8 GHz up to ~75 W at 3.6 GHz);
only the fitted quadratic and its per-server perturbations enter the
simulations, exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

#: Clock frequencies (GHz) at which power was measured.
I7_3770K_FREQUENCIES_GHZ: FloatArray = np.array(
    [1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0, 3.2, 3.4, 3.5, 3.6]
)

#: Measured package power (watts) at the frequencies above.  Convex and
#: increasing in frequency, matching the shape of the paper's Fig. 3.
I7_3770K_POWER_WATTS: FloatArray = np.array(
    [30.1, 33.0, 36.4, 40.2, 44.5, 49.3, 54.7, 60.7, 67.3, 70.9, 74.6]
)


def fit_quadratic_power_curve(
    frequencies: FloatArray | None = None,
    powers: FloatArray | None = None,
) -> tuple[float, float, float]:
    """Least-squares quadratic fit ``power = a f^2 + b f + c``.

    Args:
        frequencies: Frequencies in GHz; defaults to the i7-3770K table.
        powers: Power draws in watts; defaults to the i7-3770K table.

    Returns:
        The coefficients ``(a, b, c)``.  For the default data ``a > 0``,
        so the fitted curve is convex as the paper requires.
    """
    if frequencies is None:
        frequencies = I7_3770K_FREQUENCIES_GHZ
    if powers is None:
        powers = I7_3770K_POWER_WATTS
    frequencies = np.asarray(frequencies, dtype=np.float64)
    powers = np.asarray(powers, dtype=np.float64)
    if frequencies.shape != powers.shape:
        raise ValueError("frequencies and powers must have the same shape")
    if frequencies.size < 3:
        raise ValueError("need at least three points to fit a quadratic")
    a, b, c = np.polyfit(frequencies, powers, deg=2)
    return float(a), float(b), float(c)
