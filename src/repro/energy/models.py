"""Convex per-server energy-consumption functions ``g_n(omega)``.

The paper does not fix a functional form: it only requires each server's
energy consumption to be convex in its clock frequency and allows every
server to have a *different* function.  The simulation section then
instantiates quadratics fitted to i7-3770K data with randomised
coefficients.  We provide that family plus linear ([8]'s model), cubic
(classic CMOS dynamic-power scaling), and piecewise-linear (arbitrary
convex tabulated data) variants, all behind one small interface.

Frequencies are expressed in GHz throughout this module (matching the
fitted data); powers are in watts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.energy.cpu_data import fit_quadratic_power_curve
from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng


class EnergyModel(abc.ABC):
    """Energy consumption of one server as a function of clock frequency."""

    @abc.abstractmethod
    def power(self, frequency: float) -> float:
        """Power draw (watts) at the given clock *frequency* (GHz)."""

    def derivative(self, frequency: float, *, eps: float = 1e-6) -> float:
        """First derivative of :meth:`power`; default central difference."""
        return (self.power(frequency + eps) - self.power(frequency - eps)) / (2 * eps)

    def power_many(self, frequencies: FloatArray) -> FloatArray:
        """Vectorised :meth:`power`; subclasses may override for speed."""
        return np.array([self.power(float(f)) for f in np.asarray(frequencies)])

    def check_convex(self, lo: float, hi: float, samples: int = 64) -> bool:
        """Numerically verify convexity of the model on ``[lo, hi]``.

        Checks the midpoint inequality on an evenly spaced grid; this is a
        diagnostic helper (used by topology validation), not a proof.
        """
        xs = np.linspace(lo, hi, samples)
        ys = self.power_many(xs)
        mids = self.power_many((xs[:-1] + xs[1:]) / 2.0)
        return bool(np.all(mids <= (ys[:-1] + ys[1:]) / 2.0 + 1e-9))


@dataclass(frozen=True)
class QuadraticEnergyModel(EnergyModel):
    """``g(f) = a f^2 + b f + c`` with ``a >= 0`` (the paper's Fig. 3 fit)."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a < 0.0:
            raise ConfigurationError(
                f"quadratic energy model must be convex (a >= 0), got a={self.a}"
            )

    def power(self, frequency: float) -> float:
        return self.a * frequency * frequency + self.b * frequency + self.c

    def derivative(self, frequency: float, *, eps: float = 1e-6) -> float:
        del eps
        return 2.0 * self.a * frequency + self.b

    def power_many(self, frequencies: FloatArray) -> FloatArray:
        f = np.asarray(frequencies, dtype=np.float64)
        return self.a * f * f + self.b * f + self.c


@dataclass(frozen=True)
class LinearEnergyModel(EnergyModel):
    """``g(f) = slope * f + intercept`` -- the model assumed by [8]."""

    slope: float
    intercept: float

    def __post_init__(self) -> None:
        if self.slope < 0.0:
            raise ConfigurationError("linear energy model requires slope >= 0")

    def power(self, frequency: float) -> float:
        return self.slope * frequency + self.intercept

    def derivative(self, frequency: float, *, eps: float = 1e-6) -> float:
        del frequency, eps
        return self.slope

    def power_many(self, frequencies: FloatArray) -> FloatArray:
        return self.slope * np.asarray(frequencies, dtype=np.float64) + self.intercept


@dataclass(frozen=True)
class CubicEnergyModel(EnergyModel):
    """``g(f) = kappa f^3 + static`` -- CMOS dynamic power scaling."""

    kappa: float
    static: float = 0.0

    def __post_init__(self) -> None:
        if self.kappa < 0.0:
            raise ConfigurationError("cubic energy model requires kappa >= 0")

    def power(self, frequency: float) -> float:
        return self.kappa * frequency**3 + self.static

    def derivative(self, frequency: float, *, eps: float = 1e-6) -> float:
        del eps
        return 3.0 * self.kappa * frequency * frequency

    def power_many(self, frequencies: FloatArray) -> FloatArray:
        f = np.asarray(frequencies, dtype=np.float64)
        return self.kappa * f**3 + self.static


class PiecewiseLinearEnergyModel(EnergyModel):
    """Convex interpolation of tabulated (frequency, power) measurements.

    Useful when a server's power curve is known only as measurements; the
    constructor verifies the tabulated points are convex so the P2-B
    subproblem stays convex.
    """

    def __init__(self, frequencies: FloatArray, powers: FloatArray) -> None:
        freqs = np.asarray(frequencies, dtype=np.float64)
        pows = np.asarray(powers, dtype=np.float64)
        if freqs.ndim != 1 or freqs.shape != pows.shape or freqs.size < 2:
            raise ConfigurationError("need matching 1-D arrays of >= 2 points")
        if not np.all(np.diff(freqs) > 0):
            raise ConfigurationError("frequencies must be strictly increasing")
        slopes = np.diff(pows) / np.diff(freqs)
        if not np.all(np.diff(slopes) >= -1e-9):
            raise ConfigurationError("tabulated power curve is not convex")
        self._freqs = freqs
        self._pows = pows

    @property
    def knots(self) -> tuple[FloatArray, FloatArray]:
        """The tabulated (frequencies, powers) defining the model."""
        return self._freqs.copy(), self._pows.copy()

    def power(self, frequency: float) -> float:
        return float(np.interp(frequency, self._freqs, self._pows))

    def power_many(self, frequencies: FloatArray) -> FloatArray:
        return np.interp(np.asarray(frequencies, dtype=np.float64),
                         self._freqs, self._pows)


@dataclass(frozen=True)
class ScaledEnergyModel(EnergyModel):
    """A base model multiplied by a constant (e.g. per-core power x cores)."""

    base: EnergyModel
    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ConfigurationError("scale must be positive")

    def power(self, frequency: float) -> float:
        return self.scale * self.base.power(frequency)

    def derivative(self, frequency: float, *, eps: float = 1e-6) -> float:
        return self.scale * self.base.derivative(frequency, eps=eps)

    def power_many(self, frequencies: FloatArray) -> FloatArray:
        return self.scale * self.base.power_many(frequencies)


def perturbed_quadratic_model(
    rng: Rng,
    base_coefficients: tuple[float, float, float] | None = None,
) -> QuadraticEnergyModel:
    """Draw one server's energy model per the paper's recipe (Sec. VI-A).

    Starting from the i7-3770K quadratic fit ``(a, b, c)``, a standard
    normal ``e`` is drawn and the server's coefficients become
    ``a (1 + 0.01 e)``, ``b (1 + 0.1 e)``, ``c (1 + 0.1 e)``.  The draw is
    rejected and repeated in the (very rare) event that the perturbed
    quadratic loses convexity.

    Args:
        rng: Random generator.
        base_coefficients: Override the fitted ``(a, b, c)``; defaults to
            the i7-3770K fit.

    Returns:
        A convex :class:`QuadraticEnergyModel`.
    """
    if base_coefficients is None:
        base_coefficients = fit_quadratic_power_curve()
    a, b, c = base_coefficients
    for _ in range(100):
        e = float(rng.standard_normal())
        model_a = a * (1.0 + 0.01 * e)
        model_b = b * (1.0 + 0.1 * e)
        model_c = c * (1.0 + 0.1 * e)
        if model_a >= 0.0:
            return QuadraticEnergyModel(a=model_a, b=model_b, c=model_c)
    raise ConfigurationError(
        "could not draw a convex perturbed quadratic in 100 attempts; "
        "check the base coefficients"
    )
