"""Time-varying electricity price processes ``p_t``.

The paper models the price as a periodic trend plus iid noise,
``p_t = pbar_t + e^p_t``, motivated by NYISO hourly prices (its Fig. 2).
We do not ship the proprietary NYISO trace; instead
:func:`synthetic_nyiso_trend` builds a 24-slot diurnal trend with the
characteristic morning and evening peaks and a realistic $/MWh range,
which exercises exactly the structure the algorithm relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng, as_float_array


class PriceModel(abc.ABC):
    """Electricity price process; one price per discrete time slot."""

    #: Period of the underlying trend (the paper's ``D``); 1 for constants.
    period: int

    @abc.abstractmethod
    def price(self, t: int, rng: Rng) -> float:
        """Draw the price for slot *t* (slots are numbered from 0)."""

    @abc.abstractmethod
    def trend(self, t: int) -> float:
        """The deterministic trend component ``pbar_t``."""

    def generate(self, horizon: int, rng: Rng) -> FloatArray:
        """Draw a full price trace of length *horizon*."""
        return np.array([self.price(t, rng) for t in range(horizon)])


@dataclass(frozen=True)
class ConstantPriceModel(PriceModel):
    """A constant price; handy for unit tests and ablations."""

    value: float
    period: int = 1

    def __post_init__(self) -> None:
        if self.value < 0.0:
            raise ConfigurationError("price must be non-negative")

    def price(self, t: int, rng: Rng) -> float:
        del t, rng
        return self.value

    def trend(self, t: int) -> float:
        del t
        return self.value


class PeriodicPriceModel(PriceModel):
    """``p_t = trend[t mod D] + e_t`` with iid noise, floored at zero.

    Args:
        trend_values: The periodic trend ``pbar``; its length is the
            period ``D``.
        noise_std: Standard deviation of the iid Gaussian noise ``e^p_t``.
        floor: Prices below this are clipped up to it (renewable markets
            occasionally clear near zero but the model keeps ``p_t >= 0``
            so energy cost stays a cost).
    """

    def __init__(
        self,
        trend_values: FloatArray,
        *,
        noise_std: float = 0.0,
        floor: float = 0.0,
    ) -> None:
        values = as_float_array(trend_values, "trend_values")
        if values.ndim != 1 or values.size == 0:
            raise ConfigurationError("trend_values must be a non-empty 1-D array")
        if np.any(values < 0.0):
            raise ConfigurationError("trend prices must be non-negative")
        if noise_std < 0.0:
            raise ConfigurationError("noise_std must be non-negative")
        self._trend = values
        self._noise_std = float(noise_std)
        self._floor = float(floor)
        self.period = int(values.size)

    @property
    def noise_std(self) -> float:
        """Standard deviation of the iid noise component."""
        return self._noise_std

    def trend(self, t: int) -> float:
        return float(self._trend[t % self.period])

    def price(self, t: int, rng: Rng) -> float:
        noise = self._noise_std * float(rng.standard_normal()) if self._noise_std else 0.0
        return max(self._floor, self.trend(t) + noise)

    def generate(self, horizon: int, rng: Rng) -> FloatArray:
        reps = int(np.ceil(horizon / self.period))
        base = np.tile(self._trend, reps)[:horizon]
        if self._noise_std:
            base = base + self._noise_std * rng.standard_normal(horizon)
        return np.maximum(self._floor, base)


@dataclass(frozen=True)
class TracePriceModel(PriceModel):
    """Replay a recorded price trace, repeating it past its end.

    Use this to plug in a real NYISO (or any other ISO) hourly trace when
    one is available; the simulator only needs ``price(t)``.
    """

    trace: FloatArray
    period: int = field(init=False)

    def __post_init__(self) -> None:
        trace = as_float_array(self.trace, "trace")
        if trace.ndim != 1 or trace.size == 0:
            raise ConfigurationError("trace must be a non-empty 1-D array")
        object.__setattr__(self, "trace", trace)
        object.__setattr__(self, "period", int(trace.size))

    def price(self, t: int, rng: Rng) -> float:
        del rng
        return float(self.trace[t % self.trace.size])

    def trend(self, t: int) -> float:
        return float(self.trace[t % self.trace.size])


def synthetic_nyiso_trend(
    *,
    period: int = 24,
    base_price: float = 28.0,
    morning_peak: float = 14.0,
    evening_peak: float = 24.0,
    morning_hour: float = 8.0,
    evening_hour: float = 19.0,
    peak_width_hours: float = 2.5,
) -> FloatArray:
    """Build a diurnal $/MWh trend with morning and evening peaks.

    The shape mimics NYISO day-ahead hourly prices (paper Fig. 2): a flat
    overnight base with two Gaussian bumps around the commute hours.  All
    parameters are exposed so experiments can stress different market
    shapes.

    Returns:
        An array of length *period* (default 24, one slot per hour).
    """
    if period < 2:
        raise ConfigurationError("period must be at least 2")
    hours = np.arange(period) * (24.0 / period)

    def bump(center: float, height: float) -> FloatArray:
        # Wrap-around distance on the 24 h circle keeps the trend periodic.
        delta = np.minimum(np.abs(hours - center), 24.0 - np.abs(hours - center))
        return height * np.exp(-0.5 * (delta / peak_width_hours) ** 2)

    trend = base_price + bump(morning_hour, morning_peak) + bump(evening_hour, evening_peak)
    return trend
