"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A scenario, network, or algorithm was configured inconsistently."""


class TopologyError(ConfigurationError):
    """The MEC network topology is malformed (e.g. empty cluster, bad link)."""


class InfeasibleError(ReproError):
    """No feasible decision exists for a device or for the whole problem.

    Raised, for example, when a mobile device is covered by no base
    station, or when a base station connects to no server cluster.
    """

    def __init__(self, message: str, *, device: int | None = None) -> None:
        super().__init__(message)
        #: Index of the offending mobile device, when known.
        self.device = device


class SolverError(ReproError):
    """A numerical solver failed to produce a valid answer."""


class DeadlineError(SolverError):
    """A per-slot solver watchdog deadline expired before any usable
    decision was produced (see :class:`repro.core.resilience.ResiliencePolicy`)."""


class InjectedFaultError(SolverError):
    """A deliberately injected solver failure (chaos testing).

    Raised by :class:`repro.core.resilience.SolverChaos` so the degraded-mode
    fallback chain can be exercised deterministically.
    """


class CheckpointError(ReproError):
    """A run checkpoint could not be written, read, or safely resumed."""


class ConvergenceError(SolverError):
    """An iterative algorithm exhausted its iteration budget.

    The partially converged answer, when available, is attached as
    :attr:`best_so_far` so callers may still use it.
    """

    def __init__(self, message: str, *, best_so_far: object | None = None) -> None:
        super().__init__(message)
        self.best_so_far = best_so_far


class ValidationError(ReproError):
    """A decision violates one of the problem's constraints (Eqs. 1-6)."""
