"""Programmatic runners for every experiment in the paper's evaluation.

Each module reproduces one figure (or one ablation) of the paper as a
parameterised function returning a structured result object that can

* render itself as the table the paper plots (``.table()``), and
* verify the paper's qualitative claims about it (``.verify()``).

The benchmark suite under ``benchmarks/`` is a thin wrapper: it calls
these runners with the paper's parameters, persists the tables, and
asserts via ``verify()``.  The same runners back the ``python -m repro``
command line, and can be called with smaller parameters for quick
exploration.
"""

from repro.experiments.fig2_traces import Fig2Result, run_fig2
from repro.experiments.fig3_energy_fit import Fig3Result, run_fig3
from repro.experiments.fig4_p2a_quality import Fig4Result, run_fig4
from repro.experiments.fig5_p2a_runtime import Fig5Result, run_fig5
from repro.experiments.fig6_lambda_sweep import Fig6Result, run_fig6
from repro.experiments.fig7_queue_backlog import Fig7Result, run_fig7
from repro.experiments.fig8_v_sweep import Fig8Result, run_fig8
from repro.experiments.fig9_budget_sweep import Fig9Result, run_fig9
from repro.experiments.ablations import (
    BdmaZResult,
    BudgetPacingResult,
    FreqScalingResult,
    GreedyResult,
    run_ablation_bdma_z,
    run_ablation_budget_pacing,
    run_ablation_freq_scaling,
    run_ablation_greedy,
)
from repro.experiments.common import (
    paper_scenario,
    reduced_scenario,
    single_state,
)
from repro.experiments.report import QUICK_SET, generate_report
from repro.experiments.robustness import (
    ChaosSweepResult,
    FaultSweepResult,
    run_chaos_sweep,
    run_fault_sweep,
)

#: Registry mapping experiment ids to their runners (used by the CLI).
RUNNERS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "ablation-z": run_ablation_bdma_z,
    "ablation-freq": run_ablation_freq_scaling,
    "ablation-greedy": run_ablation_greedy,
    "ablation-pacing": run_ablation_budget_pacing,
    "robustness-faults": run_fault_sweep,
    "robustness-chaos": run_chaos_sweep,
}

__all__ = [
    "RUNNERS",
    "QUICK_SET",
    "generate_report",
    "paper_scenario",
    "reduced_scenario",
    "single_state",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_ablation_bdma_z",
    "run_ablation_freq_scaling",
    "run_ablation_greedy",
    "run_ablation_budget_pacing",
    "BudgetPacingResult",
    "run_fault_sweep",
    "FaultSweepResult",
    "run_chaos_sweep",
    "ChaosSweepResult",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "BdmaZResult",
    "FreqScalingResult",
    "GreedyResult",
]
