"""Ablation experiments on the design choices DESIGN.md calls out.

* :func:`run_ablation_bdma_z` -- how quickly BDMA's alternation
  saturates in ``z``.
* :func:`run_ablation_freq_scaling` -- what online frequency scaling
  buys over pinning every clock (the paper's core mechanism).
* :func:`run_ablation_greedy` -- what CGBA's joint equilibrium search
  buys over one-pass greedy and decoupled selection.
* :func:`run_ablation_budget_pacing` -- whether demand-weighted budget
  schedules (same average) improve on the constant reference.  The
  answer is *no*: the virtual queue already paces spending optimally
  through P2-B's price/demand response, which validates the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.equilibrium import estimate_equilibrium_backlog
from repro.analysis.tables import format_table
from repro.baselines import solve_p2a_greedy
from repro.core import optimal_total_latency, solve_p2_bdma, solve_p2a_cgba
from repro.core.budget import BudgetSchedule, ConstantBudget, demand_weighted_budget
from repro.workload.traces import diurnal_profile
from repro.experiments.common import (
    ExperimentResult,
    paper_scenario,
    single_state,
)
from repro.network.connectivity import StrategySpace


# -- Ablation A: BDMA alternation depth --------------------------------------


@dataclass
class BdmaZResult(ExperimentResult):
    """Seed-averaged P2 objective per alternation depth z."""

    rows: list[list[object]] = field(default_factory=list)

    def table(self) -> str:
        return format_table(
            ["z", "P2 objective (mean)", "std"],
            self.rows,
            title="Ablation A -- BDMA(z) objective vs alternation rounds",
        )

    def verify(self) -> None:
        objectives = [row[1] for row in self.rows]
        assert objectives[-1] <= objectives[0] + 1e-9
        for earlier, later in zip(objectives, objectives[1:]):
            assert later <= earlier * 1.01


def run_ablation_bdma_z(
    *,
    z_values: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    seeds: tuple[int, ...] = (0, 1, 2),
    num_devices: int = 100,
    scenario_seed: int = 102,
    queue_backlog: float = 5.0,
    v: float = 100.0,
) -> BdmaZResult:
    """Sweep BDMA's z on one paper-scale P2 instance."""
    scenario = paper_scenario(scenario_seed, num_devices)
    network, state = scenario.network, single_state(scenario)
    space = StrategySpace(network, state.coverage())

    result = BdmaZResult()
    for z in z_values:
        objectives = []
        for seed in seeds:
            run = solve_p2_bdma(
                network, state, space, np.random.default_rng(seed),
                queue_backlog=queue_backlog, v=v, budget=scenario.budget, z=z,
            )
            objectives.append(run.objective)
        result.rows.append(
            [z, float(np.mean(objectives)), float(np.std(objectives))]
        )
    return result


# -- Ablation B: value of frequency scaling ----------------------------------


@dataclass
class FreqScalingResult(ExperimentResult):
    """Latency/cost per policy; DPP versus pinned clocks."""

    budget: float = 0.0
    latencies: dict[str, float] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)

    def table(self) -> str:
        rows = [
            [
                name,
                self.latencies[name],
                self.costs[name],
                "yes" if self.costs[name] <= self.budget * 1.05 else "NO",
            ]
            for name in self.latencies
        ]
        return format_table(
            ["policy", "avg latency (s)", "avg cost ($/slot)", "budget met"],
            rows,
            title=(
                "Ablation B -- frequency scaling vs fixed clocks "
                f"(budget {self.budget:.3f} $/slot)"
            ),
        )

    def verify(self) -> None:
        lat, cost, budget = self.latencies, self.costs, self.budget
        assert lat["F^U"] <= lat["DPP"] * 1.02
        assert cost["F^U"] > budget, "full speed should blow the budget"
        assert cost["F^L"] <= budget
        assert cost["DPP"] <= budget * 1.05, "DPP should meet the budget"
        assert lat["F^U"] <= lat["DPP"] <= lat["F^L"]
        assert lat["DPP"] <= lat["mid"] * 1.01, (
            "adaptive scaling should beat the static feasible midpoint"
        )


def run_ablation_freq_scaling(
    *,
    num_devices: int = 30,
    horizon: int = 240,
    v: float = 100.0,
    scenario_seed: int = 303,
) -> FreqScalingResult:
    """Compare DPP against F^L / midpoint / F^U pinned-clock policies."""
    scenario = paper_scenario(scenario_seed, num_devices)
    budget = scenario.budget
    result = FreqScalingResult(budget=budget)

    for name in ("F^L", "mid", "F^U", "DPP"):
        rng = scenario.controller_rng(f"ablation-freq-{name}")
        if name == "DPP":
            warm = estimate_equilibrium_backlog(
                scenario.network,
                list(scenario.fresh_states(24)),
                scenario.controller_rng("ablation-freq-eq"),
                v=v,
                budget=budget,
            )
            controller: repro.OnlineController = repro.make_controller(
                "dpp", scenario, v=v, budget=budget, z=3, rng=rng,
                initial_backlog=warm,
            )
        else:
            fraction = {"F^L": 0.0, "mid": 0.5, "F^U": 1.0}[name]
            controller = repro.make_controller(
                "fixed", scenario, budget=budget, rng=rng, fraction=fraction
            )
        sim = repro.run_simulation(
            controller, scenario.fresh_states(horizon), budget=budget
        )
        result.latencies[name] = sim.time_average_latency()
        result.costs[name] = sim.time_average_cost()
    return result


# -- Ablation D: budget pacing ------------------------------------------------


@dataclass
class BudgetPacingResult(ExperimentResult):
    """Latency/cost per budget schedule at the same average budget."""

    average_budget: float = 0.0
    latencies: dict[str, float] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)

    def table(self) -> str:
        rows = [
            [name, self.latencies[name], self.costs[name]]
            for name in self.latencies
        ]
        return format_table(
            ["schedule", "avg latency (s)", "avg cost ($/slot)"],
            rows,
            title=(
                "Ablation D -- budget pacing vs constant reference "
                f"(average budget {self.average_budget:.4f} $/slot)"
            ),
        )

    def verify(self) -> None:
        baseline = self.latencies["constant"]
        for name, latency in self.latencies.items():
            # Every schedule meets the *average* budget...
            assert self.costs[name] <= self.average_budget * 1.05
            # ...and none moves latency materially: the virtual queue
            # already paces spending, so static schedules are redundant.
            assert abs(latency - baseline) <= 0.02 * baseline


def run_ablation_budget_pacing(
    *,
    strengths: tuple[float, ...] = (1.0, 2.0),
    num_devices: int = 30,
    horizon: int = 240,
    v: float = 100.0,
    scenario_seed: int = 310,
) -> BudgetPacingResult:
    """Compare constant vs demand-weighted budget schedules."""
    scenario = paper_scenario(scenario_seed, num_devices, "diurnal")
    # Tighten the default budget so the constraint binds and pacing has
    # room to matter (or fail to).
    average = 0.85 * scenario.budget
    warm = estimate_equilibrium_backlog(
        scenario.network,
        list(scenario.fresh_states(24)),
        scenario.controller_rng("ablation-pacing-eq"),
        v=v,
        budget=average,
    )
    schedules: dict[str, BudgetSchedule] = {
        "constant": ConstantBudget(average)
    }
    for strength in strengths:
        schedules[f"paced x{strength:g}"] = demand_weighted_budget(
            average, diurnal_profile(), strength=strength
        )

    result = BudgetPacingResult(average_budget=average)
    for name, schedule in schedules.items():
        controller = repro.make_controller(
            "dpp",
            scenario,
            v=v,
            budget=schedule,
            z=2,
            rng=scenario.controller_rng(f"ablation-pacing-{name}"),
            initial_backlog=warm,
        )
        sim = repro.run_simulation(
            controller, scenario.fresh_states(horizon), budget=average
        )
        result.latencies[name] = sim.time_average_latency()
        result.costs[name] = sim.time_average_cost()
    return result


# -- Ablation C: joint vs greedy selection -----------------------------------


@dataclass
class GreedyResult(ExperimentResult):
    """Mean P2-A objective per algorithm and ratio to CGBA."""

    rows: list[list[object]] = field(default_factory=list)

    def table(self) -> str:
        return format_table(
            ["algorithm", "mean P2-A objective (s)", "ratio vs CGBA"],
            self.rows,
            title="Ablation C -- joint equilibrium search vs greedy passes",
        )

    def verify(self) -> None:
        by_name = {row[0]: row[1] for row in self.rows}
        assert by_name["CGBA(0)"] <= by_name["greedy joint"]
        assert by_name["CGBA(0)"] <= by_name["greedy decoupled"]
        assert by_name["greedy joint"] <= by_name["greedy decoupled"] * 1.02


def run_ablation_greedy(
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    num_devices: int = 100,
    scenario_seed_base: int = 400,
) -> GreedyResult:
    """Compare CGBA with one-pass greedy variants across random instances."""
    cgba_vals, joint_vals, decoupled_vals = [], [], []
    for seed in seeds:
        scenario = paper_scenario(scenario_seed_base + seed, num_devices)
        network, state = scenario.network, single_state(scenario)
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        rng = np.random.default_rng(seed)
        order = rng.permutation(network.num_devices)

        cgba = solve_p2a_cgba(network, state, space, frequencies, rng)
        joint = solve_p2a_greedy(
            network, state, space, frequencies, joint=True, order=order
        )
        decoupled = solve_p2a_greedy(
            network, state, space, frequencies, joint=False, order=order
        )
        cgba_vals.append(cgba.total_latency)
        joint_vals.append(optimal_total_latency(network, state, joint, frequencies))
        decoupled_vals.append(
            optimal_total_latency(network, state, decoupled, frequencies)
        )

    result = GreedyResult()
    for name, vals in (
        ("CGBA(0)", cgba_vals),
        ("greedy joint", joint_vals),
        ("greedy decoupled", decoupled_vals),
    ):
        ratio = float(np.mean(np.array(vals) / np.array(cgba_vals)))
        result.rows.append([name, float(np.mean(vals)), ratio])
    return result
