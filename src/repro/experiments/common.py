"""Shared scenario construction and the experiment-result base class."""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass

import repro
from repro.core.state import SlotState
from repro.sim.scenario import Scenario


@functools.lru_cache(maxsize=64)
def paper_scenario(seed: int, num_devices: int, workload: str = "uniform") -> Scenario:
    """The paper's default scenario (K=6, M=2, N=16), cached by arguments."""
    return repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(num_devices=num_devices, workload=workload),
    )


@functools.lru_cache(maxsize=64)
def reduced_scenario(seed: int, num_devices: int) -> Scenario:
    """A reduced topology (K=3, M=2, N=4) where exact search is tractable."""
    return repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(num_devices=num_devices),
        num_base_stations=3,
        num_clusters=2,
        servers_per_cluster=2,
        num_macro_stations=1,
    )


def single_state(scenario: Scenario) -> SlotState:
    """The first slot state of a scenario's reproducible stream."""
    return next(iter(scenario.fresh_states(1)))


@dataclass
class ExperimentResult(abc.ABC):
    """Base class for experiment outcomes.

    Subclasses hold the raw series/rows of one experiment and implement
    the two consumer-facing views: the table the paper plots, and the
    verification of its qualitative claims.
    """

    @abc.abstractmethod
    def table(self) -> str:
        """Render the experiment's headline table."""

    @abc.abstractmethod
    def verify(self) -> None:
        """Assert the paper's qualitative claims hold on this run.

        Raises:
            AssertionError: Describing the first violated claim.
        """
