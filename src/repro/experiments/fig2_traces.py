"""Fig. 2: the non-iid price and workload traces.

The paper motivates its "periodic trend + iid noise" state model with
NYISO hourly prices and an hourly video-views trace.  This experiment
generates our synthetic substitutes and quantifies their structure: the
dominant Fourier period and the lag-24 autocorrelation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.energy.pricing import PeriodicPriceModel, synthetic_nyiso_trend
from repro.experiments.common import ExperimentResult
from repro.types import FloatArray
from repro.workload.traces import synthetic_video_views


def dominant_period(series: FloatArray) -> int:
    """Dominant non-DC period of a series via the FFT."""
    centred = series - series.mean()
    spectrum = np.abs(np.fft.rfft(centred))
    spectrum[0] = 0.0
    k = int(np.argmax(spectrum))
    return int(round(series.size / k))


def autocorrelation(series: FloatArray, lag: int) -> float:
    """Pearson correlation of a series with its *lag*-shifted self."""
    a, b = series[:-lag], series[lag:]
    return float(np.corrcoef(a, b)[0, 1])


@dataclass
class Fig2Result(ExperimentResult):
    """Synthetic traces and their periodicity statistics."""

    prices: FloatArray
    views: FloatArray

    def rows(self) -> list[list[object]]:
        out = []
        for name, series in (("price ($/MWh)", self.prices),
                             ("views (1/h)", self.views)):
            out.append(
                [
                    name,
                    float(series.min()),
                    float(series.mean()),
                    float(series.max()),
                    dominant_period(series),
                    autocorrelation(series, 24),
                ]
            )
        return out

    def table(self) -> str:
        return format_table(
            ["trace", "min", "mean", "max", "dominant period (h)",
             "lag-24 autocorr"],
            self.rows(),
            title="Fig. 2 -- synthetic non-iid traces",
        )

    def verify(self) -> None:
        # The double-peaked price puts its strongest harmonic at 12 h;
        # both traces repeat daily.
        assert dominant_period(self.prices) in (12, 24)
        assert dominant_period(self.views) == 24
        assert autocorrelation(self.prices, 24) > 0.5
        assert autocorrelation(self.views, 24) > 0.5


def run_fig2(*, days: int = 14, seed: int = 0) -> Fig2Result:
    """Generate the Fig. 2 traces.

    Args:
        days: Trace length in days (hourly slots).
        seed: Random seed for the noise components.
    """
    rng = np.random.default_rng(seed)
    prices = PeriodicPriceModel(
        synthetic_nyiso_trend(), noise_std=3.0
    ).generate(24 * days, rng)
    views = synthetic_video_views(days, rng)
    return Fig2Result(prices=prices, views=views)
