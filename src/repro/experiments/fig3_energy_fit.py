"""Fig. 3: the energy-consumption fit and per-server perturbations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.energy.cpu_data import (
    I7_3770K_FREQUENCIES_GHZ,
    I7_3770K_POWER_WATTS,
    fit_quadratic_power_curve,
)
from repro.energy.models import QuadraticEnergyModel, perturbed_quadratic_model
from repro.experiments.common import ExperimentResult


@dataclass
class Fig3Result(ExperimentResult):
    """The fitted quadratic and sampled per-server curves."""

    fit: QuadraticEnergyModel
    samples: list[QuadraticEnergyModel]

    def max_relative_error(self) -> float:
        fitted = self.fit.power_many(I7_3770K_FREQUENCIES_GHZ)
        return float(
            np.max(np.abs(fitted - I7_3770K_POWER_WATTS) / I7_3770K_POWER_WATTS)
        )

    def rows(self) -> list[list[object]]:
        freqs = I7_3770K_FREQUENCIES_GHZ
        fitted = self.fit.power_many(freqs)
        sampled = [m.power_many(freqs) for m in self.samples]
        return [
            [float(f), float(measured), float(est)]
            + [float(s[i]) for s in sampled]
            for i, (f, measured, est) in enumerate(
                zip(freqs, I7_3770K_POWER_WATTS, fitted)
            )
        ]

    def table(self) -> str:
        headers = ["GHz", "measured W", "quadratic fit"] + [
            f"server {chr(ord('A') + i)}" for i in range(len(self.samples))
        ]
        return format_table(
            headers,
            self.rows(),
            title=(
                "Fig. 3 -- i7-3770K power fit: "
                f"g(f) = {self.fit.a:.3f} f^2 + {self.fit.b:.3f} f "
                f"+ {self.fit.c:.3f}; "
                f"max rel. err {100 * self.max_relative_error():.2f}%"
            ),
        )

    def verify(self) -> None:
        assert self.fit.a > 0.0, "fit must be convex"
        assert self.max_relative_error() < 0.03
        for model in self.samples:
            assert model.check_convex(1.8, 3.6)


def run_fig3(*, num_samples: int = 2, seed: int = 7) -> Fig3Result:
    """Fit the power curve and draw per-server perturbed copies."""
    a, b, c = fit_quadratic_power_curve()
    rng = np.random.default_rng(seed)
    return Fig3Result(
        fit=QuadraticEnergyModel(a=a, b=b, c=c),
        samples=[perturbed_quadratic_model(rng) for _ in range(num_samples)],
    )
