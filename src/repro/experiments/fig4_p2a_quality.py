"""Fig. 4: P2-A objective quality -- CGBA(0) against baselines and bounds."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines import (
    p2a_fractional_bound,
    solve_p2a_exact,
    solve_p2a_mcba,
    solve_p2a_ropt,
)
from repro.core import optimal_total_latency, solve_p2a_cgba
from repro.experiments.common import (
    ExperimentResult,
    paper_scenario,
    reduced_scenario,
    single_state,
)
from repro.network.connectivity import StrategySpace


@dataclass
class Fig4Result(ExperimentResult):
    """Seed-averaged P2-A objectives per device count, plus exact optima.

    Attributes:
        device_counts: Swept values of ``I``.
        paper_rows: Per-``I`` rows ``[I, CGBA, MCBA, ROPT, LB, CGBA/LB]``.
        reduced_rows: Per-``I`` rows on the reduced topology:
            ``[I, CGBA, OPT, certified, CGBA/OPT]``.
        seeds_per_size: Number of random instances averaged per ``I``.
    """

    device_counts: tuple[int, ...]
    paper_rows: list[list[object]] = field(default_factory=list)
    reduced_rows: list[list[object]] = field(default_factory=list)
    seeds_per_size: int = 3

    def table(self) -> str:
        table_a = format_table(
            ["I", "CGBA(0)", "MCBA", "ROPT", "certified LB", "CGBA/LB"],
            self.paper_rows,
            title=(
                "Fig. 4 -- P2-A objective (seconds), paper-scale topology "
                f"(mean over {self.seeds_per_size} seeds)"
            ),
        )
        table_b = format_table(
            ["I", "CGBA(0)", "B&B optimum", "certified", "CGBA/OPT"],
            self.reduced_rows,
            title="Fig. 4 (companion) -- exact optima on the reduced topology",
        )
        return table_a + "\n\n" + table_b

    def verify(self) -> None:
        cgba_curve = [row[1] for row in self.paper_rows]
        assert cgba_curve[-1] > cgba_curve[0], "objective should grow with I"
        if len(cgba_curve) > 2:
            corr = float(np.corrcoef(self.device_counts, cgba_curve)[0, 1])
            assert corr > 0.7
        for row in self.paper_rows:
            _, cgba_val, mcba_val, ropt_val, _, ratio = row
            assert cgba_val <= mcba_val * 1.001, "CGBA should beat MCBA"
            assert cgba_val < ropt_val, "CGBA should beat ROPT"
            assert ratio < 1.10, "CGBA should be near-optimal (paper: ~1.02)"
        for row in self.reduced_rows:
            assert row[4] <= 1.10


def run_fig4(
    *,
    device_counts: tuple[int, ...] = (80, 90, 100, 110, 120),
    seeds_per_size: int = 3,
    exact_device_counts: tuple[int, ...] = (8, 10, 12),
    bound_iterations: int = 1_200,
) -> Fig4Result:
    """Sweep P2-A quality across device counts.

    Args:
        device_counts: ``I`` values for the paper-scale comparison.
        seeds_per_size: Random instances averaged per ``I``.
        exact_device_counts: ``I`` values for the exact branch-and-bound
            companion on the reduced topology.
        bound_iterations: Frank-Wolfe iterations for the certified bound.
    """
    result = Fig4Result(
        device_counts=tuple(device_counts), seeds_per_size=seeds_per_size
    )

    for num_devices in device_counts:
        cgba_vals, mcba_vals, ropt_vals, bounds = [], [], [], []
        for rep in range(seeds_per_size):
            scenario = paper_scenario(100 + rep, num_devices)
            network, state = scenario.network, single_state(scenario)
            space = StrategySpace(network, state.coverage())
            frequencies = network.freq_max.copy()
            rng = scenario.controller_rng("fig4")

            cgba = solve_p2a_cgba(network, state, space, frequencies, rng)
            mcba = solve_p2a_mcba(network, state, space, frequencies, rng)
            ropt = float(
                np.mean(
                    [
                        optimal_total_latency(
                            network, state, solve_p2a_ropt(space, rng), frequencies
                        )
                        for _ in range(5)
                    ]
                )
            )
            bound = p2a_fractional_bound(
                network, state, space, frequencies, max_iter=bound_iterations
            )
            cgba_vals.append(cgba.total_latency)
            mcba_vals.append(mcba.total_latency)
            ropt_vals.append(ropt)
            bounds.append(bound.lower_bound)
        result.paper_rows.append(
            [
                num_devices,
                float(np.mean(cgba_vals)),
                float(np.mean(mcba_vals)),
                float(np.mean(ropt_vals)),
                float(np.mean(bounds)),
                float(np.mean(np.array(cgba_vals) / np.array(bounds))),
            ]
        )

    for idx, num_devices in enumerate(exact_device_counts):
        scenario = reduced_scenario(200 + idx, num_devices)
        network, state = scenario.network, single_state(scenario)
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        rng = scenario.controller_rng("fig4-exact")
        cgba = solve_p2a_cgba(network, state, space, frequencies, rng)
        exact = solve_p2a_exact(
            network, state, space, frequencies, incumbent=cgba.assignment
        )
        result.reduced_rows.append(
            [
                num_devices,
                cgba.total_latency,
                exact.objective,
                "yes" if exact.optimal else "no",
                cgba.total_latency / exact.objective,
            ]
        )
    return result
