"""Fig. 5: decision-time comparison of the P2-A algorithms."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.baselines import solve_p2a_exact, solve_p2a_mcba, solve_p2a_ropt
from repro.core import solve_p2a_cgba
from repro.experiments.common import (
    ExperimentResult,
    paper_scenario,
    reduced_scenario,
    single_state,
)
from repro.network.connectivity import StrategySpace


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


@dataclass
class Fig5Result(ExperimentResult):
    """Decision times at paper scale plus the exact-solver comparison.

    Attributes:
        paper_rows: Rows ``[I, t_CGBA, t_MCBA, t_ROPT]`` (seconds).
        exact_rows: Rows ``[I, t_CGBA, t_B&B, nodes, slowdown]`` on the
            reduced topology where branch-and-bound certifies optimality.
    """

    paper_rows: list[list[object]] = field(default_factory=list)
    exact_rows: list[list[object]] = field(default_factory=list)

    def table(self) -> str:
        table_a = format_table(
            ["I", "CGBA (s)", "MCBA (s)", "ROPT (s)"],
            self.paper_rows,
            title="Fig. 5 -- P2-A decision time, paper-scale topology",
        )
        table_b = format_table(
            ["I", "CGBA (s)", "B&B (s)", "B&B nodes", "B&B/CGBA slowdown"],
            self.exact_rows,
            title="Fig. 5 (companion) -- exact solver vs CGBA, reduced topology",
        )
        return table_a + "\n\n" + table_b

    def verify(self) -> None:
        for _, t_cgba, t_mcba, t_ropt in self.paper_rows:
            assert t_ropt < t_cgba
            assert t_ropt < t_mcba
        ropt_times = [row[3] for row in self.paper_rows]
        assert max(ropt_times) < 0.05, "ROPT should be near-instant at all I"
        slowdowns = [row[4] for row in self.exact_rows]
        assert max(slowdowns) > 3.0, "exact search should cost well over CGBA"


def run_fig5(
    *,
    device_counts: tuple[int, ...] = (80, 90, 100, 110, 120),
    exact_device_counts: tuple[int, ...] = (8, 10, 12),
) -> Fig5Result:
    """Time the P2-A algorithms across instance sizes."""
    result = Fig5Result()
    for idx, num_devices in enumerate(device_counts):
        scenario = paper_scenario(100 + idx, num_devices)
        network, state = scenario.network, single_state(scenario)
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        rng = scenario.controller_rng("fig5")
        t_cgba = _timed(
            lambda: solve_p2a_cgba(network, state, space, frequencies, rng)
        )
        t_mcba = _timed(
            lambda: solve_p2a_mcba(network, state, space, frequencies, rng)
        )
        t_ropt = _timed(lambda: solve_p2a_ropt(space, rng))
        result.paper_rows.append([num_devices, t_cgba, t_mcba, t_ropt])

    for idx, num_devices in enumerate(exact_device_counts):
        scenario = reduced_scenario(200 + idx, num_devices)
        network, state = scenario.network, single_state(scenario)
        space = StrategySpace(network, state.coverage())
        frequencies = network.freq_max.copy()
        rng = scenario.controller_rng("fig5-exact")
        started = time.perf_counter()
        solve_p2a_cgba(network, state, space, frequencies, rng)
        t_cgba = time.perf_counter() - started
        started = time.perf_counter()
        exact = solve_p2a_exact(network, state, space, frequencies)
        t_exact = time.perf_counter() - started
        result.exact_rows.append(
            [num_devices, t_cgba, t_exact, exact.nodes,
             t_exact / max(t_cgba, 1e-9)]
        )
    return result
