"""Fig. 6: CGBA(lambda) -- objective quality versus convergence speed."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import format_table
from repro.core import solve_p2a_cgba
from repro.core.cgba import cgba_approximation_ratio
from repro.experiments.common import ExperimentResult, paper_scenario, single_state
from repro.network.connectivity import StrategySpace


@dataclass
class Fig6Result(ExperimentResult):
    """Seed-averaged objective and iteration counts per lambda.

    Attributes:
        rows: ``[lambda, mean objective, mean iterations, Thm.2 bound]``.
        num_devices: The fixed ``I`` (paper: 100).
    """

    rows: list[list[object]] = field(default_factory=list)
    num_devices: int = 100

    def table(self) -> str:
        return format_table(
            ["lambda", "objective (s)", "iterations", "Thm.2 ratio bound"],
            self.rows,
            title=f"Fig. 6 -- CGBA(lambda) at I = {self.num_devices}",
        )

    def verify(self) -> None:
        objectives = [row[1] for row in self.rows]
        iterations = [row[2] for row in self.rows]
        assert iterations[-1] < iterations[0], "slack should cut iterations"
        assert max(objectives) <= 1.25 * min(objectives)
        assert objectives[-1] <= objectives[0] * cgba_approximation_ratio(0.12)


def run_fig6(
    *,
    lambdas: tuple[float, ...] = (0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
    seeds: tuple[int, ...] = (0, 1, 2),
    num_devices: int = 100,
    scenario_seed: int = 102,
) -> Fig6Result:
    """Sweep CGBA's slack parameter on one paper-scale instance."""
    scenario = paper_scenario(scenario_seed, num_devices)
    network, state = scenario.network, single_state(scenario)
    space = StrategySpace(network, state.coverage())
    frequencies = network.freq_max.copy()

    result = Fig6Result(num_devices=num_devices)
    for lam in lambdas:
        objectives, iterations = [], []
        for seed in seeds:
            run = solve_p2a_cgba(
                network, state, space, frequencies,
                np.random.default_rng(seed), slack=lam,
            )
            objectives.append(run.total_latency)
            iterations.append(run.iterations)
        bound = cgba_approximation_ratio(lam) if lam < 0.125 else float("nan")
        result.rows.append(
            [lam, float(np.mean(objectives)), float(np.mean(iterations)), bound]
        )
    return result
