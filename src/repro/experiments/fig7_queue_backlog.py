"""Fig. 7: virtual-queue backlog trajectories under BDMA-based DPP."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult, paper_scenario
from repro.sim.metrics import converged_tail_mean, slope
from repro.sim.results import SimulationResult


@dataclass
class Fig7Result(ExperimentResult):
    """Backlog trajectories for each swept V.

    Attributes:
        results: Full simulation results keyed by V.
        horizon: Simulated slots per run.
        sample_every: Sampling stride of the trajectory table.
    """

    results: dict[float, SimulationResult] = field(default_factory=dict)
    horizon: int = 480
    sample_every: int = 24

    def price_backlog_correlation(self, v: float) -> float:
        """Correlation between price and backlog increments (post-ramp)."""
        result = self.results[v]
        half = self.horizon // 2
        dq = np.diff(result.backlog)[half - 1:]
        return float(np.corrcoef(result.price[half:], dq)[0, 1])

    def table(self) -> str:
        vs = sorted(self.results)
        rows = []
        for t in range(0, self.horizon, self.sample_every):
            rows.append([t] + [float(self.results[v].backlog[t]) for v in vs])
        trajectory = format_table(
            ["slot", *(f"Q(t) V={int(v)}" for v in vs)],
            rows,
            title="Fig. 7 -- queue backlog vs time (sampled)",
        )
        stats = format_table(
            ["V", "early mean", "converged mean", "tail slope",
             "corr(price, dQ)"],
            [
                [
                    int(v),
                    float(self.results[v].backlog[:48].mean()),
                    converged_tail_mean(self.results[v].backlog, fraction=0.25),
                    slope(self.results[v].backlog[self.horizon // 2:]),
                    self.price_backlog_correlation(v),
                ]
                for v in vs
            ],
            title="Fig. 7 -- convergence statistics",
        )
        return trajectory + "\n\n" + stats

    def verify(self) -> None:
        vs = sorted(self.results)
        for v in vs:
            backlog = self.results[v].backlog
            early = float(backlog[:48].mean())
            late = converged_tail_mean(backlog, fraction=0.25)
            assert late > early, "queue should ramp up before converging"
            assert abs(slope(backlog[self.horizon // 2:])) < 0.05 * max(late, 1.0)
            assert self.price_backlog_correlation(v) > 0.3, (
                "backlog increments should track the electricity price"
            )
        tails = [
            converged_tail_mean(self.results[v].backlog, fraction=0.25)
            for v in vs
        ]
        assert all(b > a for a, b in zip(tails, tails[1:])), (
            "larger V should converge to a larger backlog"
        )


def run_fig7(
    *,
    v_values: tuple[float, ...] = (50.0, 100.0),
    num_devices: int = 40,
    horizon: int = 480,
    z: int = 3,
    scenario_seed: int = 300,
) -> Fig7Result:
    """Simulate the queue trajectory for each V from a cold start."""
    result = Fig7Result(horizon=horizon)
    for v in v_values:
        scenario = paper_scenario(scenario_seed, num_devices)
        controller = repro.make_controller(
            "dpp",
            scenario,
            v=v,
            z=z,
            rng=scenario.controller_rng(f"fig7-v{v}"),
        )
        result.results[v] = repro.run_simulation(
            controller, scenario.fresh_states(horizon), budget=scenario.budget
        )
    return result
