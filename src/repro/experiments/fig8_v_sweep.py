"""Fig. 8: converged backlog and time-average latency versus V."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.equilibrium import estimate_equilibrium_backlog
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult, paper_scenario
from repro.sim.metrics import converged_tail_mean


@dataclass
class Fig8Result(ExperimentResult):
    """Warm- and cold-started statistics per V.

    Attributes:
        warm: Per-V ``(converged backlog, latency, cost)`` from runs
            warm-started at the estimated equilibrium backlog.
        cold: The same triple from the paper's cold-start protocol.
    """

    warm: dict[float, tuple[float, float, float]] = field(default_factory=dict)
    cold: dict[float, tuple[float, float, float]] = field(default_factory=dict)

    def table(self) -> str:
        vs = sorted(self.warm)
        rows = [
            [
                int(v),
                self.warm[v][0],
                self.warm[v][0] / v,
                self.warm[v][1],
                self.cold[v][1],
                self.cold[v][2],
            ]
            for v in vs
        ]
        return format_table(
            ["V", "converged backlog", "backlog / V", "latency (warm)",
             "latency (cold)", "cost (cold)"],
            rows,
            title="Fig. 8 -- queue backlog and latency vs V",
        )

    def verify(self) -> None:
        vs = sorted(self.warm)
        backlogs = np.array([self.warm[v][0] for v in vs])
        cold_latency = np.array([self.cold[v][1] for v in vs])
        assert np.all(np.diff(backlogs) > 0.0), "backlog should grow with V"
        assert float(np.corrcoef(vs, backlogs)[0, 1]) > 0.99, (
            "converged backlog should be ~linear in V"
        )
        assert np.all(np.diff(cold_latency) <= 0.02 * cold_latency[:-1]), (
            "cold-start latency should be non-increasing in V"
        )
        assert cold_latency[-1] < cold_latency[0]


def run_fig8(
    *,
    v_values: tuple[float, ...] = (10.0, 50.0, 100.0, 150.0, 200.0, 500.0),
    num_devices: int = 30,
    horizon: int = 240,
    z: int = 3,
    scenario_seed: int = 301,
) -> Fig8Result:
    """Sweep V under both the warm- and cold-start protocols.

    Warm runs start at the steady-state backlog from
    :func:`repro.analysis.estimate_equilibrium_backlog` (valid for any
    ``Q(1)`` by Theorem 4) and measure the converged level; cold runs
    replicate the paper's protocol, whose latency-vs-V curve includes the
    cheap under-converged ramp at large V.
    """
    result = Fig8Result()
    for v in v_values:
        scenario = paper_scenario(scenario_seed, num_devices)
        warm_backlog = estimate_equilibrium_backlog(
            scenario.network,
            list(scenario.fresh_states(24)),
            scenario.controller_rng(f"fig8-eq{v}"),
            v=v,
            budget=scenario.budget,
        )
        for label, initial in (("warm", warm_backlog), ("cold", 0.0)):
            controller = repro.make_controller(
                "dpp",
                scenario,
                v=v,
                z=z,
                rng=scenario.controller_rng(f"fig8-{label}-v{v}"),
                initial_backlog=initial,
            )
            sim = repro.run_simulation(
                controller, scenario.fresh_states(horizon),
                budget=scenario.budget,
            )
            triple = (
                converged_tail_mean(sim.backlog, fraction=0.5),
                sim.time_average_latency(),
                sim.time_average_cost(),
            )
            if label == "warm":
                result.warm[v] = triple
            else:
                result.cold[v] = triple
    return result
