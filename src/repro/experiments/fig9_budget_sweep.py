"""Fig. 9: time-average latency and cost versus the energy budget."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.equilibrium import estimate_equilibrium_backlog
from repro.analysis.tables import format_table
from repro.config import PRICE_SCALE
from repro.energy.cost import suggest_budget
from repro.experiments.common import ExperimentResult, paper_scenario
from repro.sim.metrics import window_averages

#: The three DPP variants the paper compares, mapped onto the facade's
#: controller names (:data:`repro.api.CONTROLLER_NAMES`).
SOLVER_NAMES = ("BDMA-DPP", "MCBA-DPP", "ROPT-DPP")
_API_NAMES = {"BDMA-DPP": "dpp", "MCBA-DPP": "mcba", "ROPT-DPP": "ropt"}


@dataclass
class Fig9Result(ExperimentResult):
    """Per-(variant, budget) outcomes.

    Attributes:
        budgets: Budget per swept fraction.
        latencies: ``latencies[name][fraction]`` -- mean of 48-slot
            window averages, the statistic the paper plots.
        costs: Realised time-average cost per (name, fraction).
    """

    fractions: tuple[float, ...] = ()
    budgets: dict[float, float] = field(default_factory=dict)
    latencies: dict[str, dict[float, float]] = field(default_factory=dict)
    costs: dict[str, dict[float, float]] = field(default_factory=dict)

    def table(self) -> str:
        rows = []
        for fraction in self.fractions:
            rows.append(
                [
                    fraction,
                    self.budgets[fraction],
                    *(self.latencies[name][fraction] for name in SOLVER_NAMES),
                    self.costs["BDMA-DPP"][fraction],
                ]
            )
        return format_table(
            ["budget frac", "budget ($/slot)",
             *(f"{name} latency" for name in SOLVER_NAMES),
             "BDMA avg cost"],
            rows,
            title="Fig. 9 -- latency vs energy-cost budget (48-slot averages)",
        )

    def verify(self) -> None:
        for fraction in self.fractions:
            bdma = self.latencies["BDMA-DPP"][fraction]
            mcba = self.latencies["MCBA-DPP"][fraction]
            ropt = self.latencies["ROPT-DPP"][fraction]
            assert bdma <= mcba * 1.02, "BDMA-DPP should match/beat MCBA-DPP"
            assert bdma < ropt, "BDMA-DPP should beat ROPT-DPP"
            assert self.costs["BDMA-DPP"][fraction] <= (
                self.budgets[fraction] * 1.10
            ), "realised cost should respect the budget"
        curve = [self.latencies["BDMA-DPP"][f] for f in self.fractions]
        assert curve[-1] < curve[0], "latency should fall as budget loosens"


def run_fig9(
    *,
    fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
    num_devices: int = 30,
    horizon: int = 240,
    v: float = 100.0,
    mcba_iterations: int = 1_500,
    scenario_seed: int = 302,
) -> Fig9Result:
    """Sweep the budget for the three DPP variants."""
    scenario = paper_scenario(scenario_seed, num_devices)
    result = Fig9Result(fractions=tuple(fractions))
    for name in SOLVER_NAMES:
        result.latencies[name] = {}
        result.costs[name] = {}

    for fraction in fractions:
        budget = PRICE_SCALE * suggest_budget(
            scenario.network.energy_models(),
            scenario.network.freq_min,
            scenario.network.freq_max,
            scenario.generator.prices,
            fraction=fraction,
        )
        result.budgets[fraction] = budget
        warm = estimate_equilibrium_backlog(
            scenario.network,
            list(scenario.fresh_states(24)),
            scenario.controller_rng(f"fig9-eq-{fraction}"),
            v=v,
            budget=budget,
        )
        for name in SOLVER_NAMES:
            extras = {"iterations": mcba_iterations} if name == "MCBA-DPP" else {}
            controller = repro.make_controller(
                _API_NAMES[name],
                scenario,
                v=v,
                budget=budget,
                rng=scenario.controller_rng(f"fig9-{name}-{fraction}"),
                initial_backlog=warm,
                **extras,
            )
            sim = repro.run_simulation(
                controller, scenario.fresh_states(horizon), budget=budget
            )
            result.latencies[name][fraction] = float(
                np.mean(window_averages(sim.latency, 48))
            )
            result.costs[name][fraction] = sim.time_average_cost()
    return result
