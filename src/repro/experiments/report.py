"""Consolidated experiment report generation.

:func:`generate_report` runs a chosen set of the paper's experiments and
renders one markdown document with every table and the verification
verdicts -- the programmatic counterpart of EXPERIMENTS.md.  Exposed on
the command line as ``python -m repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable

import repro
from repro.exceptions import ConfigurationError

#: Experiments cheap enough for the default report (< ~1 min together).
QUICK_SET = ("fig2", "fig3", "fig6", "ablation-z", "ablation-greedy")


def generate_report(
    names: Iterable[str] | None = None,
    *,
    path: str | Path | None = None,
    verify: bool = True,
    runners: dict[str, Callable] | None = None,
) -> str:
    """Run experiments and render a markdown report.

    Args:
        names: Experiment ids to include; the quick subset when omitted
            (pass ``RUNNERS.keys()`` for everything -- several minutes).
        path: Optional file to write the report to.
        verify: Run each result's ``verify()`` and record the verdict
            (verification failures are reported, not raised).
        runners: Override the runner registry (tests inject stubs).

    Returns:
        The report as one markdown string.

    Raises:
        ConfigurationError: On an unknown experiment id.
    """
    if runners is not None:
        registry = runners
    else:
        # Imported lazily: this module is re-exported by the package
        # __init__, which also owns the registry.
        from repro.experiments import RUNNERS

        registry = RUNNERS
    selected = list(names) if names is not None else list(QUICK_SET)
    unknown = [n for n in selected if n not in registry]
    if unknown:
        raise ConfigurationError(f"unknown experiment ids: {unknown}")

    lines: list[str] = [
        "# Experiment report",
        "",
        f"repro {repro.__version__} — "
        f"{len(selected)} experiment(s): {', '.join(selected)}",
        "",
    ]
    for name in selected:
        started = time.perf_counter()
        result = registry[name]()
        elapsed = time.perf_counter() - started
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(result.table())
        lines.append("```")
        if verify:
            try:
                result.verify()
            except AssertionError as exc:
                verdict = f"**FAILED**: {exc}"
            else:
                verdict = "all qualitative claims hold"
            lines.append(f"- verification: {verdict}")
        lines.append(f"- wall time: {elapsed:.1f} s")
        lines.append("")

    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text)
    return text
