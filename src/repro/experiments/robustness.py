"""Robustness experiments: DPP under injected substrate faults.

Not figures from the paper -- the paper assumes an always-healthy
substrate -- but the natural stress tests for an online controller:

* :func:`run_fault_sweep` sweeps the stationary *server* unavailability
  (Markov outage model) and measures how gracefully latency degrades
  while the energy budget is still respected.  The controller has no
  explicit failover logic; the strategy-space filtering plus the
  carried-assignment repair do all the work.
* :func:`run_chaos_sweep` extends the bench to *link and price-feed*
  faults: a composed :class:`~repro.sim.faults.FaultPlan` degrades
  fronthaul links, freezes the price feed (the controller acts on stale
  prices), and takes base stations down, at increasing severity, with
  the degraded-mode :class:`~repro.core.resilience.ResiliencePolicy`
  active -- every slot must still produce a feasible decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.core.resilience import ResiliencePolicy
from repro.experiments.common import ExperimentResult
from repro.obs import (
    BudgetDriftMonitor,
    FeasibilityMonitor,
    MonitorSuite,
    Probe,
    ResilienceMonitor,
)
from repro.sim.faults import (
    BaseStationOutages,
    FaultPlan,
    FronthaulDegradation,
    MarkovOutages,
    PriceFeedDropouts,
)


@dataclass
class FaultSweepResult(ExperimentResult):
    """Latency/cost per outage intensity.

    Attributes:
        rows: ``[unavailability, measured downtime, latency, cost,
            alerts]`` -- the last column counts health-monitor alerts
            (budget drift + feasibility) raised during the run.
        budget: The (intensity-independent) budget.
    """

    rows: list[list[object]] = field(default_factory=list)
    budget: float = 0.0

    def table(self) -> str:
        return format_table(
            [
                "target unavail.",
                "measured unavail.",
                "avg latency (s)",
                "avg cost ($/slot)",
                "alerts",
            ],
            self.rows,
            title=(
                "Robustness -- BDMA-DPP under server outages "
                f"(budget {self.budget:.4f} $/slot)"
            ),
        )

    def verify(self) -> None:
        latencies = [row[2] for row in self.rows]
        costs = [row[3] for row in self.rows]
        baseline = latencies[0]
        # Latency degrades with outage intensity but stays finite and
        # within a small multiple of the healthy baseline at 20% downtime.
        assert all(np.isfinite(v) for v in latencies)
        assert latencies[-1] >= baseline * 0.99
        assert latencies[-1] <= 3.0 * baseline
        # Offline servers draw no power, so cost never rises with outages.
        assert all(c <= self.budget * 1.2 for c in costs)


def run_fault_sweep(
    *,
    unavailabilities: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    mttr_slots: float = 4.0,
    num_devices: int = 20,
    horizon: int = 120,
    v: float = 100.0,
    scenario_seed: int = 320,
) -> FaultSweepResult:
    """Sweep the stationary server unavailability.

    For a target unavailability ``u`` with repair time ``mttr``, the
    matching failure time is ``mtbf = mttr (1 - u) / u``.
    """
    result = FaultSweepResult()
    for u in unavailabilities:
        faults = None
        if u > 0.0:
            mtbf = mttr_slots * (1.0 - u) / u
            faults = MarkovOutages(
                mtbf_slots=mtbf, mttr_slots=mttr_slots, min_up_fraction=0.25
            )
        scenario = repro.make_paper_scenario(
            seed=scenario_seed,
            config=repro.ScenarioConfig(num_devices=num_devices),
            faults=faults,
        )
        result.budget = scenario.budget
        # Health monitors watch every sweep point.  Feasibility must
        # hold everywhere; budget alerts surface the DPP transient at
        # this horizon and shrink with outages (offline servers draw no
        # power), so the column doubles as a fault-tolerance signal.
        probe = Probe()
        suite = MonitorSuite(
            [BudgetDriftMonitor(scenario.budget), FeasibilityMonitor()]
        ).attach(probe)
        controller = repro.make_controller(
            "dpp",
            scenario,
            v=v,
            z=2,
            rng=scenario.controller_rng(f"faults-{u}"),
            tracer=probe,
        )
        states = list(scenario.fresh_states(horizon))
        sim = repro.run_simulation(
            controller, iter(states), budget=scenario.budget, tracer=probe
        )
        report = suite.finish()
        if u > 0.0:
            masks = np.array([s.available_servers for s in states])
            measured = float(1.0 - masks.mean())
        else:
            measured = 0.0
        result.rows.append(
            [
                u,
                measured,
                sim.time_average_latency(),
                sim.time_average_cost(),
                len(report.alerts),
            ]
        )
    return result


@dataclass
class ChaosSweepResult(ExperimentResult):
    """Latency/cost per chaos severity under link + price-feed faults.

    Attributes:
        rows: ``[severity, fault events, stale-price slots, latency,
            cost, alerts]``.
        budget: The (severity-independent) budget.
        horizons: Decided slots per severity (must equal the requested
            horizon: the degraded controller never skips a slot).
        horizon: The requested horizon.
    """

    rows: list[list[object]] = field(default_factory=list)
    budget: float = 0.0
    horizons: list[int] = field(default_factory=list)
    horizon: int = 0

    def table(self) -> str:
        return format_table(
            [
                "severity",
                "fault events",
                "stale-price slots",
                "avg latency (s)",
                "avg cost ($/slot)",
                "alerts",
            ],
            self.rows,
            title=(
                "Robustness -- BDMA-DPP under link + price-feed chaos "
                f"(budget {self.budget:.4f} $/slot)"
            ),
        )

    def verify(self) -> None:
        latencies = [row[3] for row in self.rows]
        baseline = latencies[0]
        # Every severity level decided every slot -- the resilience
        # layer's core promise -- and faults were actually injected.
        assert all(h == self.horizon for h in self.horizons)
        assert all(np.isfinite(v) for v in latencies)
        assert any(row[1] > 0 for row in self.rows[1:])
        # Degradation stays graceful: a bounded multiple of healthy.
        assert latencies[-1] <= 5.0 * baseline


#: Chaos severities: ``(fronthaul mtbf, fronthaul factor, price mtbf,
#: bs mtbf)`` -- smaller mtbf = more faults.
_CHAOS_LEVELS: dict[str, tuple[float, float, float, float] | None] = {
    "off": None,
    "mild": (60.0, 0.5, 50.0, 200.0),
    "severe": (20.0, 0.25, 15.0, 60.0),
}


def run_chaos_sweep(
    *,
    num_devices: int = 20,
    horizon: int = 120,
    v: float = 100.0,
    scenario_seed: int = 321,
) -> ChaosSweepResult:
    """Sweep composed link + price-feed fault severity under the
    degraded-mode policy."""
    result = ChaosSweepResult(horizon=horizon)
    for label, level in _CHAOS_LEVELS.items():
        plan = None
        if level is not None:
            fh_mtbf, fh_factor, price_mtbf, bs_mtbf = level
            plan = FaultPlan(
                faults=(
                    FronthaulDegradation(
                        mtbf_slots=fh_mtbf, mttr_slots=6.0, factor=fh_factor
                    ),
                    PriceFeedDropouts(mtbf_slots=price_mtbf, mttr_slots=4.0),
                    BaseStationOutages(mtbf_slots=bs_mtbf, mttr_slots=3.0),
                )
            )
        scenario = repro.make_paper_scenario(
            seed=scenario_seed,
            config=repro.ScenarioConfig(num_devices=num_devices),
            fault_plan=plan,
        )
        result.budget = scenario.budget
        probe = Probe()
        suite = MonitorSuite(
            [
                BudgetDriftMonitor(scenario.budget),
                FeasibilityMonitor(),
                ResilienceMonitor(),
            ]
        ).attach(probe)
        fault_events = {"n": 0, "stale": 0}

        class _FaultCounter:
            def emit(self, event: dict) -> None:
                if event["kind"] != "event" or event["name"] != "fault":
                    return
                fault_events["n"] += 1
                data = event["data"]
                if data.get("fault") == "price_feed" and data.get("phase") == "clear":
                    fault_events["stale"] += int(data.get("stale_slots", 0))

            def close(self) -> None:
                pass

        probe.add_sink(_FaultCounter())
        controller = repro.DPPController(
            scenario.network,
            scenario.controller_rng(f"chaos-{label}"),
            v=v,
            budget=scenario.budget,
            z=2,
            resilience=ResiliencePolicy(),
            tracer=probe,
        )
        sim = repro.run_simulation(
            controller,
            scenario.fresh_compiled_states(horizon, tracer=probe),
            budget=scenario.budget,
            tracer=probe,
        )
        report = suite.finish()
        result.horizons.append(sim.horizon)
        result.rows.append(
            [
                label,
                fault_events["n"],
                fault_events["stale"],
                sim.time_average_latency(),
                sim.time_average_cost(),
                len(report.alerts),
            ]
        )
    return result
