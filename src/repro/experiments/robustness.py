"""Robustness experiment: DPP under server outages.

Not a figure from the paper -- the paper assumes always-up servers --
but the natural stress test for an online controller: sweep the outage
intensity (stationary unavailability of the Markov fault model) and
measure how gracefully latency degrades while the energy budget is
still respected.  The controller has no explicit failover logic; the
strategy-space filtering plus the carried-assignment repair are doing
all the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.experiments.common import ExperimentResult
from repro.obs import BudgetDriftMonitor, FeasibilityMonitor, MonitorSuite, Probe
from repro.sim.faults import MarkovOutages


@dataclass
class FaultSweepResult(ExperimentResult):
    """Latency/cost per outage intensity.

    Attributes:
        rows: ``[unavailability, measured downtime, latency, cost,
            alerts]`` -- the last column counts health-monitor alerts
            (budget drift + feasibility) raised during the run.
        budget: The (intensity-independent) budget.
    """

    rows: list[list[object]] = field(default_factory=list)
    budget: float = 0.0

    def table(self) -> str:
        return format_table(
            [
                "target unavail.",
                "measured unavail.",
                "avg latency (s)",
                "avg cost ($/slot)",
                "alerts",
            ],
            self.rows,
            title=(
                "Robustness -- BDMA-DPP under server outages "
                f"(budget {self.budget:.4f} $/slot)"
            ),
        )

    def verify(self) -> None:
        latencies = [row[2] for row in self.rows]
        costs = [row[3] for row in self.rows]
        baseline = latencies[0]
        # Latency degrades with outage intensity but stays finite and
        # within a small multiple of the healthy baseline at 20% downtime.
        assert all(np.isfinite(v) for v in latencies)
        assert latencies[-1] >= baseline * 0.99
        assert latencies[-1] <= 3.0 * baseline
        # Offline servers draw no power, so cost never rises with outages.
        assert all(c <= self.budget * 1.2 for c in costs)


def run_fault_sweep(
    *,
    unavailabilities: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    mttr_slots: float = 4.0,
    num_devices: int = 20,
    horizon: int = 120,
    v: float = 100.0,
    scenario_seed: int = 320,
) -> FaultSweepResult:
    """Sweep the stationary server unavailability.

    For a target unavailability ``u`` with repair time ``mttr``, the
    matching failure time is ``mtbf = mttr (1 - u) / u``.
    """
    result = FaultSweepResult()
    for u in unavailabilities:
        faults = None
        if u > 0.0:
            mtbf = mttr_slots * (1.0 - u) / u
            faults = MarkovOutages(
                mtbf_slots=mtbf, mttr_slots=mttr_slots, min_up_fraction=0.25
            )
        scenario = repro.make_paper_scenario(
            seed=scenario_seed,
            config=repro.ScenarioConfig(num_devices=num_devices),
            faults=faults,
        )
        result.budget = scenario.budget
        # Health monitors watch every sweep point.  Feasibility must
        # hold everywhere; budget alerts surface the DPP transient at
        # this horizon and shrink with outages (offline servers draw no
        # power), so the column doubles as a fault-tolerance signal.
        probe = Probe()
        suite = MonitorSuite(
            [BudgetDriftMonitor(scenario.budget), FeasibilityMonitor()]
        ).attach(probe)
        controller = repro.make_controller(
            "dpp",
            scenario,
            v=v,
            z=2,
            rng=scenario.controller_rng(f"faults-{u}"),
            tracer=probe,
        )
        states = list(scenario.fresh_states(horizon))
        sim = repro.run_simulation(
            controller, iter(states), budget=scenario.budget, tracer=probe
        )
        report = suite.finish()
        if u > 0.0:
            masks = np.array([s.available_servers for s in states])
            measured = float(1.0 - masks.mean())
        else:
            measured = 0.0
        result.rows.append(
            [
                u,
                measured,
                sim.time_average_latency(),
                sim.time_average_cost(),
                len(report.alerts),
            ]
        )
    return result
