"""Serialisation of simulation results.

Two formats:

* ``.npz`` -- full per-slot trajectories (lossless, compact), via
  :func:`save_result` / :func:`load_result`.
* ``.json`` -- the human-readable summary, via :func:`summary_to_json`.
* ``.jsonl`` -- one line per retained slot record, via
  :func:`records_to_jsonl` (same per-record schema as the trace sink).

Assignments/allocations inside ``records`` are intentionally not
serialised by :func:`save_result`: they are bulky, and every derived
statistic the experiments need lives in the trajectory arrays.  Use
:func:`records_to_jsonl` with ``include_arrays=True`` when the raw
decisions matter.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.sim.results import SimulationResult, SimulationSummary

#: Format tag written into every archive; bump on breaking layout changes.
_FORMAT_VERSION = 1

_ARRAY_FIELDS = ("latency", "cost", "theta", "backlog", "solve_seconds", "price")


def save_result(result: SimulationResult, path: str | Path) -> Path:
    """Write a :class:`SimulationResult`'s trajectories to ``path`` (.npz).

    Returns:
        The path written (with the ``.npz`` suffix ensured).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {name: getattr(result, name) for name in _ARRAY_FIELDS}
    payload["format_version"] = np.array(_FORMAT_VERSION)
    payload["budget"] = np.array(
        np.nan if result.budget is None else result.budget
    )
    np.savez_compressed(path, **payload)
    return path


def load_result(path: str | Path) -> SimulationResult:
    """Read a :class:`SimulationResult` written by :func:`save_result`.

    Raises:
        ValidationError: If the file misses fields or has an unsupported
            format version.
    """
    with np.load(Path(path)) as archive:
        version = int(archive.get("format_version", -1))
        if version != _FORMAT_VERSION:
            raise ValidationError(
                f"unsupported result format version {version} in {path}"
            )
        missing = [n for n in _ARRAY_FIELDS if n not in archive]
        if missing:
            raise ValidationError(f"{path} is missing fields: {missing}")
        budget = float(archive["budget"])
        return SimulationResult(
            latency=archive["latency"],
            cost=archive["cost"],
            theta=archive["theta"],
            backlog=archive["backlog"],
            solve_seconds=archive["solve_seconds"],
            price=archive["price"],
            budget=None if np.isnan(budget) else budget,
        )


def summary_to_dict(summary: SimulationSummary) -> dict:
    """A JSON-ready dict of a summary.

    Thin wrapper kept for compatibility; delegates to the summary's own
    ``to_dict`` (which :class:`~repro.sim.replication.ReplicationSummary`
    shares field names with).
    """
    return summary.to_dict()


def records_to_jsonl(
    result: SimulationResult,
    path: str | Path,
    *,
    include_arrays: bool = False,
) -> Path:
    """Write a result's retained slot records as JSON Lines.

    One line per :class:`~repro.core.controller.SlotRecord`, using the
    same :meth:`~repro.core.controller.SlotRecord.to_dict` schema the
    observability trace sink emits for ``slot`` events -- so offline
    (``keep_records=True``) and streamed (``--trace``) data line up.

    Raises:
        ValidationError: If the result retained no records (run with
            ``keep_records=True``).
    """
    if not result.records:
        raise ValidationError(
            "result has no records; simulate with keep_records=True"
        )
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in result.records:
            handle.write(
                json.dumps(record.to_dict(include_arrays=include_arrays)) + "\n"
            )
    return path


def summary_to_json(summary: SimulationSummary, path: str | Path | None = None) -> str:
    """Serialise a summary to JSON, optionally writing it to *path*."""
    text = json.dumps(summary_to_dict(summary), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
