"""Array-kernel backends for the slot pipeline's hot loops.

``backend="numpy"`` is the reference implementation (and bit-exactness
oracle); ``backend="jit"`` resolves, in order, to numba ``@njit``
kernels, ctypes-loaded C kernels compiled at first use, and finally the
NumPy kernels again (with a warning) when neither provider is
available.  Every backend is bit-identical to the oracle by contract --
selecting ``jit`` changes wall-clock, never results.

Select a backend with ``api.run(engine_backend="jit")``, the CLI's
``--backend jit``, or by passing ``kernels=get_kernels("jit")`` to
:class:`~repro.core.congestion_game.OffloadingCongestionGame` directly.
"""

from __future__ import annotations

import importlib.util
import warnings

from repro.exceptions import ConfigurationError
from repro.kernels.interface import DecomposedState, KernelBackend
from repro.kernels.numpy_backend import make_numpy_backend
from repro.kernels.shm import SharedStateBlock

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "DecomposedState",
    "KernelBackend",
    "SharedStateBlock",
    "available_backends",
    "get_kernels",
    "jit_provider",
]

DEFAULT_BACKEND = "numpy"
BACKEND_NAMES = ("numpy", "jit")

_cache: dict[str, KernelBackend] = {}


def jit_provider() -> str | None:
    """Which provider ``backend="jit"`` would use, without building it.

    ``"numba"`` when numba is importable, else ``"cc"`` when a C
    compiler is on PATH, else ``None`` (jit falls back to NumPy).
    """
    if importlib.util.find_spec("numba") is not None:
        return "numba"
    from repro.kernels import native

    if native.find_compiler() is not None:
        return "cc"
    return None


def available_backends() -> dict[str, bool]:
    """Availability map surfaced in run manifests and skip marks.

    ``jit`` is reported available when either provider could back it;
    the NumPy fallback does not count (it would be a silent no-op).
    """
    return {"numpy": True, "jit": jit_provider() is not None}


def _resolve_jit() -> KernelBackend:
    if importlib.util.find_spec("numba") is not None:
        try:
            from repro.kernels.jit_backend import make_numba_backend

            return make_numba_backend()
        except Exception as exc:  # broken numba install: fall through
            warnings.warn(
                f"numba present but unusable ({exc}); trying the C provider",
                RuntimeWarning,
                stacklevel=3,
            )
    from repro.kernels import native

    try:
        return native.make_cc_backend()
    except native.KernelBuildError as exc:
        warnings.warn(
            f"backend 'jit' unavailable ({exc}); falling back to NumPy kernels",
            RuntimeWarning,
            stacklevel=3,
        )
        numpy_kernels = get_kernels("numpy")
        return KernelBackend(
            name="jit",
            provider="numpy",
            candidate_costs=numpy_kernels.candidate_costs,
            segment_first_min=numpy_kernels.segment_first_min,
            gap_sweep=numpy_kernels.gap_sweep,
            run_dynamics=None,
            golden_quad=None,
        )


def get_kernels(backend: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve *backend* to a :class:`KernelBackend` (cached per process).

    Args:
        backend: ``"numpy"``, ``"jit"``, an already-resolved backend
            (returned as is), or ``None`` for the default.

    Raises:
        ConfigurationError: On an unknown backend name.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, KernelBackend):
        return backend
    if backend not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; expected one of {BACKEND_NAMES}"
        )
    if backend not in _cache:
        if backend == "numpy":
            _cache[backend] = make_numpy_backend()
        else:
            _cache[backend] = _resolve_jit()
    return _cache[backend]
