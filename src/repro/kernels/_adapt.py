"""Shared glue adapting raw flat-argument kernels to the backend API.

The numba and C providers expose the same low-level entry points (flat
positional argument lists over contiguous arrays); this module wraps
them into :class:`~repro.kernels.interface.KernelBackend` callables,
allocating the small per-call scratch buffers and delegating the flat
candidate path to the NumPy oracle (it is already one fused gather and
off the decomposed hot path).

Per-state argument caching: the C provider passes raw data pointers
(``convert`` turns an array into a ``ctypes.c_void_p``), and converting
~30 arrays per kernel call dominates the adapter once the kernels
themselves are fast.  Kernels mutate arrays strictly in place, so a
conversion stays valid for as long as the state field references the
same array object; the cache is keyed by identity and any re-bound
field (profile reset, new game) reconverts transparently.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.interface import DecomposedState, KernelBackend
from repro.kernels.numpy_backend import candidate_costs, segment_first_min

__all__ = ["wrap_raw_backend"]

#: DecomposedState fields handed to the raw kernels, in no particular
#: order; the int64-typed ones are listed separately for validation.
_I64_FIELDS = frozenset(
    (
        "cur_idx", "menu_of_bs", "menu_offsets", "menu_servers",
        "nidx", "kbest", "bs_of", "server_of",
    )
)
_STATE_FIELDS = (
    "loads", "p", "w", "sub", "wcur", "cur_idx", "menu_of_bs",
    "menu_offsets", "menu_servers", "nidx", "kbest", "p_access",
    "p_front", "p_compute", "m_access", "m_front", "m_compute",
    "bs_of", "server_of", "pa_cur", "pc_cur", "sq_access",
    "sq_front", "sq_compute", "cc",
)


def _validate(arr: np.ndarray, field: str) -> None:
    if not arr.flags.c_contiguous:
        raise ValueError(f"kernel state field {field!r} is not C-contiguous")
    expected = np.int64 if field in _I64_FIELDS else np.float64
    if arr.dtype != expected:
        raise ValueError(
            f"kernel state field {field!r} has dtype {arr.dtype}, "
            f"expected {np.dtype(expected)}"
        )


class _StateCache:
    """Converted kernel arguments for one :class:`DecomposedState`.

    Holds identity-checked ``(array, converted)`` pairs per field plus
    the reusable scratch buffers (one adj row, one t row, per-menu best
    values) whose shapes are fixed for the life of the state.
    """

    __slots__ = ("convert", "table", "adj", "t", "bvals", "num_groups")

    def __init__(self, state: DecomposedState, convert) -> None:
        self.convert = convert
        self.table: dict = {}
        self.num_groups = len(state.cols)
        self.adj = np.empty(2 * state.num_bs + state.num_servers)
        self.t = np.empty(state.num_bs)
        # The trailing bvals slot stays +inf -- base stations with an
        # empty server menu map to it, so their totals never win the
        # argmin (mirrors the NumPy evaluator's sentinel column).
        self.bvals = np.empty(self.num_groups + 1)
        self.bvals[-1] = np.inf

    def field(self, state: DecomposedState, name: str):
        arr = getattr(state, name)
        entry = self.table.get(name)
        if entry is not None and entry[0] is arr:
            return entry[1]
        _validate(arr, name)
        converted = self.convert(arr)
        self.table[name] = (arr, converted)
        return converted

    def scratch(self):
        """Converted scratch pointers (kernels overwrite the contents,
        never the sentinel slot past ``num_groups``)."""
        convert = self.convert
        entry = self.table.get("__scratch__")
        if entry is None:
            entry = (convert(self.adj), convert(self.t), convert(self.bvals))
            self.table["__scratch__"] = entry
        return entry


def _identity(arr: np.ndarray) -> np.ndarray:
    return arr


def wrap_raw_backend(
    name: str,
    provider: str,
    raw_gap_sweep,
    raw_run_dynamics,
    raw_golden_quad,
    *,
    convert=None,
) -> KernelBackend:
    """Build a :class:`KernelBackend` from raw flat-argument kernels.

    Args:
        convert: Per-array argument conversion (e.g. array -> raw data
            pointer for the ctypes provider).  ``None`` passes arrays
            through untouched (the numba provider).
    """
    convert = convert or _identity

    def _cache(state: DecomposedState) -> _StateCache:
        cache = getattr(state, "_kernel_arg_cache", None)
        if cache is None or cache.convert is not convert:
            cache = _StateCache(state, convert)
            state._kernel_arg_cache = cache
        return cache

    def gap_sweep(state: DecomposedState):
        cache = _cache(state)
        f = cache.field
        adj, t, bvals = cache.scratch()
        best = np.empty(state.num_players)
        raw_gap_sweep(
            state.num_players, state.num_bs, state.num_servers,
            cache.num_groups,
            f(state, "loads"), f(state, "p"), f(state, "w"),
            f(state, "sub"), f(state, "wcur"), f(state, "cur_idx"),
            f(state, "menu_of_bs"), f(state, "menu_offsets"),
            f(state, "menu_servers"),
            f(state, "nidx"), f(state, "kbest"),
            convert(best), f(state, "cc"),
            adj, t, bvals,
        )
        return best, state.cc

    def run_dynamics(state: DecomposedState, gaps, slack, max_iter):
        cache = _cache(state)
        f = cache.field
        adj, t, bvals = cache.scratch()
        if not gaps.flags.c_contiguous:
            raise ValueError("gaps must be C-contiguous")
        converged = np.zeros(1, dtype=np.int64)
        moves = raw_run_dynamics(
            state.num_players, state.num_bs, state.num_servers,
            cache.num_groups,
            float(slack), int(max_iter),
            f(state, "loads"), f(state, "p"), f(state, "w"),
            f(state, "sub"), f(state, "wcur"), f(state, "cur_idx"),
            f(state, "menu_of_bs"), f(state, "menu_offsets"),
            f(state, "menu_servers"),
            f(state, "nidx"), f(state, "kbest"), convert(gaps),
            f(state, "p_access"), f(state, "p_front"),
            f(state, "p_compute"),
            f(state, "m_access"), f(state, "m_front"),
            f(state, "m_compute"),
            f(state, "bs_of"), f(state, "server_of"),
            f(state, "pa_cur"), f(state, "pc_cur"),
            f(state, "sq_access"), f(state, "sq_front"),
            f(state, "sq_compute"),
            adj, t, bvals,
            convert(converged),
        )
        return int(moves), bool(converged[0])

    def golden_quad(lo, hi, ls, ep, scale, qa, qb, qc, tol, max_iter=200):
        lo = np.ascontiguousarray(lo, dtype=np.float64)
        hi = np.ascontiguousarray(hi, dtype=np.float64)
        ls = np.ascontiguousarray(ls, dtype=np.float64)
        ep = np.ascontiguousarray(ep, dtype=np.float64)
        scale = np.ascontiguousarray(scale, dtype=np.float64)
        qa = np.ascontiguousarray(qa, dtype=np.float64)
        qb = np.ascontiguousarray(qb, dtype=np.float64)
        qc = np.ascontiguousarray(qc, dtype=np.float64)
        x = np.empty(lo.size)
        evals = np.empty(lo.size, dtype=np.int64)
        raw_golden_quad(
            lo.size, convert(lo), convert(hi), float(tol), int(max_iter),
            convert(ls), convert(ep), convert(scale),
            convert(qa), convert(qb), convert(qc),
            convert(x), convert(evals),
        )
        return x, evals

    return KernelBackend(
        name=name,
        provider=provider,
        candidate_costs=candidate_costs,
        segment_first_min=segment_first_min,
        gap_sweep=gap_sweep,
        run_dynamics=run_dynamics,
        golden_quad=golden_quad,
    )
