"""The kernel interface: a struct-of-arrays view plus pure array functions.

The hot loops of the slot pipeline (the CGBA gap sweep of
:class:`~repro.core.congestion_game.OffloadingCongestionGame`, the fused
best-response dynamics of
:class:`~repro.solvers.fast_engine.FastBestResponseEngine`, and the
golden-section search of P2-B) are expressed here as a narrow set of
pure array functions over a flat struct-of-arrays state.  Each backend
(:mod:`repro.kernels.numpy_backend`, the numba/C ``jit`` backends)
provides the same functions with bit-identical IEEE semantics; the NumPy
implementation is the oracle every other backend is tested against.

The contract every backend must honour:

* identical elementwise expression trees (same association, no FMA
  contraction, no reassociated reductions);
* first-occurrence tie breaks for every argmin/argmax (strict ``<`` /
  ``>`` scans), matching ``np.argmin``/``np.argmax``;
* in-place mutation of exactly the arrays the NumPy path mutates, so a
  run can switch backends mid-stream and the game state stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DecomposedState", "KernelBackend"]


@dataclass
class DecomposedState:
    """Struct-of-arrays view of a congestion game's decomposed evaluator.

    All fields are *references* to the owning game's arrays (no copies):
    kernels mutate the game through this view, and the game refreshes
    the re-bindable references (profile arrays) whenever it resets.

    Shapes use ``I`` players, ``K`` base stations, ``N`` servers,
    ``G`` distinct server menus, ``W = 2K + N`` fused resources laid out
    ``[access | fronthaul | compute]``, and ``M`` total menu entries.
    """

    num_players: int
    num_bs: int
    num_servers: int
    #: ``(W,)`` fused resource loads ``p_r(z)``.
    loads: np.ndarray
    #: ``(I, W)`` static per-entry player weights ``p_{i,r}``.
    p: np.ndarray
    #: ``(I, W)`` static per-entry cost weights ``m_r * p_{i,r}``.
    w: np.ndarray
    #: ``(I, W)`` each player's own weight on its current resources.
    sub: np.ndarray
    #: ``(3, I)`` current-cost weights per player (access/front/compute).
    wcur: np.ndarray
    #: ``(3, I)`` int64 current resource indices into ``loads``.
    cur_idx: np.ndarray
    #: ``(K,)`` int64 menu group of every base station (``G`` = empty menu).
    menu_of_bs: np.ndarray
    #: ``(G + 1,)`` int64 offsets into ``menu_servers`` per group.
    menu_offsets: np.ndarray
    #: ``(M,)`` int64 concatenated server menus.
    menu_servers: np.ndarray
    #: Per-group compute-column spec (slice or index array); NumPy path only.
    cols: list
    #: ``(I, W)`` scratch: adjusted per-entry costs.
    adj: np.ndarray
    #: ``(I, K)`` scratch: access + fronthaul terms.
    t: np.ndarray
    #: ``(I, K)`` scratch: per-bs best compute term.
    bk: np.ndarray
    #: ``(I, G + 1)`` scratch: per-menu best compute term (col G = +inf).
    bvals: np.ndarray
    #: ``(G, I)`` intp: per-menu argmin server position.
    nidx: np.ndarray
    #: ``(I,)`` intp: per-player argmin base station.
    kbest: np.ndarray
    #: ``(I,)`` scratch: current costs.
    cc: np.ndarray
    #: ``(3, I)`` scratch: current cost terms.
    cc3: np.ndarray
    #: ``(I,)`` row index helper (``arange(I)``).
    rows: np.ndarray
    #: ``(I, K)`` access weights (+inf on uncovered links).
    p_access: np.ndarray
    #: ``(I,)`` fronthaul weights.
    p_front: np.ndarray
    #: ``(I, N)`` compute weights.
    p_compute: np.ndarray
    #: ``(K,)`` access resource weights ``1 / W^A_k``.
    m_access: np.ndarray
    #: ``(K,)`` fronthaul resource weights.
    m_front: np.ndarray
    #: ``(N,)`` compute resource weights ``1 / speed_n``.
    m_compute: np.ndarray
    #: ``(I,)`` int64 current base station per player.
    bs_of: np.ndarray
    #: ``(I,)`` int64 current server per player.
    server_of: np.ndarray
    #: ``(I,)`` current access weight per player.
    pa_cur: np.ndarray
    #: ``(I,)`` current compute weight per player.
    pc_cur: np.ndarray
    #: ``(K,)`` sum of squared access weights per base station.
    sq_access: np.ndarray
    #: ``(K,)`` sum of squared fronthaul weights per base station.
    sq_front: np.ndarray
    #: ``(N,)`` sum of squared compute weights per server.
    sq_compute: np.ndarray


@dataclass(frozen=True)
class KernelBackend:
    """One backend's implementation of the kernel functions.

    Attributes:
        name: Public backend name (``"numpy"`` or ``"jit"``).
        provider: What actually runs underneath: ``"numpy"``,
            ``"numba"`` (njit kernels), or ``"cc"`` (ctypes-loaded C
            kernels compiled at first use).
        candidate_costs: ``(wa, wf, wc, pa, pf, pc, la, lf, lc) ->
            costs`` -- flat candidate-cost evaluation, the expression
            tree of the scalar best response.
        segment_first_min: ``(costs, offsets, counts) -> (best, first)``
            -- per-segment minimum and its first attaining index.
        gap_sweep: ``(state) -> (best_cost, current_cost)`` -- one full
            decomposed gap sweep; retains per-player argmins in
            ``state.nidx`` / ``state.kbest``.
        run_dynamics: ``(state, gaps, slack, max_iter) -> (moves,
            converged)`` -- the fused best-response loop (argmax pick,
            move, full sweep, gap update per iteration), mutating the
            game through *state*.  ``None`` when the backend has no
            fused loop (the engine then drives ``gap_sweep`` from
            Python).
        golden_quad: ``(lo, hi, ls, ep, scale, qa, qb, qc, tol,
            max_iter) -> (x, evals)`` -- per-lane golden-section search
            on ``f(x) = ls/x + ep * (scale * (qa x^2 + qb x + qc))``,
            replaying :func:`repro.solvers.scalar.minimize_convex_scalar`
            lane by lane.  ``None`` when unavailable.
    """

    name: str
    provider: str
    candidate_costs: Callable
    segment_first_min: Callable
    gap_sweep: Callable
    run_dynamics: Callable | None = None
    golden_quad: Callable | None = None
