"""Numba implementation of the kernels (used when numba is installed).

A line-for-line transliteration of the C kernels in
:mod:`repro.kernels.native`, compiled with ``@njit(fastmath=False)`` so
IEEE semantics match the NumPy oracle exactly (numba without fastmath
performs no reassociation or FMA contraction).  Import of numba is
deferred to :func:`make_numba_backend` so the module is importable --
and the provider skippable -- when numba is absent.

Warm-up caveat: the first call of each kernel triggers numba's JIT
compilation (a few seconds); benchmarks warm the kernels on a small
problem before timing.
"""

from __future__ import annotations

import math

from repro.kernels._adapt import wrap_raw_backend
from repro.kernels.interface import KernelBackend

__all__ = ["make_numba_backend"]

_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0
_INVPHI2 = (3.0 - math.sqrt(5.0)) / 2.0

_backend: KernelBackend | None = None


def _build_raw_kernels():
    from numba import njit

    inf = math.inf
    invphi = _INVPHI
    invphi2 = _INVPHI2

    @njit(cache=False, fastmath=False)
    def sweep_player(i, I, K, N, G, loads, p, w, sub, wcur, cur_idx,
                     menu_of_bs, menu_off, menu_srv, nidx, adj, t, bvals):
        W = 2 * K + N
        for r in range(W):
            adj[r] = ((loads[r] - sub[i, r]) + p[i, r]) * w[i, r]
        for k in range(K):
            t[k] = adj[k] + adj[K + k]
        for g in range(G):
            off = menu_off[g]
            cnt = menu_off[g + 1] - off
            bidx = 0
            bv = adj[2 * K + menu_srv[off]]
            for j in range(1, cnt):
                v = adj[2 * K + menu_srv[off + j]]
                if v < bv:
                    bv = v
                    bidx = j
            nidx[g, i] = bidx
            bvals[g] = bv
        kb = 0
        best = t[0] + bvals[menu_of_bs[0]]
        for k in range(1, K):
            v = t[k] + bvals[menu_of_bs[k]]
            if v < best:
                best = v
                kb = k
        c0 = wcur[0, i] * loads[cur_idx[0, i]]
        c1 = wcur[1, i] * loads[cur_idx[1, i]]
        c2 = wcur[2, i] * loads[cur_idx[2, i]]
        cur = (c0 + c1) + c2
        return best, cur, kb

    @njit(cache=False, fastmath=False)
    def raw_gap_sweep(I, K, N, G, loads, p, w, sub, wcur, cur_idx,
                      menu_of_bs, menu_off, menu_srv, nidx, kbest,
                      best_out, cur_out, adj, t, bvals):
        for i in range(I):
            best, cur, kb = sweep_player(
                i, I, K, N, G, loads, p, w, sub, wcur, cur_idx,
                menu_of_bs, menu_off, menu_srv, nidx, adj, t, bvals)
            best_out[i] = best
            cur_out[i] = cur
            kbest[i] = kb

    @njit(cache=False, fastmath=False)
    def raw_run_dynamics(I, K, N, G, slack, max_iter,
                         loads, p, w, sub, wcur, cur_idx,
                         menu_of_bs, menu_off, menu_srv,
                         nidx, kbest, gaps,
                         p_access, p_front, p_compute,
                         m_access, m_front, m_compute,
                         bs_of, server_of, pa_cur, pc_cur,
                         sq_access, sq_front, sq_compute,
                         adj, t, bvals, converged_out):
        one_minus = 1.0 - slack
        moves = 0
        for _ in range(max_iter):
            pl = 0
            g = gaps[0]
            for i in range(1, I):
                if gaps[i] > g:
                    g = gaps[i]
                    pl = i
            if g == -inf:
                converged_out[0] = 1
                return moves

            k_new = kbest[pl]
            grp = menu_of_bs[k_new]
            n_new = menu_srv[menu_off[grp] + nidx[grp, pl]]
            k_old = bs_of[pl]
            n_old = server_of[pl]
            pa_old = p_access[pl, k_old]
            pa_new = p_access[pl, k_new]
            pf = p_front[pl]
            pc_old = p_compute[pl, n_old]
            pc_new = p_compute[pl, n_new]

            loads[k_old] -= pa_old
            loads[k_new] += pa_new
            sq_access[k_old] -= pa_old * pa_old
            sq_access[k_new] += pa_new * pa_new

            loads[K + k_old] -= pf
            loads[K + k_new] += pf
            sq_front[k_old] -= pf * pf
            sq_front[k_new] += pf * pf

            loads[2 * K + n_old] -= pc_old
            loads[2 * K + n_new] += pc_new
            sq_compute[n_old] -= pc_old * pc_old
            sq_compute[n_new] += pc_new * pc_new

            bs_of[pl] = k_new
            server_of[pl] = n_new
            pa_cur[pl] = pa_new
            pc_cur[pl] = pc_new

            sub[pl, k_old] = 0.0
            sub[pl, K + k_old] = 0.0
            sub[pl, 2 * K + n_old] = 0.0
            sub[pl, k_new] = pa_new
            sub[pl, K + k_new] = pf
            sub[pl, 2 * K + n_new] = pc_new
            wcur[0, pl] = m_access[k_new] * pa_new
            wcur[1, pl] = m_front[k_new] * pf
            wcur[2, pl] = m_compute[n_new] * pc_new
            cur_idx[0, pl] = k_new
            cur_idx[1, pl] = K + k_new
            cur_idx[2, pl] = 2 * K + n_new
            moves += 1

            for i in range(I):
                best, cur, kb = sweep_player(
                    i, I, K, N, G, loads, p, w, sub, wcur, cur_idx,
                    menu_of_bs, menu_off, menu_srv, nidx, adj, t, bvals)
                kbest[i] = kb
                if slack == 0.0:
                    gap = cur - best
                    gaps[i] = -inf if gap <= 0.0 else gap
                else:
                    gaps[i] = (cur - best) if one_minus * cur > best else -inf
        converged_out[0] = 0
        return moves

    @njit(cache=False, fastmath=False)
    def raw_golden_quad(n, lo, hi, tol, max_iter,
                        ls, ep, scale, qa, qb, qc, x_out, evals_out):
        for i in range(n):
            a = lo[i]
            b = hi[i]
            L = ls[i]
            E = ep[i]
            S = scale[i]
            A = qa[i]
            B = qb[i]
            C = qc[i]
            if b == a:
                x_out[i] = a
                evals_out[i] = 1
                continue
            width = b - a
            threshold = tol * (width if width > 1.0 else 1.0)
            c = a + invphi2 * (b - a)
            d = a + invphi * (b - a)
            fc = L / c + E * (S * (A * c * c + B * c + C))
            fd = L / d + E * (S * (A * d * d + B * d + C))
            evals = 2
            for _ in range(max_iter):
                if (b - a) <= threshold:
                    break
                if fc <= fd:
                    b = d
                    d = c
                    fd = fc
                    c = a + invphi2 * (b - a)
                    fc = L / c + E * (S * (A * c * c + B * c + C))
                else:
                    a = c
                    c = d
                    fc = fd
                    d = a + invphi * (b - a)
                    fd = L / d + E * (S * (A * d * d + B * d + C))
                evals += 1
            xl = lo[i]
            xh = hi[i]
            fl = L / xl + E * (S * (A * xl * xl + B * xl + C))
            fh = L / xh + E * (S * (A * xh * xh + B * xh + C))
            evals += 2
            bv = fl
            bx = xl
            if fh < bv:
                bv = fh
                bx = xh
            if fc < bv:
                bv = fc
                bx = c
            if fd < bv:
                bv = fd
                bx = d
            x_out[i] = bx
            evals_out[i] = evals
        return None

    return raw_gap_sweep, raw_run_dynamics, raw_golden_quad


def make_numba_backend() -> KernelBackend:
    """Build (once per process) the numba-provided ``jit`` backend.

    Raises:
        ImportError: When numba is not installed; callers fall back to
            the C provider or the NumPy kernels.
    """
    global _backend
    if _backend is not None:
        return _backend
    raw_gap_sweep, raw_run_dynamics, raw_golden_quad = _build_raw_kernels()
    _backend = wrap_raw_backend(
        "jit", "numba", raw_gap_sweep, raw_run_dynamics, raw_golden_quad
    )
    return _backend
