"""C implementation of the kernels, compiled at first use via ctypes.

When numba is not installed, the ``jit`` backend falls back to this
provider: a single small C translation unit, compiled once with the
system compiler into a content-addressed shared library under a
per-user scratch directory, and bound through :mod:`ctypes`.

Bit-exactness: the C code replays the NumPy oracle's expression trees
exactly -- same association, strict ``<``/``>`` first-occurrence tie
breaks -- and the build forbids the two compiler liberties that change
IEEE results (``-fno-fast-math`` against reassociation, and
``-ffp-contract=off`` against FMA contraction, which GCC otherwise
enables at any optimisation level).
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.kernels._adapt import wrap_raw_backend
from repro.kernels.interface import KernelBackend

__all__ = ["KernelBuildError", "find_compiler", "make_cc_backend"]


class KernelBuildError(RuntimeError):
    """Raised when the C kernels cannot be compiled or loaded."""


_SOURCE = r"""
#include <math.h>

/* Inverse golden ratios; sqrt(5.0) is correctly rounded at compile
 * time, so these bits match Python's (math.sqrt(5.0) - 1.0) / 2.0. */
#define INVPHI  ((sqrt(5.0) - 1.0) / 2.0)
#define INVPHI2 ((3.0 - sqrt(5.0)) / 2.0)

typedef long long i64;

/* One player's decomposed sweep: adjusted per-entry costs, per-menu
 * server argmin, per-bs total argmin, current cost.  Mirrors the NumPy
 * gap_sweep row for row (first-minimum tie breaks via strict <). */
static double sweep_player(
    i64 i, i64 I, i64 K, i64 N, i64 G,
    const double *loads, const double *p, const double *w,
    const double *sub, const double *wcur, const i64 *cur_idx,
    const i64 *menu_of_bs, const i64 *menu_off, const i64 *menu_srv,
    i64 *nidx, double *adj, double *t, double *bvals,
    i64 *kbest_out, double *cur_out)
{
    i64 W = 2 * K + N;
    const double *pi = p + i * W;
    const double *wi = w + i * W;
    const double *si = sub + i * W;
    for (i64 r = 0; r < W; ++r)
        adj[r] = ((loads[r] - si[r]) + pi[r]) * wi[r];
    for (i64 k = 0; k < K; ++k)
        t[k] = adj[k] + adj[K + k];
    for (i64 g = 0; g < G; ++g) {
        i64 off = menu_off[g];
        i64 cnt = menu_off[g + 1] - off;
        i64 bidx = 0;
        double bv = adj[2 * K + menu_srv[off]];
        for (i64 j = 1; j < cnt; ++j) {
            double v = adj[2 * K + menu_srv[off + j]];
            if (v < bv) { bv = v; bidx = j; }
        }
        nidx[g * I + i] = bidx;
        bvals[g] = bv;
    }
    i64 kb = 0;
    double best = t[0] + bvals[menu_of_bs[0]];
    for (i64 k = 1; k < K; ++k) {
        double v = t[k] + bvals[menu_of_bs[k]];
        if (v < best) { best = v; kb = k; }
    }
    *kbest_out = kb;
    {
        double c0 = wcur[0 * I + i] * loads[cur_idx[0 * I + i]];
        double c1 = wcur[1 * I + i] * loads[cur_idx[1 * I + i]];
        double c2 = wcur[2 * I + i] * loads[cur_idx[2 * I + i]];
        *cur_out = (c0 + c1) + c2;
    }
    return best;
}

void repro_gap_sweep(
    i64 I, i64 K, i64 N, i64 G,
    const double *loads, const double *p, const double *w,
    const double *sub, const double *wcur, const i64 *cur_idx,
    const i64 *menu_of_bs, const i64 *menu_off, const i64 *menu_srv,
    i64 *nidx, i64 *kbest,
    double *best_out, double *cur_out,
    double *adj, double *t, double *bvals)
{
    for (i64 i = 0; i < I; ++i)
        best_out[i] = sweep_player(i, I, K, N, G, loads, p, w, sub, wcur,
                                   cur_idx, menu_of_bs, menu_off, menu_srv,
                                   nidx, adj, t, bvals, &kbest[i], &cur_out[i]);
}

/* The fused best-response loop: argmax gap pick, apply the cached best
 * response, full sweep, gap update -- one iteration per move, exactly
 * the engine's hot Python loop.  Returns the move count; *converged_out
 * is 1 when the gap argmax hit -inf within the budget. */
i64 repro_run_dynamics(
    i64 I, i64 K, i64 N, i64 G,
    double slack, i64 max_iter,
    double *loads, const double *p, const double *w,
    double *sub, double *wcur, i64 *cur_idx,
    const i64 *menu_of_bs, const i64 *menu_off, const i64 *menu_srv,
    i64 *nidx, i64 *kbest, double *gaps,
    const double *p_access, const double *p_front, const double *p_compute,
    const double *m_access, const double *m_front, const double *m_compute,
    i64 *bs_of, i64 *server_of,
    double *pa_cur, double *pc_cur,
    double *sq_access, double *sq_front, double *sq_compute,
    double *adj, double *t, double *bvals,
    i64 *converged_out)
{
    double one_minus = 1.0 - slack;
    i64 W = 2 * K + N;
    i64 moves = 0;
    for (i64 it = 0; it < max_iter; ++it) {
        i64 pl = 0;
        double g = gaps[0];
        for (i64 i = 1; i < I; ++i)
            if (gaps[i] > g) { g = gaps[i]; pl = i; }
        if (g == -INFINITY) { *converged_out = 1; return moves; }

        /* Apply the cached best response of player pl (same float op
         * order as OffloadingCongestionGame.move). */
        {
            i64 k_new = kbest[pl];
            i64 grp = menu_of_bs[k_new];
            i64 n_new = menu_srv[menu_off[grp] + nidx[grp * I + pl]];
            i64 k_old = bs_of[pl];
            i64 n_old = server_of[pl];
            double pa_old = p_access[pl * K + k_old];
            double pa_new = p_access[pl * K + k_new];
            double pf = p_front[pl];
            double pc_old = p_compute[pl * N + n_old];
            double pc_new = p_compute[pl * N + n_new];
            double *sp = sub + pl * W;

            loads[k_old] -= pa_old;
            loads[k_new] += pa_new;
            sq_access[k_old] -= pa_old * pa_old;
            sq_access[k_new] += pa_new * pa_new;

            loads[K + k_old] -= pf;
            loads[K + k_new] += pf;
            sq_front[k_old] -= pf * pf;
            sq_front[k_new] += pf * pf;

            loads[2 * K + n_old] -= pc_old;
            loads[2 * K + n_new] += pc_new;
            sq_compute[n_old] -= pc_old * pc_old;
            sq_compute[n_new] += pc_new * pc_new;

            bs_of[pl] = k_new;
            server_of[pl] = n_new;
            pa_cur[pl] = pa_new;
            pc_cur[pl] = pc_new;

            sp[k_old] = 0.0;
            sp[K + k_old] = 0.0;
            sp[2 * K + n_old] = 0.0;
            sp[k_new] = pa_new;
            sp[K + k_new] = pf;
            sp[2 * K + n_new] = pc_new;
            wcur[0 * I + pl] = m_access[k_new] * pa_new;
            wcur[1 * I + pl] = m_front[k_new] * pf;
            wcur[2 * I + pl] = m_compute[n_new] * pc_new;
            cur_idx[0 * I + pl] = k_new;
            cur_idx[1 * I + pl] = K + k_new;
            cur_idx[2 * I + pl] = 2 * K + n_new;
        }
        ++moves;

        /* Full refresh: new gaps under the slack eligibility test. */
        for (i64 i = 0; i < I; ++i) {
            i64 kb;
            double cur;
            double best = sweep_player(i, I, K, N, G, loads, p, w, sub,
                                       wcur, cur_idx, menu_of_bs, menu_off,
                                       menu_srv, nidx, adj, t, bvals,
                                       &kb, &cur);
            kbest[i] = kb;
            if (slack == 0.0) {
                double gap = cur - best;
                gaps[i] = (gap <= 0.0) ? -INFINITY : gap;
            } else {
                gaps[i] = (one_minus * cur > best) ? (cur - best) : -INFINITY;
            }
        }
    }
    *converged_out = 0;
    return moves;
}

/* Per-lane golden-section search on the P2-B quadratic-energy
 * objective f(x) = ls/x + ep * (scale * (qa x^2 + qb x + qc)).
 * Replays minimize_convex_scalar lane by lane: same probe points, same
 * fc <= fd branch, same endpoint-included candidate comparison with
 * the first-minimum tie break, same evaluation counting. */
void repro_golden_quad(
    i64 n, const double *lo, const double *hi,
    double tol, i64 max_iter,
    const double *ls, const double *ep, const double *scale,
    const double *qa, const double *qb, const double *qc,
    double *x_out, i64 *evals_out)
{
    for (i64 i = 0; i < n; ++i) {
        double a = lo[i], b = hi[i];
        double L = ls[i], E = ep[i], S = scale[i];
        double A = qa[i], B = qb[i], C = qc[i];
        double width, threshold, c, d, fc, fd, xl, xh, fl, fh, bv, bx;
        i64 evals;
        if (b == a) {
            x_out[i] = a;
            evals_out[i] = 1;
            continue;
        }
        width = b - a;
        threshold = tol * (width > 1.0 ? width : 1.0);
        c = a + INVPHI2 * (b - a);
        d = a + INVPHI * (b - a);
        fc = L / c + E * (S * (A * c * c + B * c + C));
        fd = L / d + E * (S * (A * d * d + B * d + C));
        evals = 2;
        for (i64 it = 0; it < max_iter; ++it) {
            if ((b - a) <= threshold)
                break;
            if (fc <= fd) {
                b = d; d = c; fd = fc;
                c = a + INVPHI2 * (b - a);
                fc = L / c + E * (S * (A * c * c + B * c + C));
            } else {
                a = c; c = d; fc = fd;
                d = a + INVPHI * (b - a);
                fd = L / d + E * (S * (A * d * d + B * d + C));
            }
            ++evals;
        }
        xl = lo[i];
        xh = hi[i];
        fl = L / xl + E * (S * (A * xl * xl + B * xl + C));
        fh = L / xh + E * (S * (A * xh * xh + B * xh + C));
        evals += 2;
        bv = fl; bx = xl;
        if (fh < bv) { bv = fh; bx = xh; }
        if (fc < bv) { bv = fc; bx = c; }
        if (fd < bv) { bv = fd; bx = d; }
        x_out[i] = bx;
        evals_out[i] = evals;
    }
}
"""

#: Flags that pin IEEE semantics: no reassociation, no FMA contraction.
_CFLAGS = ["-O3", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off"]


def find_compiler() -> str | None:
    """Path of a usable C compiler, or ``None``."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    try:
        user = getpass.getuser()
    except Exception:  # no passwd entry in minimal containers
        user = "shared"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{user}"


def _build_library() -> Path:
    """Compile (or reuse) the shared library; content-addressed cache."""
    compiler = find_compiler()
    if compiler is None:
        raise KernelBuildError("no C compiler found (tried cc, gcc, clang)")
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"reprokern-{digest}.so"
    if lib_path.exists():
        return lib_path
    cache.mkdir(parents=True, exist_ok=True)
    src_path = cache / f"reprokern-{digest}.c"
    src_path.write_text(_SOURCE)
    tmp_path = cache / f".reprokern-{digest}.{os.getpid()}.so"
    cmd = [compiler, *_CFLAGS, "-o", str(tmp_path), str(src_path), "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise KernelBuildError(f"kernel compile failed to run: {exc}") from exc
    if proc.returncode != 0:
        raise KernelBuildError(
            f"kernel compile failed ({compiler}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp_path, lib_path)  # atomic: concurrent builds converge
    return lib_path


# Arrays are passed as raw data pointers: ndpointer's per-call
# dtype/flags validation costs microseconds per argument, which
# dominates once the kernels themselves are sub-millisecond.  The
# adapter (_adapt._StateCache) validates dtype/contiguity once per
# array binding and caches the converted pointer.
_f64 = ctypes.c_void_p
_i64 = ctypes.c_void_p
_ll = ctypes.c_longlong
_dbl = ctypes.c_double


def _as_ptr(arr: np.ndarray) -> ctypes.c_void_p:
    """The array's data pointer, for the c_void_p argument slots."""
    return ctypes.c_void_p(arr.ctypes.data)


def _bind(lib: ctypes.CDLL) -> tuple:
    gap_sweep = lib.repro_gap_sweep
    gap_sweep.restype = None
    gap_sweep.argtypes = [
        _ll, _ll, _ll, _ll,
        _f64, _f64, _f64, _f64, _f64, _i64,
        _i64, _i64, _i64,
        _i64, _i64,
        _f64, _f64,
        _f64, _f64, _f64,
    ]
    run_dynamics = lib.repro_run_dynamics
    run_dynamics.restype = _ll
    run_dynamics.argtypes = [
        _ll, _ll, _ll, _ll,
        _dbl, _ll,
        _f64, _f64, _f64, _f64, _f64, _i64,
        _i64, _i64, _i64,
        _i64, _i64, _f64,
        _f64, _f64, _f64,
        _f64, _f64, _f64,
        _i64, _i64,
        _f64, _f64,
        _f64, _f64, _f64,
        _f64, _f64, _f64,
        _i64,
    ]
    golden_quad = lib.repro_golden_quad
    golden_quad.restype = None
    golden_quad.argtypes = [
        _ll, _f64, _f64,
        _dbl, _ll,
        _f64, _f64, _f64,
        _f64, _f64, _f64,
        _f64, _i64,
    ]
    return gap_sweep, run_dynamics, golden_quad


_backend: KernelBackend | None = None


def make_cc_backend() -> KernelBackend:
    """Compile, load, and wrap the C kernels (cached per process).

    Raises:
        KernelBuildError: When no compiler is available or the build or
            load fails; callers fall back to the NumPy kernels.
    """
    global _backend
    if _backend is not None:
        return _backend
    lib_path = _build_library()
    try:
        lib = ctypes.CDLL(str(lib_path))
        raw_gap_sweep, raw_run_dynamics, raw_golden_quad = _bind(lib)
    except OSError as exc:
        raise KernelBuildError(f"failed to load kernel library: {exc}") from exc
    _backend = wrap_raw_backend(
        "jit", "cc", raw_gap_sweep, raw_run_dynamics, raw_golden_quad,
        convert=_as_ptr,
    )
    return _backend
