"""NumPy reference kernels -- the bit-exactness oracle.

These are the exact ufunc sequences that previously lived inline in
:class:`~repro.core.congestion_game.OffloadingCongestionGame`; every
other backend must reproduce their results bit for bit (same IEEE
operation order, same first-minimum tie breaks).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.interface import DecomposedState, KernelBackend

__all__ = ["make_numpy_backend"]


def candidate_costs(wa, wf, wc, pa, pf, pc, load_a, load_f, load_c):
    """Flat candidate costs, term for term the scalar best-response tree."""
    return wa * (load_a + pa) + wf * (load_f + pf) + wc * (load_c + pc)


def segment_first_min(costs, offsets, counts):
    """Per-segment minimum and the first index attaining it.

    The first-index construction matches ``np.argmin``'s tie break: ties
    map to their position, everything else to ``costs.size``, and the
    segment minimum of that picks the earliest tied position.
    """
    best = np.minimum.reduceat(costs, offsets)
    positions = np.arange(costs.size, dtype=np.int64)
    first = np.minimum.reduceat(
        np.where(costs == np.repeat(best, counts), positions, costs.size),
        offsets,
    )
    return best, first


def gap_sweep(state: DecomposedState):
    """One full decomposed gap sweep over every player.

    Returns ``(best_cost, current_cost)`` and retains the per-player
    argmins in ``state.nidx`` / ``state.kbest`` so the caller can
    resolve the selected mover's strategy lazily.
    """
    num_bs = state.num_bs
    rows = state.rows
    # adj[i, r] = (load_r - own weight if i sits on r + p_{i,r}) * w_{i,r};
    # subtracting the zero entries of the maintained own-weight array
    # is a bitwise no-op, so no mask is needed.
    adj = state.adj
    np.subtract(state.loads, state.sub, out=adj)
    np.add(adj, state.p, out=adj)
    np.multiply(adj, state.w, out=adj)
    # A(i, k): access + fronthaul; B(i, n): compute.
    t = state.t
    np.add(adj[:, :num_bs], adj[:, num_bs : 2 * num_bs], out=t)
    bvals = state.bvals
    nidx = state.nidx
    for g, cols in enumerate(state.cols):
        sub = adj[:, cols]
        np.argmin(sub, axis=1, out=nidx[g])
        bvals[:, g] = sub[rows, nidx[g]]
    bvals.take(state.menu_of_bs, axis=1, out=state.bk)
    np.add(t, state.bk, out=t)
    np.argmin(t, axis=1, out=state.kbest)
    best_cost = t[rows, state.kbest]

    # current_cost via one fused gather: row j of cc3 is
    # wcur[j] * loads[current resource j], so the axis-0 sum is the
    # same (access + fronthaul) + compute addition order as the
    # scalar expression.
    cc3 = state.cc3
    state.loads.take(state.cur_idx, out=cc3)
    np.multiply(state.wcur, cc3, out=cc3)
    np.add.reduce(cc3, axis=0, out=state.cc)
    return best_cost, state.cc


def make_numpy_backend() -> KernelBackend:
    """The reference backend: no fused loop, no native golden section."""
    return KernelBackend(
        name="numpy",
        provider="numpy",
        candidate_costs=candidate_costs,
        segment_first_min=segment_first_min,
        gap_sweep=gap_sweep,
        run_dynamics=None,
        golden_quad=None,
    )
