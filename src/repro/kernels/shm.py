"""Shared-memory struct-of-arrays blocks for zero-copy state shipping.

The resident sharded runtime (:mod:`repro.sim.shard_runtime`) compiles
each epoch's slot states in the parent and hands them to worker
processes.  Pickling a ``(count, I, K)`` spectral-efficiency stack per
epoch per cell would rebuild the serialization tax the runtime exists to
remove, so the compiled arrays live here instead: one
:class:`multiprocessing.shared_memory.SharedMemory` segment per cell,
laid out as a struct of arrays (the same flat-array discipline as
:class:`~repro.kernels.interface.DecomposedState`), double-buffered so
the parent can fill epoch ``e + 1`` while workers still read epoch
``e``.  Workers attach by name and build NumPy views directly over the
segment -- no copies cross the process boundary after the parent's
single write.

Lifetime: the creating process owns the segment and unlinks it on
:meth:`SharedStateBlock.close`; attached processes only close their
mapping.  Attaching unregisters the segment from the child's
``resource_tracker`` (on Python < 3.13 there is no ``track=False``), so
a worker exiting -- or being killed mid-epoch by the salvage path --
never tears the block down under the parent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedStateBlock"]


def _normalise_fields(fields: dict) -> "dict[str, tuple[tuple[int, ...], np.dtype]]":
    out = {}
    for name, (shape, dtype) in fields.items():
        out[str(name)] = (tuple(int(s) for s in shape), np.dtype(dtype))
    return out


class SharedStateBlock:
    """A buffered struct-of-arrays region in shared memory.

    Args:
        fields: ``name -> (shape, dtype)`` for one buffer's arrays.
        buffers: Independent copies of the field set (2 = the classic
            fill-ahead double buffer).

    Use :meth:`create` in the owning process, ship :meth:`descriptor`
    (a small picklable dict) to workers, and :meth:`attach` there.
    :meth:`arrays` returns the NumPy views for one buffer index.
    """

    def __init__(self, shm, fields: dict, buffers: int, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.fields = _normalise_fields(fields)
        self.buffers = int(buffers)
        self._views: "list[dict[str, np.ndarray]] | None" = []
        offset = 0
        for _ in range(self.buffers):
            views = {}
            for name, (shape, dtype) in self.fields.items():
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                views[name] = np.ndarray(
                    shape, dtype=dtype, buffer=shm.buf, offset=offset
                )
                offset += nbytes
            self._views.append(views)
        self.nbytes = offset

    @classmethod
    def _size(cls, fields: dict, buffers: int) -> int:
        total = 0
        for shape, dtype in _normalise_fields(fields).values():
            total += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        # SharedMemory refuses size=0; keep degenerate blocks mappable.
        return max(total * buffers, 1)

    @classmethod
    def create(cls, fields: dict, *, buffers: int = 2) -> "SharedStateBlock":
        """Allocate a new segment sized for *buffers* copies of *fields*."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=cls._size(fields, buffers)
        )
        return cls(shm, fields, buffers, owner=True)

    def descriptor(self) -> dict:
        """Picklable handle a worker passes to :meth:`attach`."""
        return {
            "name": self._shm.name,
            "fields": {
                name: (list(shape), dtype.str)
                for name, (shape, dtype) in self.fields.items()
            },
            "buffers": self.buffers,
        }

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedStateBlock":
        """Map an existing segment created by another process."""
        from multiprocessing import resource_tracker, shared_memory

        # Only the creator owns the segment's lifetime.  Suppress the
        # tracker registration during the map (no ``track=False`` before
        # Python 3.13): registering here would either unlink the block
        # under the parent when this worker exits, or -- under the fork
        # start method, where the tracker daemon is shared -- corrupt
        # the parent's own bookkeeping on unregister.
        original = resource_tracker.register

        def _skip(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip
        try:
            shm = shared_memory.SharedMemory(name=descriptor["name"])
        finally:
            resource_tracker.register = original
        fields = {
            name: (tuple(shape), np.dtype(dtype))
            for name, (shape, dtype) in descriptor["fields"].items()
        }
        return cls(shm, fields, descriptor["buffers"], owner=False)

    def arrays(self, buffer: int = 0) -> "dict[str, np.ndarray]":
        """The field views of one buffer (references into the segment)."""
        if self._views is None:
            raise ValueError("shared state block is closed")
        return self._views[buffer]

    def close(self) -> None:
        """Drop the mapping; the owner also unlinks the segment."""
        if self._views is None:
            return
        self._views = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray exported views
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass
