"""MEC network topology substrate (paper Sec. III-A, Fig. 1).

* :mod:`repro.network.topology` -- the entity model: base stations,
  edge-server clusters (server rooms), edge servers, mobile devices, and
  the :class:`~repro.network.topology.MECNetwork` container.
* :mod:`repro.network.coverage` -- planar geometry: which base stations
  cover which device positions.
* :mod:`repro.network.builder` -- random scenario construction following
  the paper's simulation settings (Sec. VI-A).
* :mod:`repro.network.connectivity` -- feasible strategy sets
  ``Z_i`` (which (base station, server) pairs each device may choose) and
  a networkx export of the topology.
* :mod:`repro.network.validation` -- structural consistency checks.
* :mod:`repro.network.partition` -- k-means cell partitioning and
  per-cell sub-topology extraction for multi-cell scale-out.
"""

from repro.network.topology import (
    BaseStation,
    EdgeServer,
    FronthaulType,
    MECNetwork,
    MobileDevice,
    ServerCluster,
)
from repro.network.coverage import coverage_matrix, distances
from repro.network.builder import NetworkBuilder, build_paper_network
from repro.network.connectivity import (
    StrategySpace,
    reachable_servers,
    to_networkx_graph,
)
from repro.network.validation import validate_network
from repro.network.partition import (
    Cell,
    CellIndexMaps,
    CellPlan,
    extract_subnetwork,
    partition_cells,
)
from repro.network.presets import PRESETS, get_preset

__all__ = [
    "PRESETS",
    "get_preset",
    "BaseStation",
    "EdgeServer",
    "ServerCluster",
    "MobileDevice",
    "MECNetwork",
    "FronthaulType",
    "coverage_matrix",
    "distances",
    "NetworkBuilder",
    "build_paper_network",
    "StrategySpace",
    "reachable_servers",
    "to_networkx_graph",
    "validate_network",
    "Cell",
    "CellIndexMaps",
    "CellPlan",
    "partition_cells",
    "extract_subnetwork",
]
