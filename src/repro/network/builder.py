"""Random scenario construction following the paper's settings (Sec. VI-A).

The published simulation uses six base stations, two server rooms with
eight edge servers each, and 80-120+ mobile devices.  Bandwidths,
spectral efficiencies, suitabilities and energy models are drawn from the
ranges quoted in the paper.  Everything is a knob on
:class:`NetworkBuilder` so experiments can deviate from the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.models import ScaledEnergyModel, perturbed_quadratic_model
from repro.exceptions import ConfigurationError
from repro.network.coverage import coverage_matrix
from repro.network.topology import (
    BaseStation,
    EdgeServer,
    FronthaulType,
    MECNetwork,
    MobileDevice,
    ServerCluster,
)
from repro.types import BoolArray, Rng

#: Core count of the CPU whose power curve we digitised; per-core scaling
#: divides the fitted package power by this before multiplying by a
#: server's core count.
_REFERENCE_CORES = 4


@dataclass
class NetworkBuilder:
    """Configurable random generator of paper-style MEC networks.

    Attributes mirror Sec. VI-A of the paper; all bandwidths in Hz,
    distances in metres, frequencies in GHz.

    Attributes:
        num_devices: Number of mobile devices ``I``.
        num_base_stations: Number of base stations ``K``.
        num_clusters: Number of server rooms ``M``.
        servers_per_cluster: Servers hosted in each room.
        area_size: Side length of the square deployment area.
        num_macro_stations: How many of the stations are wide-coverage
            (low-band) macrocells; the rest are small cells.  At least one
            macro cell guarantees every device has a feasible choice.
        macro_radius: Coverage radius of macro stations; ``None`` sizes it
            to cover the whole area.
        small_cell_radius_range: Coverage radii of small cells.
        access_bandwidth_range: ``W^A`` draw range (paper: 50-100 MHz).
        fronthaul_bandwidth_range: ``W^F`` draw range (paper: 0.5-1 GHz).
        fronthaul_se: ``h^F`` (paper: 10 bps/Hz for all stations).
        wireless_fronthaul_fraction: Fraction of base stations given a
            wireless fronthaul connected to *every* cluster (the paper's
            default simulation wires each station to one random room).
        core_counts: Candidate core counts; assigned half-and-half
            (paper: 64 and 128).
        freq_min: ``F^L`` for every server (paper: 1.8 GHz).
        freq_max: ``F^U`` for every server (paper: 3.6 GHz).
        scale_energy_with_cores: Multiply the per-core power model by the
            server's core count (the digitised curve is normalised to a
            4-core package first).
        scale_speed_with_cores: Give each server a processing speed of
            ``cores * clock`` instead of the paper's ``clock`` (Eq. 7).
            Off by default: the literal model keeps processing latency a
            substantial fraction of the total, which is what makes the
            paper's frequency-scaling results pronounced.
        suitability_range: ``sigma`` draw range (paper: 0.5-1).
    """

    num_devices: int = 100
    num_base_stations: int = 6
    num_clusters: int = 2
    servers_per_cluster: int = 8
    area_size: float = 6_000.0
    num_macro_stations: int = 2
    macro_radius: float | None = None
    small_cell_radius_range: tuple[float, float] = (500.0, 1_500.0)
    access_bandwidth_range: tuple[float, float] = (50e6, 100e6)
    fronthaul_bandwidth_range: tuple[float, float] = (0.5e9, 1.0e9)
    fronthaul_se: float = 10.0
    wireless_fronthaul_fraction: float = 0.0
    core_counts: tuple[int, ...] = (64, 128)
    freq_min: float = 1.8
    freq_max: float = 3.6
    scale_energy_with_cores: bool = True
    scale_speed_with_cores: bool = False
    suitability_range: tuple[float, float] = (0.5, 1.0)

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        if self.num_macro_stations < 1:
            raise ConfigurationError(
                "need at least one macro station so every device is covered"
            )
        if self.num_macro_stations > self.num_base_stations:
            raise ConfigurationError("more macro stations than base stations")
        if not 0.0 <= self.wireless_fronthaul_fraction <= 1.0:
            raise ConfigurationError("wireless_fronthaul_fraction must be in [0,1]")

    def build(self, rng: Rng) -> tuple[MECNetwork, BoolArray]:
        """Draw one network and its device coverage matrix."""
        clusters = self._build_clusters()
        servers = self._build_servers(rng)
        base_stations = self._build_base_stations(rng)
        devices = self._build_devices(rng)
        lo, hi = self.suitability_range
        suitability = rng.uniform(
            lo, hi, size=(self.num_devices, len(servers))
        )
        network = MECNetwork(
            base_stations=base_stations,
            clusters=clusters,
            servers=servers,
            devices=devices,
            suitability=suitability,
        )
        coverage = coverage_matrix(
            network.device_positions(),
            network.base_station_positions(),
            np.array([b.coverage_radius for b in base_stations]),
        )
        return network, coverage

    # -- pieces ------------------------------------------------------------

    def _build_clusters(self) -> tuple[ServerCluster, ...]:
        clusters = []
        for m in range(self.num_clusters):
            first = m * self.servers_per_cluster
            clusters.append(
                ServerCluster(
                    index=m,
                    servers=tuple(range(first, first + self.servers_per_cluster)),
                    name=f"Room{m}",
                )
            )
        return tuple(clusters)

    def _build_servers(self, rng: Rng) -> tuple[EdgeServer, ...]:
        total = self.num_clusters * self.servers_per_cluster
        # Half-and-half core assignment, shuffled across rooms (paper:
        # "half of the sixteen servers have 64 cores, and others have 128").
        per_kind = int(np.ceil(total / len(self.core_counts)))
        cores = np.array(
            [c for c in self.core_counts for _ in range(per_kind)][:total]
        )
        rng.shuffle(cores)
        servers = []
        for n in range(total):
            per_core = perturbed_quadratic_model(rng)
            if self.scale_energy_with_cores:
                model = ScaledEnergyModel(
                    base=per_core, scale=float(cores[n]) / _REFERENCE_CORES
                )
            else:
                model = per_core
            servers.append(
                EdgeServer(
                    index=n,
                    cluster=n // self.servers_per_cluster,
                    cores=int(cores[n]),
                    freq_min=self.freq_min,
                    freq_max=self.freq_max,
                    energy_model=model,
                    speed_scale=float(cores[n]) if self.scale_speed_with_cores else 1.0,
                )
            )
        return tuple(servers)

    def _build_base_stations(self, rng: Rng) -> tuple[BaseStation, ...]:
        macro_radius = self.macro_radius
        if macro_radius is None:
            # Cover the whole square from anywhere inside it.
            macro_radius = float(np.sqrt(2.0) * self.area_size)
        stations = []
        n_wireless = int(round(self.wireless_fronthaul_fraction * self.num_base_stations))
        wireless_set = set(
            rng.choice(self.num_base_stations, size=n_wireless, replace=False).tolist()
        )
        for k in range(self.num_base_stations):
            position = tuple(rng.uniform(0.0, self.area_size, size=2).tolist())
            if k < self.num_macro_stations:
                radius = macro_radius
            else:
                radius = float(rng.uniform(*self.small_cell_radius_range))
            if k in wireless_set:
                fronthaul_type = FronthaulType.WIRELESS
                connected = tuple(range(self.num_clusters))
            else:
                fronthaul_type = FronthaulType.WIRED
                connected = (int(rng.integers(self.num_clusters)),)
            stations.append(
                BaseStation(
                    index=k,
                    position=position,  # type: ignore[arg-type]
                    coverage_radius=radius,
                    access_bandwidth=float(rng.uniform(*self.access_bandwidth_range)),
                    fronthaul_bandwidth=float(
                        rng.uniform(*self.fronthaul_bandwidth_range)
                    ),
                    fronthaul_spectral_efficiency=self.fronthaul_se,
                    fronthaul_type=fronthaul_type,
                    connected_clusters=connected,
                )
            )
        return tuple(stations)

    def _build_devices(self, rng: Rng) -> tuple[MobileDevice, ...]:
        positions = rng.uniform(0.0, self.area_size, size=(self.num_devices, 2))
        return tuple(
            MobileDevice(index=i, position=(float(x), float(y)))
            for i, (x, y) in enumerate(positions)
        )


def build_paper_network(
    rng: Rng, *, num_devices: int = 100, **overrides: object
) -> tuple[MECNetwork, BoolArray]:
    """Build a network with the paper's default simulation settings.

    Args:
        rng: Random generator.
        num_devices: Number of mobile devices (the paper sweeps 80-120).
        **overrides: Any :class:`NetworkBuilder` field, e.g.
            ``num_base_stations=8``.

    Returns:
        ``(network, coverage)`` -- the topology and its static coverage
        matrix.
    """
    builder = NetworkBuilder(num_devices=num_devices, **overrides)  # type: ignore[arg-type]
    return builder.build(rng)
