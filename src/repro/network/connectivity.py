"""Feasible strategy sets and graph views of the topology.

At each slot, device ``i`` picks a (base station, server) pair out of its
feasible set ``Z_i`` (constraints (1)-(3)): the base station must cover
the device and must have a fronthaul link to the server's cluster.
:class:`StrategySpace` precomputes these pairs from a coverage matrix so
the game-theoretic algorithms iterate over flat arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import networkx as nx

from repro.exceptions import InfeasibleError
from repro.network.topology import MECNetwork
from repro.types import BoolArray, IntArray


def reachable_servers(network: MECNetwork, bs_index: int) -> IntArray:
    """Indices of servers reachable through base station *bs_index*."""
    return network.servers_reachable_from(bs_index)


@dataclass(frozen=True)
class FlatStrategies:
    """All devices' feasible pairs concatenated into parallel arrays.

    Candidate ``c`` belongs to device ``player[c]`` and denotes the pair
    ``(bs[c], server[c])``; device ``i``'s candidates occupy the
    contiguous slice ``offsets[i]:offsets[i + 1]``.  This is the index
    structure the vectorized best-response engine gathers loads through,
    so one numpy pass scores every candidate of every player at once.

    Attributes:
        bs: ``(C,)`` base-station index per candidate.
        server: ``(C,)`` server index per candidate.
        player: ``(C,)`` owning device per candidate.
        offsets: ``(I + 1,)`` slice boundaries per device.
        counts: ``(I,)`` strategy-set sizes ``|Z_i|``.
    """

    bs: IntArray
    server: IntArray
    player: IntArray
    offsets: IntArray
    counts: IntArray

    @property
    def num_candidates(self) -> int:
        """Total number of (device, bs, server) candidates ``C``."""
        return int(self.bs.size)

    def subset_indices(self, players: IntArray) -> tuple[IntArray, IntArray]:
        """Candidate indices of *players* plus subset segment offsets.

        Returns ``(indices, offsets)`` where ``indices`` concatenates the
        candidate slices of the given players (in their given order) and
        ``offsets`` bounds each player's segment within ``indices`` --
        the structure ``np.minimum.reduceat`` needs for per-player
        reductions over the subset.
        """
        counts = self.counts[players]
        ends = np.cumsum(counts)
        starts_out = ends - counts
        # Multi-arange: for each player p, the run offsets[p] + 0..counts[p].
        indices = np.repeat(self.offsets[players] - starts_out, counts)
        indices += np.arange(int(ends[-1]) if counts.size else 0, dtype=np.int64)
        offsets = np.concatenate([[0], ends[:-1]]) if counts.size else np.zeros(1, np.int64)
        return indices, offsets.astype(np.int64)


class StrategySpace:
    """Per-device feasible (base station, server) pairs.

    Args:
        network: The static topology.
        coverage: ``(I, K)`` boolean matrix of which base stations cover
            which devices at the moment of construction.  When coverage is
            static (the default scenario) one strategy space serves the
            whole simulation; with mobility, rebuild it per slot.
        available_servers: Optional ``(N,)`` availability mask; offline
            servers are excluded from every device's strategy set.

    Raises:
        InfeasibleError: If any device ends up with an empty strategy set.
    """

    def __init__(
        self,
        network: MECNetwork,
        coverage: BoolArray,
        available_servers: BoolArray | None = None,
    ) -> None:
        coverage = np.asarray(coverage, dtype=bool)
        if coverage.shape != (network.num_devices, network.num_base_stations):
            raise InfeasibleError(
                "coverage matrix shape must be (I, K) = "
                f"({network.num_devices}, {network.num_base_stations}), "
                f"got {coverage.shape}"
            )
        if available_servers is not None:
            available_servers = np.asarray(available_servers, dtype=bool)
            if available_servers.shape != (network.num_servers,):
                raise InfeasibleError(
                    f"available_servers must have shape (N,) = "
                    f"({network.num_servers},), got {available_servers.shape}"
                )
        self.network = network
        self.coverage = coverage
        self.available_servers = available_servers
        self._bs_choices: list[IntArray] = []
        self._server_choices: list[IntArray] = []
        for i in range(network.num_devices):
            bs_list: list[int] = []
            server_list: list[int] = []
            for k in np.flatnonzero(coverage[i]):
                for n in network.servers_reachable_from(int(k)):
                    if (
                        available_servers is not None
                        and not available_servers[int(n)]
                    ):
                        continue
                    bs_list.append(int(k))
                    server_list.append(int(n))
            if not bs_list:
                raise InfeasibleError(
                    f"{network.devices[i].label} has an empty strategy set",
                    device=i,
                )
            self._bs_choices.append(np.array(bs_list, dtype=np.int64))
            self._server_choices.append(np.array(server_list, dtype=np.int64))
        self._flat: FlatStrategies | None = None
        self._players_by_bs: list[IntArray] | None = None
        self._players_by_server: list[IntArray] | None = None
        self._menus: list[IntArray] | None = None
        self._patterns: tuple[IntArray, list[IntArray]] | None = None

    @property
    def num_devices(self) -> int:
        """Number of devices the space was built for."""
        return len(self._bs_choices)

    def flat(self) -> FlatStrategies:
        """The concatenated candidate arrays, built once and cached."""
        if self._flat is None:
            counts = np.array(
                [choice.size for choice in self._bs_choices], dtype=np.int64
            )
            offsets = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            self._flat = FlatStrategies(
                bs=np.concatenate(self._bs_choices),
                server=np.concatenate(self._server_choices),
                player=np.repeat(np.arange(counts.size, dtype=np.int64), counts),
                offsets=offsets,
                counts=counts,
            )
        return self._flat

    def _build_inverted_index(self) -> None:
        by_bs: list[list[int]] = [[] for _ in range(self.network.num_base_stations)]
        by_server: list[list[int]] = [[] for _ in range(self.network.num_servers)]
        for i in range(self.num_devices):
            for k in np.unique(self._bs_choices[i]):
                by_bs[int(k)].append(i)
            for n in np.unique(self._server_choices[i]):
                by_server[int(n)].append(i)
        self._players_by_bs = [np.array(p, dtype=np.int64) for p in by_bs]
        self._players_by_server = [np.array(p, dtype=np.int64) for p in by_server]

    def players_touching_bs(self, bs: int) -> IntArray:
        """Devices whose strategy set contains base station *bs*.

        These are exactly the players whose best response can change when
        the load on *bs* (access or fronthaul) changes -- the inverted
        index behind the incremental engine's dirty-player tracking.
        """
        if self._players_by_bs is None:
            self._build_inverted_index()
        assert self._players_by_bs is not None
        return self._players_by_bs[bs]

    def players_touching_server(self, server: int) -> IntArray:
        """Devices whose strategy set contains *server* (see above)."""
        if self._players_by_server is None:
            self._build_inverted_index()
        assert self._players_by_server is not None
        return self._players_by_server[server]

    def server_menu(self) -> list[IntArray]:
        """Per-base-station candidate server list, in enumeration order.

        Entry ``k`` holds exactly the servers a device covered by ``k``
        may pair with -- ``servers_reachable_from(k)`` filtered by the
        availability mask, in the same order the constructor enumerated
        them.  The menus are player-independent by construction, which is
        what makes the space a product set per covered base station.
        """
        if self._menus is None:
            menus: list[IntArray] = []
            for k in range(self.network.num_base_stations):
                servers = [
                    int(n)
                    for n in self.network.servers_reachable_from(k)
                    if (
                        self.available_servers is None
                        or self.available_servers[int(n)]
                    )
                ]
                menus.append(np.array(servers, dtype=np.int64))
            self._menus = menus
        return self._menus

    def product_patterns(self) -> tuple[IntArray, list[IntArray]]:
        """Distinct server menus and the base-station -> menu mapping.

        Returns ``(menu_of_bs, menus)``: ``menus`` lists the distinct
        per-BS server menus (each an ordered server index array) and
        ``menu_of_bs[k]`` indexes the menu of base station ``k``, with
        ``len(menus)`` standing in for an empty menu (no usable server).
        The decomposed best-response evaluator minimises over servers
        once per distinct menu instead of once per candidate.
        """
        if self._patterns is None:
            menus = self.server_menu()
            distinct: list[IntArray] = []
            seen: dict[bytes, int] = {}
            menu_of_bs = np.empty(len(menus), dtype=np.int64)
            for k, menu in enumerate(menus):
                if menu.size == 0:
                    menu_of_bs[k] = -1
                    continue
                key = menu.tobytes()
                if key not in seen:
                    seen[key] = len(distinct)
                    distinct.append(menu)
                menu_of_bs[k] = seen[key]
            menu_of_bs[menu_of_bs < 0] = len(distinct)
            self._patterns = (menu_of_bs, distinct)
        return self._patterns

    def pairs(self, device: int) -> tuple[IntArray, IntArray]:
        """Feasible strategies of *device* as parallel (bs, server) arrays."""
        return self._bs_choices[device], self._server_choices[device]

    def num_strategies(self, device: int) -> int:
        """Size of ``Z_i`` for *device*."""
        return int(self._bs_choices[device].size)

    def contains(self, device: int, bs: int, server: int) -> bool:
        """Whether (bs, server) is a feasible strategy for *device*."""
        ks, ns = self.pairs(device)
        return bool(np.any((ks == bs) & (ns == server)))

    def repair(
        self,
        bs_of: IntArray,
        server_of: IntArray,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray]:
        """Fix entries of an assignment that are infeasible in this space.

        Used when carrying a decision across slots under mobility: a
        device whose previous (base station, server) pair is no longer
        feasible gets a fresh uniformly random feasible pair; feasible
        entries are kept.  Returns new arrays; the inputs are not
        modified.
        """
        bs_of = np.array(bs_of, dtype=np.int64, copy=True)
        server_of = np.array(server_of, dtype=np.int64, copy=True)
        for i in range(self.num_devices):
            if not self.contains(i, int(bs_of[i]), int(server_of[i])):
                j = int(rng.integers(self._bs_choices[i].size))
                bs_of[i] = self._bs_choices[i][j]
                server_of[i] = self._server_choices[i][j]
        return bs_of, server_of

    def random_assignment(self, rng: np.random.Generator) -> tuple[IntArray, IntArray]:
        """Draw one uniformly random feasible strategy per device.

        Returns:
            ``(bs_of, server_of)`` index vectors of length ``I``; this is
            the selection rule of the ROPT baseline and the starting
            profile of CGBA (Algorithm 3, line 1).
        """
        bs_of = np.empty(self.num_devices, dtype=np.int64)
        server_of = np.empty(self.num_devices, dtype=np.int64)
        for i in range(self.num_devices):
            j = int(rng.integers(self._bs_choices[i].size))
            bs_of[i] = self._bs_choices[i][j]
            server_of[i] = self._server_choices[i][j]
        return bs_of, server_of


def to_networkx_graph(network: MECNetwork, coverage: BoolArray | None = None) -> nx.Graph:
    """Export the topology as a labelled networkx graph.

    Nodes carry a ``kind`` attribute (``"device"``, ``"bs"``,
    ``"cluster"``, ``"server"``); edges a ``link`` attribute (``"access"``,
    ``"fronthaul"``, ``"hosting"``).  Handy for plotting and for graph
    metrics in analyses.
    """
    graph = nx.Graph()
    for d in network.devices:
        graph.add_node(f"D{d.index}", kind="device", pos=d.position)
    for b in network.base_stations:
        graph.add_node(f"B{b.index}", kind="bs", pos=b.position)
    for c in network.clusters:
        graph.add_node(f"M{c.index}", kind="cluster")
    for s in network.servers:
        graph.add_node(f"S{s.index}", kind="server")
        graph.add_edge(f"M{s.cluster}", f"S{s.index}", link="hosting")
    for b in network.base_stations:
        for c in b.connected_clusters:
            graph.add_edge(
                f"B{b.index}",
                f"M{c}",
                link="fronthaul",
                medium=b.fronthaul_type.value,
            )
    if coverage is not None:
        for i, k in zip(*np.nonzero(coverage)):
            graph.add_edge(f"D{int(i)}", f"B{int(k)}", link="access")
    return graph
