"""Feasible strategy sets and graph views of the topology.

At each slot, device ``i`` picks a (base station, server) pair out of its
feasible set ``Z_i`` (constraints (1)-(3)): the base station must cover
the device and must have a fronthaul link to the server's cluster.
:class:`StrategySpace` precomputes these pairs from a coverage matrix so
the game-theoretic algorithms iterate over flat arrays.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.exceptions import InfeasibleError
from repro.network.topology import MECNetwork
from repro.types import BoolArray, IntArray


def reachable_servers(network: MECNetwork, bs_index: int) -> IntArray:
    """Indices of servers reachable through base station *bs_index*."""
    return network.servers_reachable_from(bs_index)


class StrategySpace:
    """Per-device feasible (base station, server) pairs.

    Args:
        network: The static topology.
        coverage: ``(I, K)`` boolean matrix of which base stations cover
            which devices at the moment of construction.  When coverage is
            static (the default scenario) one strategy space serves the
            whole simulation; with mobility, rebuild it per slot.
        available_servers: Optional ``(N,)`` availability mask; offline
            servers are excluded from every device's strategy set.

    Raises:
        InfeasibleError: If any device ends up with an empty strategy set.
    """

    def __init__(
        self,
        network: MECNetwork,
        coverage: BoolArray,
        available_servers: BoolArray | None = None,
    ) -> None:
        coverage = np.asarray(coverage, dtype=bool)
        if coverage.shape != (network.num_devices, network.num_base_stations):
            raise InfeasibleError(
                "coverage matrix shape must be (I, K) = "
                f"({network.num_devices}, {network.num_base_stations}), "
                f"got {coverage.shape}"
            )
        if available_servers is not None:
            available_servers = np.asarray(available_servers, dtype=bool)
            if available_servers.shape != (network.num_servers,):
                raise InfeasibleError(
                    f"available_servers must have shape (N,) = "
                    f"({network.num_servers},), got {available_servers.shape}"
                )
        self.network = network
        self.coverage = coverage
        self.available_servers = available_servers
        self._bs_choices: list[IntArray] = []
        self._server_choices: list[IntArray] = []
        for i in range(network.num_devices):
            bs_list: list[int] = []
            server_list: list[int] = []
            for k in np.flatnonzero(coverage[i]):
                for n in network.servers_reachable_from(int(k)):
                    if (
                        available_servers is not None
                        and not available_servers[int(n)]
                    ):
                        continue
                    bs_list.append(int(k))
                    server_list.append(int(n))
            if not bs_list:
                raise InfeasibleError(
                    f"{network.devices[i].label} has an empty strategy set",
                    device=i,
                )
            self._bs_choices.append(np.array(bs_list, dtype=np.int64))
            self._server_choices.append(np.array(server_list, dtype=np.int64))

    @property
    def num_devices(self) -> int:
        """Number of devices the space was built for."""
        return len(self._bs_choices)

    def pairs(self, device: int) -> tuple[IntArray, IntArray]:
        """Feasible strategies of *device* as parallel (bs, server) arrays."""
        return self._bs_choices[device], self._server_choices[device]

    def num_strategies(self, device: int) -> int:
        """Size of ``Z_i`` for *device*."""
        return int(self._bs_choices[device].size)

    def contains(self, device: int, bs: int, server: int) -> bool:
        """Whether (bs, server) is a feasible strategy for *device*."""
        ks, ns = self.pairs(device)
        return bool(np.any((ks == bs) & (ns == server)))

    def repair(
        self,
        bs_of: IntArray,
        server_of: IntArray,
        rng: np.random.Generator,
    ) -> tuple[IntArray, IntArray]:
        """Fix entries of an assignment that are infeasible in this space.

        Used when carrying a decision across slots under mobility: a
        device whose previous (base station, server) pair is no longer
        feasible gets a fresh uniformly random feasible pair; feasible
        entries are kept.  Returns new arrays; the inputs are not
        modified.
        """
        bs_of = np.array(bs_of, dtype=np.int64, copy=True)
        server_of = np.array(server_of, dtype=np.int64, copy=True)
        for i in range(self.num_devices):
            if not self.contains(i, int(bs_of[i]), int(server_of[i])):
                j = int(rng.integers(self._bs_choices[i].size))
                bs_of[i] = self._bs_choices[i][j]
                server_of[i] = self._server_choices[i][j]
        return bs_of, server_of

    def random_assignment(self, rng: np.random.Generator) -> tuple[IntArray, IntArray]:
        """Draw one uniformly random feasible strategy per device.

        Returns:
            ``(bs_of, server_of)`` index vectors of length ``I``; this is
            the selection rule of the ROPT baseline and the starting
            profile of CGBA (Algorithm 3, line 1).
        """
        bs_of = np.empty(self.num_devices, dtype=np.int64)
        server_of = np.empty(self.num_devices, dtype=np.int64)
        for i in range(self.num_devices):
            j = int(rng.integers(self._bs_choices[i].size))
            bs_of[i] = self._bs_choices[i][j]
            server_of[i] = self._server_choices[i][j]
        return bs_of, server_of


def to_networkx_graph(network: MECNetwork, coverage: BoolArray | None = None) -> nx.Graph:
    """Export the topology as a labelled networkx graph.

    Nodes carry a ``kind`` attribute (``"device"``, ``"bs"``,
    ``"cluster"``, ``"server"``); edges a ``link`` attribute (``"access"``,
    ``"fronthaul"``, ``"hosting"``).  Handy for plotting and for graph
    metrics in analyses.
    """
    graph = nx.Graph()
    for d in network.devices:
        graph.add_node(f"D{d.index}", kind="device", pos=d.position)
    for b in network.base_stations:
        graph.add_node(f"B{b.index}", kind="bs", pos=b.position)
    for c in network.clusters:
        graph.add_node(f"M{c.index}", kind="cluster")
    for s in network.servers:
        graph.add_node(f"S{s.index}", kind="server")
        graph.add_edge(f"M{s.cluster}", f"S{s.index}", link="hosting")
    for b in network.base_stations:
        for c in b.connected_clusters:
            graph.add_edge(
                f"B{b.index}",
                f"M{c}",
                link="fronthaul",
                medium=b.fronthaul_type.value,
            )
    if coverage is not None:
        for i, k in zip(*np.nonzero(coverage)):
            graph.add_edge(f"D{int(i)}", f"B{int(k)}", link="access")
    return graph
