"""Planar coverage geometry between devices and base stations."""

from __future__ import annotations

import numpy as np

from repro.types import BoolArray, FloatArray


def distances(device_positions: FloatArray, bs_positions: FloatArray) -> FloatArray:
    """Pairwise Euclidean distances, shape ``(I, K)``.

    Args:
        device_positions: ``(I, 2)`` device coordinates in metres.
        bs_positions: ``(K, 2)`` base-station coordinates in metres.
    """
    device_positions = np.asarray(device_positions, dtype=np.float64)
    bs_positions = np.asarray(bs_positions, dtype=np.float64)
    diff = device_positions[:, None, :] - bs_positions[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def coverage_matrix(
    device_positions: FloatArray,
    bs_positions: FloatArray,
    coverage_radii: FloatArray,
) -> BoolArray:
    """Boolean ``(I, K)`` matrix: device ``i`` is inside cell ``k``.

    A device may be covered by several base stations (overlapping cells of
    different sizes, per the paper's Fig. 1), or by none -- callers decide
    how to handle uncovered devices (the scenario builder guarantees
    coverage; the validator reports violations).
    """
    dist = distances(device_positions, bs_positions)
    radii = np.asarray(coverage_radii, dtype=np.float64)
    return dist <= radii[None, :]
