"""Cell partitioning: carving one MEC topology into independent cells.

The ROADMAP's scale-out path runs one DPP controller *per cell* instead
of one controller over the whole deployment.  A cell is a self-contained
slice of the topology -- base stations, the server clusters they reach,
and the devices they cover -- so the per-slot game each controller
solves shrinks from ``I`` devices to ``I / C``.  Because the solver cost
grows superlinearly in ``I``, the sum of the per-cell solves is far
cheaper than the monolithic solve even on one core.

:func:`partition_cells` clusters base stations by location (k-means with
restarts, scored on a latency proxy plus workload balance -- the same
objective pair as the edge-server-placement literature), then repairs
the assignment so every cell is simulatable on its own:

* every server cluster lands in a cell one of its connected base
  stations occupies (balanced across candidate cells);
* a wired base station follows its single cluster, so its fronthaul
  never crosses a cell boundary;
* each device joins the cell of its nearest covering base station, so
  coverage is preserved inside the cell;
* cells that end up with no devices are merged into their nearest
  populated neighbour.

:func:`extract_subnetwork` then materialises one cell as a standalone
:class:`~repro.network.topology.MECNetwork` with densely renumbered
indices, plus the local-to-global index maps needed to slice workloads
and merge results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.coverage import coverage_matrix
from repro.network.topology import FronthaulType, MECNetwork
from repro.network.validation import validate_network
from repro.types import FloatArray, Rng

__all__ = ["Cell", "CellPlan", "partition_cells", "extract_subnetwork"]


@dataclass(frozen=True)
class Cell:
    """One cell of a :class:`CellPlan`: global indices of its members.

    Attributes:
        index: Cell id within the plan.
        base_stations: Global base-station indices, ascending.
        clusters: Global server-cluster indices, ascending.
        servers: Global server indices (the union of the clusters'
            servers), ascending.
        devices: Global device indices, ascending.
    """

    index: int
    base_stations: tuple[int, ...]
    clusters: tuple[int, ...]
    servers: tuple[int, ...]
    devices: tuple[int, ...]

    @property
    def num_devices(self) -> int:
        return len(self.devices)


@dataclass(frozen=True)
class CellPlan:
    """A complete partition of a network into disjoint cells.

    Every base station, cluster, server, and device appears in exactly
    one cell (asserted at construction).  ``latency_score`` is the mean
    distance of base stations to their cell centroid (the placement
    literature's access-latency proxy) and ``balance_score`` the
    coefficient of variation of per-cell device counts; ``score`` is
    the weighted sum :func:`partition_cells` minimised over restarts.
    """

    cells: tuple[Cell, ...]
    score: float = 0.0
    latency_score: float = 0.0
    balance_score: float = 0.0

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigurationError("a CellPlan needs at least one cell")
        for kind in ("base_stations", "clusters", "servers", "devices"):
            seen: set[int] = set()
            for cell in self.cells:
                members = set(getattr(cell, kind))
                if seen & members:
                    raise ConfigurationError(
                        f"{kind} {sorted(seen & members)} appear in "
                        "multiple cells"
                    )
                seen |= members

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def device_counts(self) -> np.ndarray:
        """Per-cell device counts, in cell order."""
        return np.array([c.num_devices for c in self.cells], dtype=np.int64)


def _kmeans(
    points: FloatArray, k: int, rng: Rng, *, max_iter: int = 50
) -> np.ndarray:
    """Plain Lloyd's k-means over 2-D points; returns point labels."""
    centers = points[rng.choice(len(points), size=k, replace=False)]
    labels = np.zeros(len(points), dtype=np.int64)
    for _ in range(max_iter):
        dist = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = dist.argmin(axis=1)
        for c in range(k):
            mask = new_labels == c
            if mask.any():
                centers[c] = points[mask].mean(axis=0)
            else:  # dead centroid: reseed on a random point
                centers[c] = points[rng.integers(len(points))]
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels


def _assign_clusters(
    network: MECNetwork, bs_cell: np.ndarray, num_cells: int
) -> np.ndarray:
    """Cell of each server cluster, balanced over its candidate cells.

    A cluster's candidates are the cells of the base stations whose
    fronthaul reaches it; among candidates it goes to the cell holding
    the fewest clusters so far (ties to the cell more of its stations
    voted for, then the lower id).  Clusters no station reaches join
    the most common cell -- they are simply unreachable capacity.
    """
    connected: list[list[int]] = [[] for _ in network.clusters]
    for bs in network.base_stations:
        for m in bs.connected_clusters:
            connected[m].append(int(bs_cell[bs.index]))
    mode = int(np.bincount(bs_cell, minlength=num_cells).argmax())
    cluster_cell = np.zeros(network.num_clusters, dtype=np.int64)
    load = np.zeros(num_cells, dtype=np.int64)
    for m, cells in enumerate(connected):
        if not cells:
            cluster_cell[m] = mode
            continue
        candidates = sorted(set(cells))
        votes = {c: cells.count(c) for c in candidates}
        best = min(candidates, key=lambda c: (load[c], -votes[c], c))
        cluster_cell[m] = best
        load[best] += 1
    return cluster_cell


def _repair_base_stations(
    network: MECNetwork, bs_cell: np.ndarray, cluster_cell: np.ndarray
) -> np.ndarray:
    """Move stations so each reaches >= 1 of its clusters in-cell.

    Wired fronthaul connects to exactly one cluster, so the station
    must live in that cluster's cell; a wireless station keeps its
    k-means cell when any connected cluster landed there, else follows
    its first cluster.
    """
    repaired = bs_cell.copy()
    for bs in network.base_stations:
        cells_of_clusters = {int(cluster_cell[m]) for m in bs.connected_clusters}
        if bs.fronthaul_type is FronthaulType.WIRED:
            repaired[bs.index] = int(cluster_cell[bs.connected_clusters[0]])
        elif int(repaired[bs.index]) not in cells_of_clusters:
            repaired[bs.index] = min(cells_of_clusters)
    return repaired


def _assign_devices(network: MECNetwork, bs_cell: np.ndarray) -> np.ndarray:
    """Cell of each device: that of its nearest *covering* station."""
    positions = network.device_positions()
    bs_positions = network.base_station_positions()
    radii = np.array([b.coverage_radius for b in network.base_stations])
    coverage = coverage_matrix(positions, bs_positions, radii)
    dist = np.linalg.norm(
        positions[:, None, :] - bs_positions[None, :, :], axis=2
    )
    dist = np.where(coverage, dist, np.inf)
    nearest = dist.argmin(axis=1)
    if np.isinf(dist[np.arange(len(positions)), nearest]).any():
        uncovered = int(np.flatnonzero(np.isinf(dist.min(axis=1)))[0])
        raise ConfigurationError(
            f"device {uncovered} is covered by no base station; "
            "partition a validated network"
        )
    return bs_cell[nearest]


def _merge_empty_cells(
    network: MECNetwork,
    bs_cell: np.ndarray,
    cluster_cell: np.ndarray,
    device_cell: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fold cells without devices (or stations) into viable neighbours.

    A cell must hold at least one base station, one cluster, and one
    device to be a valid :class:`~repro.network.topology.MECNetwork`.
    The repair steps guarantee station => cluster, so the only dead
    cells are those that attracted no device (or no station at all);
    their stations and clusters move wholesale to the viable cell with
    the nearest station centroid, and devices are then re-assigned.
    """
    bs_positions = network.base_station_positions()
    while True:
        present = np.unique(bs_cell)
        viable = [
            int(c)
            for c in present
            if (device_cell == c).any() and (cluster_cell == c).any()
        ]
        dead = [int(c) for c in present if int(c) not in viable]
        # Clusters stranded in a cell with no base station follow suit.
        stranded = [
            int(c)
            for c in np.unique(cluster_cell)
            if not (bs_cell == c).any()
        ]
        dead = sorted(set(dead) | set(stranded))
        if not dead:
            return bs_cell, cluster_cell, device_cell
        if not viable:
            raise ConfigurationError(
                "partition produced no viable cell; the topology cannot "
                "be split this way"
            )
        centroids = {
            c: bs_positions[bs_cell == c].mean(axis=0) for c in viable
        }
        for c in dead:
            members = bs_cell == c
            if members.any():
                origin = bs_positions[members].mean(axis=0)
            else:
                origin = bs_positions.mean(axis=0)
            target = min(
                viable,
                key=lambda v: float(np.linalg.norm(origin - centroids[v])),
            )
            bs_cell = np.where(members, target, bs_cell)
            cluster_cell = np.where(cluster_cell == c, target, cluster_cell)
        device_cell = _assign_devices(network, bs_cell)


def _build_plan(
    network: MECNetwork,
    bs_cell: np.ndarray,
    cluster_cell: np.ndarray,
    device_cell: np.ndarray,
    *,
    balance_weight: float,
) -> CellPlan:
    """Assemble (renumbered) cells and score the partition."""
    present = sorted(int(c) for c in np.unique(bs_cell))
    cells = []
    for local, c in enumerate(present):
        clusters = tuple(int(m) for m in np.flatnonzero(cluster_cell == c))
        servers = tuple(
            int(s)
            for s in np.flatnonzero(np.isin(network.server_cluster, clusters))
        )
        cells.append(
            Cell(
                index=local,
                base_stations=tuple(
                    int(k) for k in np.flatnonzero(bs_cell == c)
                ),
                clusters=clusters,
                servers=servers,
                devices=tuple(int(i) for i in np.flatnonzero(device_cell == c)),
            )
        )
    bs_positions = network.base_station_positions()
    scale = float(
        np.linalg.norm(bs_positions.max(axis=0) - bs_positions.min(axis=0))
    )
    scale = scale if scale > 0.0 else 1.0
    distances = []
    for cell in cells:
        members = bs_positions[list(cell.base_stations)]
        distances.extend(
            np.linalg.norm(members - members.mean(axis=0), axis=1).tolist()
        )
    latency = float(np.mean(distances)) / scale
    counts = np.array([c.num_devices for c in cells], dtype=np.float64)
    balance = float(counts.std() / counts.mean()) if counts.mean() else 0.0
    return CellPlan(
        cells=tuple(cells),
        score=latency + balance_weight * balance,
        latency_score=latency,
        balance_score=balance,
    )


def partition_cells(
    network: MECNetwork,
    num_cells: int,
    *,
    rng: Rng | None = None,
    restarts: int = 8,
    balance_weight: float = 1.0,
) -> CellPlan:
    """Partition *network* into up to *num_cells* independent cells.

    Base stations are clustered by location with k-means (*restarts*
    independent initialisations; the plan minimising ``latency +
    balance_weight * balance`` wins), then repaired so every cell is a
    standalone topology (see the module docstring).  Merging empty
    cells can return fewer than *num_cells* cells.

    Args:
        network: The topology to split (must pass
            :func:`~repro.network.validation.validate_network`).
        num_cells: Target cell count; 1 returns the trivial plan.
        rng: Randomness for k-means initialisation; a fixed-seed
            generator when omitted, so the default is deterministic.
        restarts: Independent k-means initialisations to score.
        balance_weight: Weight of the device-count-balance term
            relative to the latency proxy.

    Raises:
        ConfigurationError: *num_cells* is out of range or the network
            cannot be split (e.g. an uncovered device).
    """
    if num_cells < 1:
        raise ConfigurationError(f"num_cells must be >= 1, got {num_cells}")
    if num_cells > network.num_base_stations:
        raise ConfigurationError(
            f"cannot split {network.num_base_stations} base stations into "
            f"{num_cells} cells"
        )
    if restarts < 1:
        raise ConfigurationError("restarts must be >= 1")
    if num_cells == 1:
        return CellPlan(
            cells=(
                Cell(
                    index=0,
                    base_stations=tuple(range(network.num_base_stations)),
                    clusters=tuple(range(network.num_clusters)),
                    servers=tuple(range(network.num_servers)),
                    devices=tuple(range(network.num_devices)),
                ),
            )
        )
    if rng is None:
        rng = np.random.default_rng(0)
    bs_positions = network.base_station_positions()
    best: CellPlan | None = None
    for _ in range(restarts):
        raw = _kmeans(bs_positions, num_cells, rng)
        cluster_cell = _assign_clusters(network, raw, num_cells)
        bs_cell = _repair_base_stations(network, raw, cluster_cell)
        device_cell = _assign_devices(network, bs_cell)
        bs_cell, cluster_cell, device_cell = _merge_empty_cells(
            network, bs_cell, cluster_cell, device_cell
        )
        plan = _build_plan(
            network,
            bs_cell,
            cluster_cell,
            device_cell,
            balance_weight=balance_weight,
        )
        # Prefer plans that kept more cells, then the better score.
        if best is None or (plan.num_cells, -plan.score) > (
            best.num_cells,
            -best.score,
        ):
            best = plan
    assert best is not None
    return best


@dataclass(frozen=True)
class CellIndexMaps:
    """Local-to-global index maps of one extracted subnetwork.

    ``devices[i_local] == i_global`` and likewise for the other
    entities; these are what slices workloads going in and re-labels
    results coming out.
    """

    base_stations: tuple[int, ...]
    clusters: tuple[int, ...]
    servers: tuple[int, ...]
    devices: tuple[int, ...]


def extract_subnetwork(
    network: MECNetwork, cell: Cell
) -> tuple[MECNetwork, CellIndexMaps]:
    """Materialise *cell* as a standalone, densely indexed network.

    Entities are renumbered to local indices (preserving relative
    order), cross-references (`cluster` fields, ``connected_clusters``,
    cluster server lists) are remapped, out-of-cell cluster links of
    wireless stations are dropped, and the suitability matrix is sliced
    to the cell's (device, server) block.  The result is validated
    structurally (energy-model convexity is skipped: the models are
    unchanged from the parent network).

    Raises:
        ConfigurationError: The cell references unknown entities or a
            wired station's cluster is outside the cell.
    """
    for kind, bound in (
        ("base_stations", network.num_base_stations),
        ("clusters", network.num_clusters),
        ("servers", network.num_servers),
        ("devices", network.num_devices),
    ):
        members = getattr(cell, kind)
        if not members:
            raise ConfigurationError(f"cell {cell.index} has no {kind}")
        if any(not 0 <= g < bound for g in members):
            raise ConfigurationError(
                f"cell {cell.index}: {kind} out of range for {network!r}"
            )
    cluster_local = {g: l for l, g in enumerate(cell.clusters)}
    server_local = {g: l for l, g in enumerate(cell.servers)}

    base_stations = []
    for local, g in enumerate(cell.base_stations):
        bs = network.base_stations[g]
        connected = tuple(
            cluster_local[m] for m in bs.connected_clusters if m in cluster_local
        )
        if not connected:
            raise ConfigurationError(
                f"cell {cell.index}: {bs.label} reaches no in-cell cluster"
            )
        base_stations.append(
            replace(bs, index=local, connected_clusters=connected)
        )
    clusters = tuple(
        replace(
            network.clusters[g],
            index=local,
            servers=tuple(
                server_local[s]
                for s in network.clusters[g].servers
                if s in server_local
            ),
        )
        for local, g in enumerate(cell.clusters)
    )
    servers = tuple(
        replace(
            network.servers[g],
            index=local,
            cluster=cluster_local[network.servers[g].cluster],
        )
        for local, g in enumerate(cell.servers)
    )
    devices = tuple(
        replace(network.devices[g], index=local)
        for local, g in enumerate(cell.devices)
    )
    suitability = network.suitability[
        np.ix_(np.array(cell.devices), np.array(cell.servers))
    ]
    subnetwork = MECNetwork(
        base_stations=tuple(base_stations),
        clusters=clusters,
        servers=servers,
        devices=devices,
        suitability=suitability,
    )
    validate_network(subnetwork, check_energy_convexity=False)
    maps = CellIndexMaps(
        base_stations=cell.base_stations,
        clusters=cell.clusters,
        servers=cell.servers,
        devices=cell.devices,
    )
    return subnetwork, maps
