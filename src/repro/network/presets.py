"""Named topology presets.

Beyond the paper's default (Sec. VI-A), experiments often want a
recognisable deployment shape without hand-tuning a dozen builder
fields.  Each preset returns a configured
:class:`~repro.network.builder.NetworkBuilder`; callers may still
override any field afterwards.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkBuilder


def paper_default(num_devices: int = 100) -> NetworkBuilder:
    """The paper's simulation setting: 6 BSs, 2 rooms x 8 servers."""
    return NetworkBuilder(num_devices=num_devices)


def dense_small_cells(num_devices: int = 100) -> NetworkBuilder:
    """Many short-range cells behind one macro umbrella.

    Twelve base stations (one macro), tight small-cell radii, still two
    server rooms -- stresses base-station selection: most devices see
    several viable cells with very different congestion.
    """
    return NetworkBuilder(
        num_devices=num_devices,
        num_base_stations=12,
        num_macro_stations=1,
        small_cell_radius_range=(300.0, 800.0),
        area_size=4_000.0,
    )


def metro_rings(num_devices: int = 100) -> NetworkBuilder:
    """A metro deployment: four rooms, wireless fronthaul everywhere.

    Every base station reaches every cluster (mmWave fronthaul), so the
    server-selection decision dominates -- useful for isolating the
    compute side of the game.
    """
    return NetworkBuilder(
        num_devices=num_devices,
        num_base_stations=8,
        num_clusters=4,
        servers_per_cluster=4,
        num_macro_stations=2,
        wireless_fronthaul_fraction=1.0,
        area_size=8_000.0,
    )


def edge_boxes(num_devices: int = 60) -> NetworkBuilder:
    """Small deployment of low-core boxes: compute-scarce.

    Two rooms of three 16-core servers each -- processing congestion
    dominates, so frequency scaling and server choice carry the run.
    """
    return NetworkBuilder(
        num_devices=num_devices,
        num_base_stations=4,
        num_clusters=2,
        servers_per_cluster=3,
        num_macro_stations=2,
        core_counts=(16,),
        area_size=3_000.0,
    )


#: Registry of preset factories by name (used by tests and tooling).
PRESETS: dict[str, Callable[..., NetworkBuilder]] = {
    "paper-default": paper_default,
    "dense-small-cells": dense_small_cells,
    "metro-rings": metro_rings,
    "edge-boxes": edge_boxes,
}


def get_preset(name: str, num_devices: int | None = None) -> NetworkBuilder:
    """Look up a preset builder by name.

    Raises:
        ConfigurationError: For an unknown preset name.
    """
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        )
    factory = PRESETS[name]
    if num_devices is None:
        return factory()
    return factory(num_devices)
