"""Entity model of the heterogeneous MEC system (paper Sec. III-A).

The system consists of ``K`` base stations, ``M`` server rooms (clusters)
hosting ``N`` edge servers in total, and ``I`` mobile devices.  Mobile
devices reach base stations over *access links*; base stations reach
server clusters over *fronthaul links* (wired fronthaul connects a base
station to exactly one cluster, wireless fronthaul may reach several).

All quantities use SI units: bandwidths in Hz, spectral efficiencies in
bps/Hz, positions in metres.  Clock frequencies are stated in GHz to
match the energy-model fits; :meth:`EdgeServer.speed` converts to
cycles/second including the core count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.energy.models import EnergyModel
from repro.exceptions import ConfigurationError, TopologyError
from repro.types import FloatArray, as_float_array


class FronthaulType(enum.Enum):
    """Physical medium of a base station's fronthaul link."""

    WIRED = "wired"
    WIRELESS = "wireless"


@dataclass(frozen=True)
class BaseStation:
    """A base station ``B_k``.

    Attributes:
        index: Position ``k`` within the network's base-station tuple.
        position: Planar (x, y) coordinates in metres.
        coverage_radius: Access-link coverage radius in metres.
        access_bandwidth: ``W_k^A`` in Hz.
        fronthaul_bandwidth: ``W_k^F`` in Hz.
        fronthaul_spectral_efficiency: ``h_k^F`` in bps/Hz (time-invariant
            per the paper; the algorithms would accept a varying value).
        fronthaul_type: Wired or wireless fronthaul medium.
        connected_clusters: Indices of the server clusters this base
            station's fronthaul reaches.  Wired stations connect to
            exactly one cluster.
        name: Human-readable label.
    """

    index: int
    position: tuple[float, float]
    coverage_radius: float
    access_bandwidth: float
    fronthaul_bandwidth: float
    fronthaul_spectral_efficiency: float
    fronthaul_type: FronthaulType
    connected_clusters: tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if self.coverage_radius <= 0:
            raise ConfigurationError(f"{self.label}: coverage radius must be positive")
        if self.access_bandwidth <= 0 or self.fronthaul_bandwidth <= 0:
            raise ConfigurationError(f"{self.label}: bandwidths must be positive")
        if self.fronthaul_spectral_efficiency <= 0:
            raise ConfigurationError(
                f"{self.label}: fronthaul spectral efficiency must be positive"
            )
        if not self.connected_clusters:
            raise ConfigurationError(f"{self.label}: connects to no cluster")
        if (
            self.fronthaul_type is FronthaulType.WIRED
            and len(self.connected_clusters) != 1
        ):
            raise ConfigurationError(
                f"{self.label}: wired fronthaul must connect to exactly one cluster"
            )

    @property
    def label(self) -> str:
        """Readable identifier used in error messages."""
        return self.name or f"BS{self.index}"

    def covers(self, position: tuple[float, float]) -> bool:
        """Whether a device at *position* is inside this station's cell."""
        dx = position[0] - self.position[0]
        dy = position[1] - self.position[1]
        return dx * dx + dy * dy <= self.coverage_radius * self.coverage_radius


@dataclass(frozen=True)
class EdgeServer:
    """An edge server ``S_n`` living in one server room.

    Attributes:
        index: Position ``n`` in the network's server tuple.
        cluster: Index of the hosting cluster (server room).
        cores: Number of CPU cores.  Following the paper's model, the
            processing speed seen by a task is the *clock frequency*
            (Eq. 7 uses ``f / (omega sigma phi)``); cores differentiate
            servers through their energy draw.  Set ``speed_scale`` to
            fold a parallelism factor into the speed instead.
        freq_min: ``F_n^L`` -- lowest allowed clock frequency, GHz.
        freq_max: ``F_n^U`` -- highest allowed clock frequency, GHz.
        energy_model: Total-server power draw as a function of the clock
            frequency in GHz (convex, per the paper's assumption).
        speed_scale: Multiplier applied to the clock when computing the
            processing speed (1.0 reproduces the paper's Eq. 7; the
            scenario builder can set it to the core count to model
            perfectly parallel tasks).
        name: Human-readable label.
    """

    index: int
    cluster: int
    cores: int
    freq_min: float
    freq_max: float
    energy_model: EnergyModel
    speed_scale: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"{self.label}: cores must be positive")
        if self.speed_scale <= 0:
            raise ConfigurationError(f"{self.label}: speed_scale must be positive")
        if not 0 < self.freq_min <= self.freq_max:
            raise ConfigurationError(
                f"{self.label}: need 0 < freq_min <= freq_max, "
                f"got [{self.freq_min}, {self.freq_max}]"
            )

    @property
    def label(self) -> str:
        """Readable identifier used in error messages."""
        return self.name or f"S{self.index}"

    @property
    def frequency_ratio(self) -> float:
        """``F_n^U / F_n^L``, the factor appearing in Theorem 3's ratio."""
        return self.freq_max / self.freq_min

    def speed(self, frequency_ghz: float) -> float:
        """Processing speed in cycles/second at a clock of *frequency_ghz*."""
        return self.speed_scale * frequency_ghz * 1e9


@dataclass(frozen=True)
class ServerCluster:
    """A server room hosting a set of edge servers."""

    index: int
    servers: tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError(f"{self.label}: empty cluster")

    @property
    def label(self) -> str:
        """Readable identifier used in error messages."""
        return self.name or f"Cluster{self.index}"


@dataclass(frozen=True)
class MobileDevice:
    """A mobile wireless device ``D_i``; its tasks arrive each slot."""

    index: int
    position: tuple[float, float]
    name: str = ""

    @property
    def label(self) -> str:
        """Readable identifier used in error messages."""
        return self.name or f"D{self.index}"


class MECNetwork:
    """The full MEC topology plus task-suitability parameters.

    This is the static part of the system: everything that does not
    change across time slots.  Per-slot state (channel conditions, task
    sizes, prices) lives in :class:`repro.core.state.SlotState`.

    Args:
        base_stations: The ``K`` base stations, ordered by index.
        clusters: The ``M`` server rooms, ordered by index.
        servers: The ``N`` edge servers, ordered by index.
        devices: The ``I`` mobile devices, ordered by index.
        suitability: ``(I, N)`` matrix of ``sigma_{i,n}`` in ``(0, 1]``.
    """

    def __init__(
        self,
        base_stations: tuple[BaseStation, ...],
        clusters: tuple[ServerCluster, ...],
        servers: tuple[EdgeServer, ...],
        devices: tuple[MobileDevice, ...],
        suitability: FloatArray,
    ) -> None:
        self.base_stations = tuple(base_stations)
        self.clusters = tuple(clusters)
        self.servers = tuple(servers)
        self.devices = tuple(devices)
        self.suitability = as_float_array(suitability, "suitability")
        self._check_structure()

        # Cached flat arrays used heavily by the core algorithms.
        self.access_bandwidth = np.array(
            [b.access_bandwidth for b in self.base_stations]
        )
        self.fronthaul_bandwidth = np.array(
            [b.fronthaul_bandwidth for b in self.base_stations]
        )
        self.fronthaul_se = np.array(
            [b.fronthaul_spectral_efficiency for b in self.base_stations]
        )
        self.freq_min = np.array([s.freq_min for s in self.servers])
        self.freq_max = np.array([s.freq_max for s in self.servers])
        self.cores = np.array([s.cores for s in self.servers], dtype=np.int64)
        self.speed_scale = np.array([s.speed_scale for s in self.servers])
        self.server_cluster = np.array(
            [s.cluster for s in self.servers], dtype=np.int64
        )

        # servers_by_bs[k] -- indices of servers reachable through B_k.
        self._servers_by_bs: list[np.ndarray] = []
        for bs in self.base_stations:
            reachable = [
                s.index for s in self.servers if s.cluster in bs.connected_clusters
            ]
            self._servers_by_bs.append(np.array(sorted(reachable), dtype=np.int64))

    # -- sizes -----------------------------------------------------------

    @property
    def num_base_stations(self) -> int:
        """``K``."""
        return len(self.base_stations)

    @property
    def num_clusters(self) -> int:
        """``M``."""
        return len(self.clusters)

    @property
    def num_servers(self) -> int:
        """``N``."""
        return len(self.servers)

    @property
    def num_devices(self) -> int:
        """``I``."""
        return len(self.devices)

    # -- derived quantities ----------------------------------------------

    def servers_reachable_from(self, bs_index: int) -> np.ndarray:
        """Indices of servers in clusters linked to base station *bs_index*."""
        return self._servers_by_bs[bs_index]

    def speeds(self, frequencies: FloatArray) -> FloatArray:
        """Per-server processing speeds (cycles/s) at the given clocks (GHz)."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        return self.speed_scale * frequencies * 1e9

    def energy_models(self) -> list[EnergyModel]:
        """The servers' energy models, ordered by server index."""
        return [s.energy_model for s in self.servers]

    def max_frequency_ratio(self) -> float:
        """``R_F = max_n F_n^U / F_n^L`` from Theorem 3."""
        return float(max(s.frequency_ratio for s in self.servers))

    def device_positions(self) -> FloatArray:
        """``(I, 2)`` array of device coordinates."""
        return np.array([d.position for d in self.devices], dtype=np.float64)

    def base_station_positions(self) -> FloatArray:
        """``(K, 2)`` array of base-station coordinates."""
        return np.array([b.position for b in self.base_stations], dtype=np.float64)

    # -- internal ----------------------------------------------------------

    def _check_structure(self) -> None:
        for seq, kind in (
            (self.base_stations, "base station"),
            (self.clusters, "cluster"),
            (self.servers, "server"),
            (self.devices, "device"),
        ):
            if not seq:
                raise TopologyError(f"network has no {kind}s")
            for pos, item in enumerate(seq):
                if item.index != pos:
                    raise TopologyError(
                        f"{kind} at position {pos} carries index {item.index}"
                    )
        n_clusters = len(self.clusters)
        for bs in self.base_stations:
            for c in bs.connected_clusters:
                if not 0 <= c < n_clusters:
                    raise TopologyError(f"{bs.label}: unknown cluster {c}")
        for cluster in self.clusters:
            for s in cluster.servers:
                if not 0 <= s < len(self.servers):
                    raise TopologyError(f"{cluster.label}: unknown server {s}")
                if self.servers[s].cluster != cluster.index:
                    raise TopologyError(
                        f"{cluster.label} lists {self.servers[s].label} but that "
                        f"server claims cluster {self.servers[s].cluster}"
                    )
        for server in self.servers:
            if server.index not in self.clusters[server.cluster].servers:
                raise TopologyError(
                    f"{server.label} is missing from its cluster's server list"
                )
        expected = (len(self.devices), len(self.servers))
        if self.suitability.shape != expected:
            raise TopologyError(
                f"suitability must have shape {expected}, got {self.suitability.shape}"
            )
        if np.any(self.suitability <= 0.0) or np.any(self.suitability > 1.0):
            raise TopologyError("suitability entries must lie in (0, 1]")

    def __repr__(self) -> str:
        return (
            f"MECNetwork(K={self.num_base_stations}, M={self.num_clusters}, "
            f"N={self.num_servers}, I={self.num_devices})"
        )
