"""Structural consistency checks for MEC networks.

:class:`~repro.network.topology.MECNetwork` already enforces referential
integrity at construction time; this module layers on the *semantic*
checks a scenario needs before simulation: every device can reach at
least one (base station, server) pair, all energy models are convex on
their frequency ranges, and coverage is not degenerate.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleError, TopologyError
from repro.network.coverage import coverage_matrix
from repro.network.topology import MECNetwork
from repro.types import BoolArray


def validate_network(
    network: MECNetwork,
    coverage: BoolArray | None = None,
    *,
    check_energy_convexity: bool = True,
) -> None:
    """Raise if *network* cannot support a feasible simulation.

    Args:
        network: The topology to validate.
        coverage: Optional explicit ``(I, K)`` coverage matrix; computed
            from positions and radii when omitted.
        check_energy_convexity: Numerically verify each server's energy
            model is convex on ``[F^L, F^U]`` (the paper's standing
            assumption; P2-B relies on it).

    Raises:
        InfeasibleError: A device has no feasible (base station, server)
            pair.
        TopologyError: A base station reaches no server, or an energy
            model fails the convexity check.
    """
    if coverage is None:
        coverage = coverage_matrix(
            network.device_positions(),
            network.base_station_positions(),
            np.array([b.coverage_radius for b in network.base_stations]),
        )
    if coverage.shape != (network.num_devices, network.num_base_stations):
        raise TopologyError(
            f"coverage must have shape (I, K) = "
            f"({network.num_devices}, {network.num_base_stations})"
        )

    for bs in network.base_stations:
        if network.servers_reachable_from(bs.index).size == 0:
            raise TopologyError(f"{bs.label} reaches no server")

    for i in range(network.num_devices):
        covered = np.flatnonzero(coverage[i])
        if covered.size == 0:
            raise InfeasibleError(
                f"{network.devices[i].label} is covered by no base station",
                device=i,
            )
        # Coverage alone is not enough: the covering stations must reach
        # at least one server between them (constraint (3)).
        if all(
            network.servers_reachable_from(int(k)).size == 0 for k in covered
        ):
            raise InfeasibleError(
                f"{network.devices[i].label} has no feasible "
                "(base station, server) pair",
                device=i,
            )

    if check_energy_convexity:
        for server in network.servers:
            if not server.energy_model.check_convex(server.freq_min, server.freq_max):
                raise TopologyError(
                    f"{server.label}: energy model is not convex on "
                    f"[{server.freq_min}, {server.freq_max}] GHz"
                )
