"""Structured observability: spans, sinks, monitors, traces, dashboard.

* :mod:`repro.obs.probe` -- the event bus: the no-op :class:`Tracer`
  (near-zero overhead when disabled) and the recording :class:`Probe`
  with nested spans, counters, and gauges.
* :mod:`repro.obs.sinks` -- in-memory per-phase aggregation with
  percentiles (:class:`PhaseAggregator`) and streaming JSONL trace
  files (:class:`JsonlSink`).
* :mod:`repro.obs.manifest` -- run manifests (config hash, seeds,
  package version, wall clock) written next to results.
* :mod:`repro.obs.monitors` -- domain health monitors on the bus
  (queue stability, budget drift, feasibility, theory guarantees,
  anomaly detection) producing structured alerts and a
  :class:`HealthReport`.
* :mod:`repro.obs.trace` -- trace analytics: typed JSONL loading,
  run summaries, regression diffs, and the crash-dump
  :class:`FlightRecorder`.
* :mod:`repro.obs.dashboard` -- the live per-slot terminal
  :class:`Dashboard`.
"""

from repro.obs.manifest import RunManifest, config_hash, manifest_path_for
from repro.obs.probe import NULL_TRACER, Probe, Sink, Tracer, as_tracer
from repro.obs.sinks import JsonlSink, PhaseAggregator, read_jsonl
from repro.obs.dashboard import Dashboard
from repro.obs.monitors import (
    Alert,
    AnomalyMonitor,
    BudgetDriftMonitor,
    FeasibilityMonitor,
    GuaranteeMonitor,
    HealthReport,
    Monitor,
    MonitorStatus,
    MonitorSuite,
    QueueStabilityMonitor,
    ResilienceMonitor,
    default_monitors,
)
from repro.obs.trace import (
    Delta,
    FlightRecorder,
    Trace,
    TraceDiff,
    diff_traces,
    load_trace,
)

__all__ = [
    "Tracer",
    "Probe",
    "Sink",
    "NULL_TRACER",
    "as_tracer",
    "PhaseAggregator",
    "JsonlSink",
    "read_jsonl",
    "RunManifest",
    "config_hash",
    "manifest_path_for",
    # monitors
    "Monitor",
    "MonitorSuite",
    "MonitorStatus",
    "Alert",
    "HealthReport",
    "QueueStabilityMonitor",
    "BudgetDriftMonitor",
    "FeasibilityMonitor",
    "GuaranteeMonitor",
    "AnomalyMonitor",
    "ResilienceMonitor",
    "default_monitors",
    # trace analytics
    "Trace",
    "load_trace",
    "Delta",
    "TraceDiff",
    "diff_traces",
    "FlightRecorder",
    # dashboard
    "Dashboard",
]
