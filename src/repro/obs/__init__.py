"""Structured observability: spans, sinks, monitors, traces, dashboard.

* :mod:`repro.obs.probe` -- the event bus: the no-op :class:`Tracer`
  (near-zero overhead when disabled) and the recording :class:`Probe`
  with nested spans, counters, and gauges.
* :mod:`repro.obs.sinks` -- in-memory per-phase aggregation with
  percentiles (:class:`PhaseAggregator`) and streaming JSONL trace
  files (:class:`JsonlSink`).
* :mod:`repro.obs.manifest` -- run manifests (config hash, seeds,
  package version, wall clock) written next to results.
* :mod:`repro.obs.monitors` -- domain health monitors on the bus
  (queue stability, budget drift, feasibility, theory guarantees,
  anomaly detection) producing structured alerts and a
  :class:`HealthReport`.
* :mod:`repro.obs.trace` -- trace analytics: typed JSONL loading,
  run summaries, regression diffs, and the crash-dump
  :class:`FlightRecorder`.
* :mod:`repro.obs.dashboard` -- the live per-slot terminal
  :class:`Dashboard`.
* :mod:`repro.obs.telemetry` -- the fleet metrics registry:
  process-safe counters/gauges/histograms, OpenMetrics rendering,
  cross-process snapshot merging, and per-kernel profiling hooks.
* :mod:`repro.obs.server` -- the stdlib HTTP exposition endpoint
  serving ``GET /metrics`` from a registry.
"""

from repro.obs.manifest import RunManifest, config_hash, manifest_path_for
from repro.obs.probe import NULL_TRACER, Probe, Sink, Tracer, as_tracer
from repro.obs.sinks import JsonlSink, PhaseAggregator, read_jsonl
from repro.obs.dashboard import Dashboard, render_profile_report
from repro.obs.monitors import (
    Alert,
    AnomalyMonitor,
    BudgetDriftMonitor,
    FeasibilityMonitor,
    GuaranteeMonitor,
    HealthReport,
    Monitor,
    MonitorStatus,
    MonitorSuite,
    OverloadMonitor,
    QueueStabilityMonitor,
    ResilienceMonitor,
    default_monitors,
)
from repro.obs.server import MetricsServer
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetrySink,
    histogram_summaries,
    instrument_kernels,
    metric_name,
    parse_openmetrics,
    telemetry_context,
)
from repro.obs.trace import (
    Delta,
    FlightRecorder,
    Trace,
    TraceDiff,
    diff_traces,
    load_trace,
)

__all__ = [
    "Tracer",
    "Probe",
    "Sink",
    "NULL_TRACER",
    "as_tracer",
    "PhaseAggregator",
    "JsonlSink",
    "read_jsonl",
    "RunManifest",
    "config_hash",
    "manifest_path_for",
    # monitors
    "Monitor",
    "MonitorSuite",
    "MonitorStatus",
    "Alert",
    "HealthReport",
    "QueueStabilityMonitor",
    "BudgetDriftMonitor",
    "FeasibilityMonitor",
    "GuaranteeMonitor",
    "AnomalyMonitor",
    "ResilienceMonitor",
    "OverloadMonitor",
    "default_monitors",
    # trace analytics
    "Trace",
    "load_trace",
    "Delta",
    "TraceDiff",
    "diff_traces",
    "FlightRecorder",
    # dashboard
    "Dashboard",
    "render_profile_report",
    # telemetry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TelemetrySink",
    "MetricsServer",
    "metric_name",
    "parse_openmetrics",
    "telemetry_context",
    "instrument_kernels",
    "histogram_summaries",
]
