"""Structured observability: spans, counters, sinks, manifests.

* :mod:`repro.obs.probe` -- the event bus: the no-op :class:`Tracer`
  (near-zero overhead when disabled) and the recording :class:`Probe`
  with nested spans, counters, and gauges.
* :mod:`repro.obs.sinks` -- in-memory per-phase aggregation with
  percentiles (:class:`PhaseAggregator`) and streaming JSONL trace
  files (:class:`JsonlSink`).
* :mod:`repro.obs.manifest` -- run manifests (config hash, seeds,
  package version, wall clock) written next to results.
"""

from repro.obs.manifest import RunManifest, config_hash, manifest_path_for
from repro.obs.probe import NULL_TRACER, Probe, Sink, Tracer, as_tracer
from repro.obs.sinks import JsonlSink, PhaseAggregator, read_jsonl

__all__ = [
    "Tracer",
    "Probe",
    "Sink",
    "NULL_TRACER",
    "as_tracer",
    "PhaseAggregator",
    "JsonlSink",
    "read_jsonl",
    "RunManifest",
    "config_hash",
    "manifest_path_for",
]
