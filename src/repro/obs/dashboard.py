"""A live terminal dashboard on the observability bus.

:class:`Dashboard` is a tracer sink: attach it to a
:class:`~repro.obs.probe.Probe` (``repro simulate --dashboard`` does
this) and it redraws a compact text frame after every simulated slot --
backlog/latency/cost/price sparklines, running averages against the
budget, engine work counters, degraded-mode (``resilience.*``)
counters, and the latest monitor alerts.

Rendering reuses :func:`repro.analysis.text_plots.sparkline`; pass
``ascii_only=True`` for dumb terminals and every glyph in the frame
stays 7-bit ASCII.  On non-TTY streams (pipes, CI logs) ANSI cursor
control is disabled automatically and frames are printed sequentially.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import IO

__all__ = ["Dashboard"]

#: ANSI "cursor home + clear below" used to redraw in place.
_ANSI_REDRAW = "\x1b[H\x1b[J"


class Dashboard:
    """Per-slot live dashboard (a tracer sink).

    Args:
        budget: Time-average energy budget ``Cbar`` shown next to the
            running cost average.
        stream: Output stream; ``sys.stdout`` (resolved at write time,
            so pytest capture works) when omitted.
        width: Sparkline width in characters (series keep a trailing
            window of this many samples).
        ascii_only: Render with 7-bit ASCII ramps only, and implies no
            ANSI cursor control -- safe for dumb terminals.
        use_ansi: Redraw in place with ANSI escapes; default auto
            (enabled on TTY streams unless *ascii_only*).
        refresh_every: Render every k-th slot (1 = every slot).
    """

    def __init__(
        self,
        *,
        budget: float | None = None,
        stream: "IO[str] | None" = None,
        width: int = 60,
        ascii_only: bool = False,
        use_ansi: bool | None = None,
        refresh_every: int = 1,
    ) -> None:
        self.budget = budget
        self._stream = stream
        self.width = int(width)
        self.ascii_only = bool(ascii_only)
        self._use_ansi = use_ansi
        self.refresh_every = max(1, int(refresh_every))
        history = self.width
        self._backlog: deque[float] = deque(maxlen=history)
        self._latency: deque[float] = deque(maxlen=history)
        self._cost: deque[float] = deque(maxlen=history)
        self._price: deque[float] = deque(maxlen=history)
        self._counters: dict[str, float] = {}
        self._alerts: deque[dict] = deque(maxlen=4)
        self._alert_count = 0
        self._slots = 0
        self._latency_sum = 0.0
        self._cost_sum = 0.0
        self._last_t: int | None = None

    # -- Sink protocol -------------------------------------------------
    def emit(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "counter":
            name = event["name"]
            self._counters[name] = self._counters.get(name, 0.0) + event["value"]
        elif kind == "gauge":
            if event["name"] == "queue.backlog":
                self._backlog.append(float(event["value"]))
            elif event["name"] == "slot.price":
                self._price.append(float(event["value"]))
        elif kind == "event":
            name = event["name"]
            if name == "alert":
                self._alerts.append(event["data"])
                self._alert_count += 1
            elif name == "slot":
                self._observe_slot(event["data"])
                if self._slots % self.refresh_every == 0:
                    self._write_frame()

    def close(self) -> None:
        stream = self._resolve_stream()
        if self._slots and not self._ansi_enabled(stream):
            stream.write("\n")

    # ------------------------------------------------------------------
    def _observe_slot(self, data: dict) -> None:
        self._slots += 1
        self._last_t = data.get("t", self._slots - 1)
        latency = float(data.get("latency", 0.0))
        cost = float(data.get("cost", 0.0))
        self._latency.append(latency)
        self._cost.append(cost)
        self._latency_sum += latency
        self._cost_sum += cost

    def _resolve_stream(self) -> "IO[str]":
        return self._stream if self._stream is not None else sys.stdout

    def _ansi_enabled(self, stream: "IO[str]") -> bool:
        if self.ascii_only:
            return False
        if self._use_ansi is not None:
            return self._use_ansi
        return bool(getattr(stream, "isatty", lambda: False)())

    def _write_frame(self) -> None:
        stream = self._resolve_stream()
        frame = self.render()
        if self._ansi_enabled(stream):
            stream.write(_ANSI_REDRAW + frame + "\n")
        else:
            stream.write(frame + "\n" + "=" * (self.width + 10) + "\n")
        stream.flush()

    def _spark(self, values: "deque[float]") -> str:
        # Imported lazily: repro.analysis pulls repro.core, which imports
        # repro.obs back -- a module-level import here would cycle.
        from repro.analysis.text_plots import sparkline

        return sparkline(
            list(values), ascii_only=self.ascii_only, empty="(no data)"
        )

    def render(self) -> str:
        """The current frame as a string (no stream side effects)."""
        mean_latency = self._latency_sum / self._slots if self._slots else 0.0
        mean_cost = self._cost_sum / self._slots if self._slots else 0.0
        budget_part = (
            f" / budget {self.budget:.4g}" if self.budget is not None else ""
        )
        header = (
            f"slot {self._last_t if self._last_t is not None else '-'}"
            f" | avg latency {mean_latency:.4g} s"
            f" | avg cost {mean_cost:.4g} $" + budget_part
        )
        lines = [header, "-" * max(len(header), self.width)]

        def row(label: str, values: "deque[float]", now_fmt: str = "{:.4g}") -> str:
            now = now_fmt.format(values[-1]) if values else "-"
            return f"{label:<8} {self._spark(values)}  now {now}"

        lines.append(row("backlog", self._backlog))
        lines.append(row("latency", self._latency))
        lines.append(row("cost", self._cost))
        lines.append(row("price", self._price))
        resilience = {
            n: v for n, v in self._counters.items() if n.startswith("resilience.")
        }
        engine_counters = {
            n: v for n, v in self._counters.items() if n not in resilience
        }
        if engine_counters:
            # Engine-panel counters in a curated order (the warm-start
            # and batched-P2-B counters tell the perf story), then any
            # remaining counters alphabetically, capped.
            preferred = (
                "engine.sweeps",
                "engine.moves",
                "engine.warm_start_hits",
                "p2b.scalar_solves",
                "p2b.batch_iters",
                "p2b.fastpath",
            )
            shown = [name for name in preferred if name in engine_counters]
            shown += [n for n in sorted(engine_counters) if n not in preferred]
            parts = " ".join(
                f"{name}={engine_counters[name]:.0f}" for name in shown[:8]
            )
            lines.append(f"{'engine':<8} {parts}")
        if resilience:
            # The degraded-mode panel: faults injected, fallback tiers
            # used, quarantines, checkpoints -- the resilience story.
            parts = " ".join(
                f"{name.removeprefix('resilience.')}={resilience[name]:.0f}"
                for name in sorted(resilience)[:8]
            )
            lines.append(f"{'resil':<8} {parts}")
        if self._alert_count:
            lines.append(f"alerts   {self._alert_count} raised; latest:")
            for alert in self._alerts:
                lines.append(
                    f"  [{alert.get('severity')}] {alert.get('monitor')}: "
                    f"{alert.get('message')}"
                )
        else:
            lines.append("alerts   (none)")
        return "\n".join(lines)


def render_profile_report(
    registry,
    *,
    names: "tuple[str, ...]" = ("repro_phase_seconds", "repro_kernel_seconds"),
    top: int = 12,
    ascii_only: bool = False,
) -> str:
    """Render the per-phase/per-kernel latency profile of a registry.

    One table per histogram family in *names* (missing families are
    skipped): the ``top`` hottest label sets by total seconds, with
    count, total, p50/p95 (interpolated from the histogram buckets),
    and a sparkline of the bucket occupancy -- a quick shape check that
    distinguishes "uniformly slow" from "bimodal with a slow tail".

    Args:
        registry: A :class:`~repro.obs.telemetry.MetricsRegistry`.
        names: Histogram family names to report.
        top: Rows per family.
        ascii_only: Sparklines render with 7-bit ASCII ramps only.
    """
    # Imported lazily: repro.analysis pulls repro.core, which imports
    # repro.obs back -- a module-level import here would cycle.
    from repro.analysis.text_plots import sparkline
    from repro.obs.telemetry import histogram_summaries

    out: list[str] = []
    for name in names:
        rows = histogram_summaries(registry, name)
        if not rows:
            continue
        if out:
            out.append("")
        out.append(name)
        headers = ("series", "count", "total s", "p50 ms", "p95 ms", "buckets")
        table = []
        for row in rows[: max(1, top)]:
            label = (
                ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
                or "(all)"
            )
            table.append(
                (
                    label,
                    str(row["count"]),
                    f"{row['sum']:.3f}",
                    f"{1e3 * row['p50']:.2f}",
                    f"{1e3 * row['p95']:.2f}",
                    sparkline(
                        [float(c) for c in row["bucket_counts"]],
                        ascii_only=ascii_only,
                        empty="(no data)",
                    ),
                )
            )
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in table))
            for c in range(len(headers) - 1)
        ]
        out.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
            + "  "
            + headers[-1]
        )
        out.append("  ".join("-" * w for w in widths) + "  " + "-" * 7)
        for r in table:
            out.append(
                "  ".join(v.ljust(w) for v, w in zip(r, widths)).rstrip()
                + "  "
                + r[-1]
            )
    if not out:
        return "(no profile histograms recorded)"
    return "\n".join(out)
