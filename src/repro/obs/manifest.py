"""Run manifests: what produced a trace/result, written next to it.

A manifest pins the four things needed to interpret (and re-run) a
recorded trace: the configuration (plus a stable hash of it), the root
seed(s), the package version, and wall-clock accounting.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro._version import __version__


def config_hash(config: dict) -> str:
    """A stable short hash of a JSON-able configuration dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunManifest:
    """Provenance of one run.

    Attributes:
        config: The run's configuration knobs (JSON-able).
        seed: Root seed, or a list of seeds for replications.
        created_unix: Creation time (``time.time()``).
        wall_clock_seconds: Total run duration; filled by :meth:`finish`.
        package: Producing package name.
        version: Producing package version.
        status: How the run ended: ``"completed"``, ``"interrupted"``
            (Ctrl-C), or ``"crashed"``.  Outside the config hash, so a
            partial trace's manifest still hashes like the completed
            run it was meant to be.
        backends: Kernel-backend availability on the producing machine
            (:func:`repro.kernels.available_backends`), plus which
            provider would back ``"jit"``.  Recorded so a trace replayed
            elsewhere can tell whether a backend difference could even
            exist (it never changes results, only wall-clock).  Outside
            the config hash for the same reason as ``status``.
        telemetry: Telemetry accounting for the run, when a
            :class:`~repro.obs.telemetry.MetricsRegistry` was attached
            -- see :meth:`record_telemetry`.  Family names and sample
            counts only (never sample values, which are machine- and
            timing-dependent); outside the config hash like ``status``.
    """

    config: dict = field(default_factory=dict)
    seed: "int | list[int] | None" = None
    created_unix: float = field(default_factory=time.time)
    wall_clock_seconds: float | None = None
    package: str = "repro"
    version: str = __version__
    status: str = "completed"
    backends: dict | None = None
    telemetry: dict | None = None

    def record_telemetry(self, registry) -> "RunManifest":
        """Stamp which metric families (and how many series) a run produced.

        Args:
            registry: The run's
                :class:`~repro.obs.telemetry.MetricsRegistry`.
        """
        self.telemetry = {
            "families": registry.families(),
            "series": {
                name: len(family._series)
                for name, family in sorted(registry._families.items())
            },
        }
        return self

    def finish(self) -> "RunManifest":
        """Stamp the wall-clock duration since creation."""
        self.wall_clock_seconds = time.time() - self.created_unix
        return self

    def to_dict(self) -> dict:
        if self.backends is None:
            from repro.kernels import available_backends, jit_provider

            self.backends = dict(
                available_backends(), jit_provider=jit_provider()
            )
        return {
            "package": self.package,
            "version": self.version,
            "config": self.config,
            "config_hash": config_hash(self.config),
            "seed": self.seed,
            "created_unix": self.created_unix,
            "wall_clock_seconds": self.wall_clock_seconds,
            "status": self.status,
            "backends": self.backends,
            "telemetry": self.telemetry,
        }

    def write(self, path: "str | Path") -> Path:
        """Write the manifest as JSON; returns the path written.

        The write is atomic (temp file then rename), so a run killed
        mid-write never leaves a truncated, unparseable manifest next to
        an otherwise readable trace.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path


def manifest_path_for(trace_path: "str | Path") -> Path:
    """The conventional manifest location next to a trace/result file."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.stem + ".manifest.json")
