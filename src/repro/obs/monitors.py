"""Domain health monitors on the observability bus.

PR 2's :class:`~repro.obs.probe.Probe` streams spans, counters, gauges,
and per-slot events, but nothing interpreted them.  This module adds the
interpretation layer: a :class:`Monitor` consumes the raw event stream
and raises structured :class:`Alert`\\ s when a *domain* signal goes bad
-- the paper's own correctness criteria turned into live checks:

* :class:`QueueStabilityMonitor` -- the DPP virtual queue must be mean
  rate stable (Theorem 2): sustained, non-decelerating backlog growth
  means the budget is unreachable and the time-average constraint will
  be violated.
* :class:`BudgetDriftMonitor` -- the realised time-average energy cost
  must approach ``Cbar`` (constraint (14)).
* :class:`FeasibilityMonitor` -- per-slot resource feasibility:
  bandwidth/compute shares sum to at most 1 per base station / server
  (constraints (4)-(6)) and every clock stays inside ``[F^L, F^U]``.
* :class:`GuaranteeMonitor` -- measured latencies checked against the
  CGBA/BDMA approximation guarantees via
  :func:`repro.core.theory.check_cgba_guarantee` /
  :func:`repro.core.theory.check_bdma_guarantee`.
* :class:`AnomalyMonitor` -- EWMA z-score anomaly detection on latency,
  price, and engine-counter series.
* :class:`ResilienceMonitor` -- degraded-mode activity (faults,
  fallbacks, quarantines, checkpoints, replication retries) from the
  ``resilience.*`` counters and events.
* :class:`OverloadMonitor` -- overload-protection activity (the
  ``shed`` events and ``overload.state`` gauge raised by the
  controller's admission control).

Monitors are grouped in a :class:`MonitorSuite`, itself a tracer sink:
``suite.attach(probe)`` subscribes it to the bus.  Every alert is
re-emitted on the bus as an ``event`` named ``"alert"`` (so JSONL traces
and the live dashboard see them), and :meth:`MonitorSuite.finish`
condenses the run into a :class:`HealthReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.topology import MECNetwork
    from repro.obs.probe import Probe, Tracer

__all__ = [
    "Alert",
    "MonitorStatus",
    "HealthReport",
    "Monitor",
    "MonitorSuite",
    "QueueStabilityMonitor",
    "BudgetDriftMonitor",
    "FeasibilityMonitor",
    "GuaranteeMonitor",
    "AnomalyMonitor",
    "ResilienceMonitor",
    "OverloadMonitor",
    "default_monitors",
]

#: Alert severities, mildest first (used to rank statuses).
SEVERITIES = ("warning", "critical")


@dataclass(frozen=True)
class Alert:
    """One structured finding raised by a monitor.

    Attributes:
        monitor: Name of the raising monitor.
        severity: ``"warning"`` or ``"critical"``.
        message: Human-readable description.
        t: Slot index the alert is anchored to (``None`` when unknown).
        data: Supporting numbers (thresholds, measured values).
    """

    monitor: str
    severity: str
    message: str
    t: int | None = None
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready view (the ``data`` payload of ``alert`` bus events)."""
        return {
            "monitor": self.monitor,
            "severity": self.severity,
            "message": self.message,
            "t": self.t,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class MonitorStatus:
    """End-of-run verdict of one monitor."""

    name: str
    status: str  # "ok" | "warning" | "critical"
    detail: str
    alerts: int


@dataclass(frozen=True)
class HealthReport:
    """The suite's end-of-run summary: one status per monitor plus alerts."""

    statuses: tuple[MonitorStatus, ...]
    alerts: tuple[Alert, ...]

    @property
    def ok(self) -> bool:
        """Whether every monitor finished clean (no alerts at all)."""
        return all(s.status == "ok" for s in self.statuses)

    @property
    def failing(self) -> bool:
        """Whether any monitor raised a critical alert."""
        return any(s.status == "critical" for s in self.statuses)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "failing": self.failing,
            "monitors": [
                {
                    "name": s.name,
                    "status": s.status,
                    "detail": s.detail,
                    "alerts": s.alerts,
                }
                for s in self.statuses
            ],
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def render(self) -> str:
        """Multi-line text report (printed by the CLI)."""
        verdict = "FAILING" if self.failing else ("DEGRADED" if not self.ok else "OK")
        lines = [f"health: {verdict} ({len(self.alerts)} alert(s))"]
        width = max((len(s.name) for s in self.statuses), default=0)
        for s in self.statuses:
            lines.append(
                f"  [{s.status:>8}] {s.name.ljust(width)}  {s.detail}"
            )
        for alert in self.alerts:
            where = f" @t={alert.t}" if alert.t is not None else ""
            lines.append(
                f"  ! {alert.severity}{where} {alert.monitor}: {alert.message}"
            )
        return "\n".join(lines)


class Monitor:
    """Base class: consume bus events, raise structured alerts.

    Subclasses override :meth:`observe` (called for every bus event) and
    optionally :meth:`finish` (end-of-run verdict).  Use :meth:`alert`
    to raise findings; the owning :class:`MonitorSuite` re-emits them on
    the bus.
    """

    #: Stable monitor name, used in alerts and reports.
    name: str = "monitor"

    def __init__(self) -> None:
        self.alerts: list[Alert] = []
        self._suite: "MonitorSuite | None" = None

    def observe(self, event: dict) -> None:
        """Consume one bus event (see :mod:`repro.obs.probe` for kinds)."""

    def finish(self) -> MonitorStatus:
        """The end-of-run verdict; default summarises raised alerts."""
        return self.status(self.detail())

    def detail(self) -> str:
        """One-line summary shown in the health report."""
        return f"{len(self.alerts)} alert(s)"

    def alert(
        self,
        severity: str,
        message: str,
        *,
        t: int | None = None,
        **data: float,
    ) -> Alert:
        """Raise an alert (recorded here, re-emitted on the bus)."""
        if t is None and self._suite is not None:
            t = self._suite.current_t
        payload: dict = dict(data)
        if self._suite is not None and self._suite.labels:
            # Suite labels (e.g. {"cell": 3} under sharding) ride on
            # every alert so merged cross-cell reports stay attributable.
            payload = {**self._suite.labels, **payload}
        alert = Alert(
            monitor=self.name, severity=severity, message=message, t=t,
            data=payload,
        )
        self.alerts.append(alert)
        if self._suite is not None:
            self._suite._publish(alert)
        return alert

    def status(self, detail: str) -> MonitorStatus:
        """Build a :class:`MonitorStatus` ranked by the worst alert raised."""
        worst = "ok"
        for alert in self.alerts:
            if alert.severity == "critical":
                worst = "critical"
                break
            worst = "warning"
        return MonitorStatus(
            name=self.name, status=worst, detail=detail, alerts=len(self.alerts)
        )


class MonitorSuite:
    """A set of monitors subscribed to one probe (itself a tracer sink).

    Args:
        monitors: The monitors to run.
        tracer: Optional tracer alerts are re-emitted on; set
            automatically by :meth:`attach`.
        labels: Constant labels merged into every alert's ``data``
            payload (e.g. ``{"cell": 3}`` for a per-cell suite under
            sharding), so alerts stay attributable after cross-cell
            merging.
    """

    def __init__(
        self,
        monitors: Iterable[Monitor],
        tracer: "Tracer | None" = None,
        *,
        labels: "dict | None" = None,
    ) -> None:
        self.monitors = list(monitors)
        self._tracer = tracer
        self.labels = dict(labels or {})
        #: Slot index of the most recent ``slot`` event seen.
        self.current_t: int | None = None
        self._report: HealthReport | None = None
        for monitor in self.monitors:
            monitor._suite = self

    def attach(self, probe: "Probe") -> "MonitorSuite":
        """Subscribe to *probe*'s event stream; returns self."""
        probe.add_sink(self)
        self._tracer = probe
        return self

    # -- Sink protocol -------------------------------------------------
    def emit(self, event: dict) -> None:
        if event["kind"] == "event":
            name = event["name"]
            if name == "alert":
                return  # our own re-emissions; never feed back
            if name == "slot":
                t = event["data"].get("t")
                self.current_t = int(t) if t is not None else None
        for monitor in self.monitors:
            monitor.observe(event)

    def close(self) -> None:  # nothing buffered
        pass

    # ------------------------------------------------------------------
    def _publish(self, alert: Alert) -> None:
        """Re-emit an alert as an ``alert`` bus event."""
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.event("alert", alert.to_dict())

    @property
    def alerts(self) -> list[Alert]:
        """Every alert raised so far, in emission order per monitor."""
        return [a for m in self.monitors for a in m.alerts]

    def finish(self) -> HealthReport:
        """Finalise every monitor into a :class:`HealthReport` (idempotent)."""
        if self._report is None:
            statuses = tuple(m.finish() for m in self.monitors)
            self._report = HealthReport(
                statuses=statuses, alerts=tuple(self.alerts)
            )
        return self._report


class QueueStabilityMonitor(Monitor):
    """Growth-rate test on the ``queue.backlog`` gauge.

    A stable DPP queue ramps towards its equilibrium ``Q*`` with a
    *decelerating* growth rate (the cost response drives ``C_t`` down
    towards ``Cbar`` as pressure builds); an infeasible budget produces
    sustained linear growth.  The monitor compares consecutive
    window-mean deltas: growth that persists for *patience* windows
    without decelerating by at least ``1 - decel_factor`` is flagged as
    divergence.

    Args:
        window: Gauge samples per comparison window.
        patience: Consecutive non-decelerating growth windows before the
            critical alert fires.
        decel_factor: A window's growth must be below this fraction of
            the previous window's growth to count as decelerating.
        rel_growth: Minimum growth per window (relative to the current
            backlog level) considered meaningful.
    """

    name = "queue_stability"

    def __init__(
        self,
        *,
        gauge: str = "queue.backlog",
        window: int = 16,
        patience: int = 2,
        decel_factor: float = 0.8,
        rel_growth: float = 0.02,
    ) -> None:
        super().__init__()
        self.gauge = gauge
        self.window = int(window)
        self.patience = int(patience)
        self.decel_factor = float(decel_factor)
        self.rel_growth = float(rel_growth)
        self._samples: list[float] = []
        self._prev_mean: float | None = None
        self._prev_delta: float | None = None
        self._strikes = 0
        self._fired = False

    def observe(self, event: dict) -> None:
        if event["kind"] != "gauge" or event["name"] != self.gauge:
            return
        self._samples.append(float(event["value"]))
        if len(self._samples) % self.window == 0:
            self._evaluate()

    def _evaluate(self) -> None:
        mean = float(
            sum(self._samples[-self.window:]) / self.window
        )
        if self._prev_mean is not None:
            delta = mean - self._prev_mean
            growing = delta > self.rel_growth * max(abs(mean), 1e-9)
            decelerating = (
                self._prev_delta is not None
                and delta < self.decel_factor * self._prev_delta
            )
            if growing and not decelerating:
                self._strikes += 1
            else:
                self._strikes = 0
            if self._strikes >= self.patience and not self._fired:
                self._fired = True
                self.alert(
                    "critical",
                    "virtual queue backlog growing without deceleration "
                    f"(+{delta:.4g}/window at Q~{mean:.4g}); the energy "
                    "budget looks unreachable",
                    backlog=mean,
                    growth_per_window=delta,
                )
            self._prev_delta = delta
        self._prev_mean = mean

    def detail(self) -> str:
        if not self._samples:
            return "no backlog samples"
        return (
            f"{len(self._samples)} samples, final Q={self._samples[-1]:.4g}"
        )


class BudgetDriftMonitor(Monitor):
    """Trailing-average energy cost vs the time-average budget ``Cbar``.

    During the run a *warning* fires when the trailing-window mean cost
    sits above ``budget * (1 + rel_tol)`` for *patience* consecutive
    slots (the DPP transient legitimately overspends while the queue is
    empty, so the trailing window plus patience filter the ramp).  At
    :meth:`finish` the constraint itself is checked: a final
    time-average cost above budget is a *critical* violation.

    Args:
        budget: The time-average budget ``Cbar``.
        window: Trailing slots averaged for the drift test.
        rel_tol: Relative overshoot tolerated before drift counts.
        patience: Consecutive drifting slots before the warning fires.
        final_tol: Relative tolerance on the end-of-run constraint.
    """

    name = "budget"

    def __init__(
        self,
        budget: float,
        *,
        window: int = 24,
        rel_tol: float = 0.10,
        patience: int = 12,
        final_tol: float = 0.01,
    ) -> None:
        super().__init__()
        self.budget = float(budget)
        self.window = int(window)
        self.rel_tol = float(rel_tol)
        self.patience = int(patience)
        self.final_tol = float(final_tol)
        self._costs: list[float] = []
        self._over_run = 0
        self._drift_fired = False

    def observe(self, event: dict) -> None:
        if event["kind"] != "event" or event["name"] != "slot":
            return
        cost = event["data"].get("cost")
        if cost is None:
            return
        self._costs.append(float(cost))
        if len(self._costs) < self.window:
            return
        trailing = sum(self._costs[-self.window:]) / self.window
        if trailing > self.budget * (1.0 + self.rel_tol):
            self._over_run += 1
        else:
            self._over_run = 0
        if self._over_run >= self.patience and not self._drift_fired:
            self._drift_fired = True
            self.alert(
                "warning",
                f"trailing {self.window}-slot mean cost {trailing:.4g} is "
                f"drifting above the budget {self.budget:.4g}",
                trailing_mean=trailing,
                budget=self.budget,
            )

    def finish(self) -> MonitorStatus:
        if self._costs:
            mean = sum(self._costs) / len(self._costs)
            if mean > self.budget * (1.0 + self.final_tol):
                self.alert(
                    "critical",
                    f"time-average cost {mean:.4g} violates the budget "
                    f"{self.budget:.4g}",
                    mean_cost=mean,
                    budget=self.budget,
                )
            detail = f"mean cost {mean:.4g} vs budget {self.budget:.4g}"
        else:
            detail = "no slots observed"
        return self.status(detail)


class FeasibilityMonitor(Monitor):
    """Per-slot feasibility of the granted decision.

    Consumes the ``feas.*`` gauges the controller emits each slot: the
    worst-case access/fronthaul/compute share sums (constraints
    (4)-(6), each must be ``<= 1``) and the largest clock excursion
    outside ``[F^L, F^U]`` (must be 0).  Any violation is critical: the
    closed-form Lemma-1 allocation should make these impossible, so a
    hit means a genuine solver bug or corrupted state.
    """

    name = "feasibility"

    _SHARE_GAUGES = (
        "feas.access_share_max",
        "feas.fronthaul_share_max",
        "feas.compute_share_max",
    )
    _FREQ_GAUGE = "feas.freq_excess"

    def __init__(self, *, tol: float = 1e-6) -> None:
        super().__init__()
        self.tol = float(tol)
        self._samples = 0

    def observe(self, event: dict) -> None:
        if event["kind"] != "gauge":
            return
        name, value = event["name"], float(event["value"])
        if name in self._SHARE_GAUGES:
            self._samples += 1
            if value > 1.0 + self.tol:
                self.alert(
                    "critical",
                    f"{name.removeprefix('feas.')} = {value:.6g} exceeds the "
                    "capacity of its resource (shares must sum to <= 1)",
                    value=value,
                )
        elif name == self._FREQ_GAUGE:
            if value > self.tol:
                self.alert(
                    "critical",
                    f"a server clock lies {value:.6g} GHz outside "
                    "[F^L, F^U]",
                    excess=value,
                )

    def detail(self) -> str:
        if self._samples == 0:
            return "no feasibility gauges observed"
        return f"{self._samples} share checks, worst within capacity"


class GuaranteeMonitor(Monitor):
    """Measured latencies vs the CGBA/BDMA approximation guarantees.

    Two checks, both routed through :mod:`repro.core.theory`:

    * per slot, when the ``slot`` event carries a ``latency_lower_bound``
      field (an optimum or any certified lower bound), the realised
      latency is checked against Theorem 2's ``2.62/(1-8 lambda)`` ratio
      via :func:`~repro.core.theory.check_cgba_guarantee`;
    * at :meth:`finish`, when a *network* and *reference_latency* were
      supplied, the run's mean latency is checked against Theorem 3's
      ``2.62 R_F/(1-8 lambda)`` ratio via
      :func:`~repro.core.theory.check_bdma_guarantee`.

    Args:
        network: Topology supplying ``R_F`` for the BDMA check.
        reference_latency: Per-slot reference (optimum or lower bound)
            the time-average latency is compared against.
        slack: CGBA's ``lambda``.
    """

    name = "guarantee"

    def __init__(
        self,
        network: "MECNetwork | None" = None,
        *,
        reference_latency: float | None = None,
        slack: float = 0.0,
    ) -> None:
        super().__init__()
        self.network = network
        self.reference_latency = reference_latency
        self.slack = float(slack)
        self._latencies: list[float] = []
        self._slot_checks = 0

    def observe(self, event: dict) -> None:
        if event["kind"] != "event" or event["name"] != "slot":
            return
        data = event["data"]
        latency = data.get("latency")
        if latency is None:
            return
        self._latencies.append(float(latency))
        bound = data.get("latency_lower_bound")
        if bound is None:
            return
        from repro.core.theory import check_cgba_guarantee

        self._slot_checks += 1
        check = check_cgba_guarantee(float(latency), float(bound), self.slack)
        if not check.satisfied:
            self.alert(
                "critical",
                f"slot latency {check.measured:.4g} exceeds the CGBA "
                f"guarantee bound {check.bound:.4g} (Theorem 2)",
                t=data.get("t"),
                measured=check.measured,
                bound=check.bound,
            )

    def finish(self) -> MonitorStatus:
        if not self._latencies:
            return self.status("no latency samples")
        mean = sum(self._latencies) / len(self._latencies)
        detail = f"mean latency {mean:.4g}, {self._slot_checks} slot check(s)"
        if self.network is not None and self.reference_latency is not None:
            from repro.core.theory import check_bdma_guarantee

            check = check_bdma_guarantee(
                self.network, mean, self.reference_latency, slack=self.slack
            )
            if not check.satisfied:
                self.alert(
                    "critical",
                    f"mean latency {check.measured:.4g} exceeds the BDMA "
                    f"guarantee bound {check.bound:.4g} (Theorem 3)",
                    measured=check.measured,
                    bound=check.bound,
                )
            detail += (
                f"; BDMA bound {check.bound:.4g} "
                f"(headroom {check.headroom:.2f}x)"
            )
        return self.status(detail)


class _EwmaDetector:
    """EWMA mean/variance tracker with a z-score test."""

    __slots__ = ("alpha", "mean", "var", "count")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def update(self, x: float) -> float:
        """Return the z-score of *x* against the state *before* folding it in."""
        if self.count == 0:
            z = 0.0
        else:
            std = math.sqrt(max(self.var, 0.0))
            std = max(std, 1e-12, 0.02 * abs(self.mean))
            z = (x - self.mean) / std
        delta = x - self.mean
        self.mean += self.alpha * delta
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta)
        self.count += 1
        return z


class AnomalyMonitor(Monitor):
    """EWMA z-score anomaly detection on per-slot series.

    Series are addressed by bus-derived names: gauges by their gauge
    name (e.g. ``"slot.price"``, ``"queue.backlog"``), numeric ``slot``
    event fields as ``"slot.<field>"`` (e.g. ``"slot.latency"``), and
    engine counters inside the slot record as ``"engine.<stat>"``
    (e.g. ``"engine.moves"``).

    Args:
        series: Series names to watch.
        alpha: EWMA smoothing factor.
        z_threshold: |z| above which a sample is anomalous.
        warmup: Samples per series before alerts may fire.
        max_alerts_per_series: Cap on alerts per series (noise guard).
    """

    name = "anomaly"

    DEFAULT_SERIES = ("slot.latency", "slot.price", "engine.moves")

    def __init__(
        self,
        series: Sequence[str] = DEFAULT_SERIES,
        *,
        alpha: float = 0.15,
        z_threshold: float = 6.0,
        warmup: int = 16,
        max_alerts_per_series: int = 3,
    ) -> None:
        super().__init__()
        self.series = tuple(series)
        self.z_threshold = float(z_threshold)
        self.warmup = int(warmup)
        self.max_alerts_per_series = int(max_alerts_per_series)
        self._detectors = {name: _EwmaDetector(alpha) for name in self.series}
        self._fired = {name: 0 for name in self.series}

    def observe(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "gauge":
            self._sample(event["name"], float(event["value"]))
        elif kind == "event" and event["name"] == "slot":
            data = event["data"]
            for key, value in data.items():
                if key != "t" and isinstance(value, (int, float)):
                    self._sample(f"slot.{key}", float(value))
            stats = data.get("engine_stats")
            if isinstance(stats, dict):
                for key, value in stats.items():
                    if isinstance(value, (int, float)):
                        self._sample(f"engine.{key}", float(value))

    def _sample(self, name: str, value: float) -> None:
        detector = self._detectors.get(name)
        if detector is None:
            return
        z = detector.update(value)
        if (
            detector.count > self.warmup
            and abs(z) > self.z_threshold
            and self._fired[name] < self.max_alerts_per_series
        ):
            self._fired[name] += 1
            self.alert(
                "warning",
                f"{name} anomaly: value {value:.4g} deviates z={z:.1f} "
                f"from its EWMA baseline {detector.mean:.4g}",
                value=value,
                z=z,
            )

    def detail(self) -> str:
        counts = {n: d.count for n, d in self._detectors.items() if d.count}
        if not counts:
            return "no watched samples"
        watched = ", ".join(f"{n} ({c})" for n, c in counts.items())
        return f"watched {watched}"


class ResilienceMonitor(Monitor):
    """Watches the degraded-mode machinery of the resilience layer.

    Consumes the ``resilience.*`` counters plus the ``fault`` /
    ``fallback`` / ``quarantine`` / ``solver_failure`` / ``checkpoint``
    / ``replication.*`` events, and turns sustained degradation into
    alerts:

    * warning when the fallback chain served more than
      ``fallback_rate_threshold`` of the slots (the primary solver is
      effectively down);
    * warning when the last-resort ``random`` tier was ever used (the
      decision quality floor, worth a look even once);
    * warning for every replication seed that failed permanently.

    A run with occasional fallbacks below the threshold stays ``ok`` --
    that is the resilience layer doing its job.

    Args:
        fallback_rate_threshold: Fraction of slots served by fallback
            above which the run is flagged as degraded.
    """

    name = "resilience"

    def __init__(self, *, fallback_rate_threshold: float = 0.25) -> None:
        super().__init__()
        self.fallback_rate_threshold = float(fallback_rate_threshold)
        self.counts: dict[str, float] = {}
        self.slots = 0
        self.fallback_slots = 0
        self.failed_seeds: list[int] = []

    def observe(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "counter" and event["name"].startswith("resilience."):
            name = event["name"]
            self.counts[name] = self.counts.get(name, 0.0) + float(event["value"])
        elif kind == "event":
            name = event["name"]
            if name == "slot":
                self.slots += 1
                if event["data"].get("fallback", "primary") != "primary":
                    self.fallback_slots += 1
            elif name == "replication.seed_failed":
                seed = event["data"].get("seed")
                self.failed_seeds.append(seed)
                self.alert(
                    "warning",
                    f"replication seed {seed} failed permanently after "
                    f"{event['data'].get('attempts')} attempt(s)",
                )

    def finish(self) -> MonitorStatus:
        if self.slots:
            rate = self.fallback_slots / self.slots
            if rate > self.fallback_rate_threshold:
                self.alert(
                    "warning",
                    f"fallback chain served {self.fallback_slots}/{self.slots} "
                    f"slots ({rate:.0%} > {self.fallback_rate_threshold:.0%}); "
                    "the primary solver is effectively degraded",
                    rate=rate,
                )
        if self.counts.get("resilience.fallback.random", 0.0) > 0:
            self.alert(
                "warning",
                "the last-resort random fallback tier was used "
                f"{int(self.counts['resilience.fallback.random'])} time(s)",
            )
        return self.status(self.detail())

    def detail(self) -> str:
        if not self.counts and not self.fallback_slots and not self.failed_seeds:
            return "no degraded-mode activity"
        parts = [
            f"{name.removeprefix('resilience.')}={int(value)}"
            for name, value in sorted(self.counts.items())
        ]
        if self.slots:
            parts.append(f"fallback slots {self.fallback_slots}/{self.slots}")
        return ", ".join(parts)


class OverloadMonitor(Monitor):
    """Watches the overload-protection layer (admission control).

    Consumes the ``shed`` events and the ``overload.state`` gauge that
    :class:`~repro.core.controller.DPPController` emits when an
    :class:`~repro.core.overload.OverloadPolicy` is active.  Raises a
    single warning at the first shed (the moment the arrival rate
    outran the budget), then keeps counting: the end-of-run detail
    reports how many slots shed load and how many tasks were dropped in
    total.  A run that never sheds stays ``ok`` with "no overload
    activity".
    """

    name = "overload"

    def __init__(self) -> None:
        super().__init__()
        self.shed_slots = 0
        self.shed_tasks = 0
        self.overloaded_slots = 0
        self.first_shed_t: "int | None" = None

    def observe(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "gauge" and event["name"] == "overload.state":
            if float(event["value"]) > 0.0:
                self.overloaded_slots += 1
        elif kind == "event" and event["name"] == "shed":
            data = event["data"]
            devices = data.get("devices", ())
            self.shed_slots += 1
            self.shed_tasks += len(devices)
            if self.first_shed_t is None:
                self.first_shed_t = data.get("t")
                self.alert(
                    "warning",
                    f"overload shedding engaged: dropped {len(devices)} "
                    "task(s) this slot (arrival rate outran the budget)",
                    t=self.first_shed_t,
                    devices=len(devices),
                )

    def detail(self) -> str:
        if not self.overloaded_slots and not self.shed_slots:
            return "no overload activity"
        return (
            f"overloaded {self.overloaded_slots} slot(s), shed "
            f"{self.shed_tasks} task(s) across {self.shed_slots} slot(s)"
        )


def default_monitors(
    *,
    budget: float | None = None,
    network: "MECNetwork | None" = None,
    reference_latency: float | None = None,
    slack: float = 0.0,
) -> list[Monitor]:
    """The standard monitor set for a DPP run.

    Always includes queue-stability, feasibility, anomaly, resilience,
    and overload monitors; adds the budget monitor when *budget* is
    known and the guarantee monitor when a *network* is supplied.
    """
    monitors: list[Monitor] = [
        QueueStabilityMonitor(),
        FeasibilityMonitor(),
        AnomalyMonitor(),
        ResilienceMonitor(),
        OverloadMonitor(),
    ]
    if budget is not None:
        monitors.append(BudgetDriftMonitor(budget))
    if network is not None:
        monitors.append(
            GuaranteeMonitor(
                network, reference_latency=reference_latency, slack=slack
            )
        )
    return monitors
