"""The event bus: tracers, spans, and the no-op fast path.

Two tracers exist.  :data:`NULL_TRACER` (an instance of the base
:class:`Tracer`) is the disabled path: every method is a constant-return
no-op and ``span`` hands back a shared, stateless context manager, so
instrumented hot loops pay only an attribute lookup and an empty call
per probe point.  :class:`Probe` is the enabled path: it keeps a span
stack (so span names compose into ``"slot/bdma/p2a"`` paths), stamps
wall-clock durations, and fans every event out to its sinks.

Events are plain dicts so sinks stay trivially serialisable:

=========  ===========================================================
``kind``   remaining fields
=========  ===========================================================
span       ``name`` (slash path), ``start`` (s since probe creation),
           ``seconds`` (duration)
counter    ``name``, ``value`` (accumulated by aggregating sinks)
gauge      ``name``, ``value`` (sampled, not accumulated)
event      ``name``, ``data`` (free-form payload, e.g. a slot record)
=========  ===========================================================
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Protocol


class Sink(Protocol):
    """Anything that can receive tracer events."""

    def emit(self, event: dict) -> None: ...

    def close(self) -> None: ...


class Tracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code holds a ``Tracer`` reference unconditionally and
    checks :attr:`enabled` only to skip *building* expensive payloads;
    the calls themselves are always safe.
    """

    __slots__ = ()

    #: Whether events are actually recorded anywhere.
    enabled: bool = False

    def span(self, name: str) -> "Any":
        """A context manager timing the enclosed block (no-op here)."""
        return _NULL_SPAN

    def counter(self, name: str, value: float = 1.0) -> None:
        """Accumulate *value* onto the named counter (no-op here)."""

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous sample of *name* (no-op here)."""

    def event(self, name: str, data: dict) -> None:
        """Emit a free-form payload, e.g. one slot's record (no-op here)."""

    def flush(self) -> None:
        """Push buffered sink state to durable storage (no-op here)."""

    def close(self) -> None:
        """Flush and close any sinks (no-op here)."""


class _NullSpan:
    """Shared, stateless context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The process-wide disabled tracer; safe to share (it has no state).
NULL_TRACER = Tracer()


def as_tracer(tracer: "Tracer | None") -> Tracer:
    """Normalise an optional tracer argument to a usable object."""
    return NULL_TRACER if tracer is None else tracer


class _Span:
    """A live timed span; created by :meth:`Probe.span`."""

    __slots__ = ("_probe", "_name", "_path", "_start")

    def __init__(self, probe: "Probe", name: str) -> None:
        self._probe = probe
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._probe._stack
        self._path = "/".join((*stack, self._name)) if stack else self._name
        stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        seconds = time.perf_counter() - self._start
        self._probe._stack.pop()
        self._probe._emit(
            {
                "kind": "span",
                "name": self._path,
                "start": self._start - self._probe._t0,
                "seconds": seconds,
            }
        )
        return False


class Probe(Tracer):
    """The enabled tracer: an event bus fanning out to sinks.

    A probe always owns a
    :class:`~repro.obs.sinks.PhaseAggregator` (exposed as
    :attr:`phases`) so per-phase statistics are available without any
    setup; further sinks (e.g. a
    :class:`~repro.obs.sinks.JsonlSink`) receive the same event
    stream.

    Args:
        sinks: Additional sinks beyond the built-in aggregator.
    """

    __slots__ = ("phases", "_sinks", "_stack", "_t0")

    enabled = True

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        from repro.obs.sinks import PhaseAggregator

        self.phases = PhaseAggregator()
        self._sinks: list[Sink] = [self.phases, *sinks]
        self._stack: list[str] = []
        self._t0 = time.perf_counter()

    def add_sink(self, sink: Sink) -> None:
        """Attach another sink to the event stream."""
        self._sinks.append(sink)

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def counter(self, name: str, value: float = 1.0) -> None:
        self._emit({"kind": "counter", "name": name, "value": float(value)})

    def gauge(self, name: str, value: float) -> None:
        self._emit({"kind": "gauge", "name": name, "value": float(value)})

    def event(self, name: str, data: dict) -> None:
        self._emit({"kind": "event", "name": name, "data": data})

    def merge_phase_state(
        self, state: dict | None, *, order: "tuple | None" = None
    ) -> None:
        """Fold a worker aggregator's :meth:`state_dict` into this probe.

        Used by :func:`repro.sim.replication.run_replications` and
        :class:`repro.sim.sharded.ShardedController` to merge
        per-process tracers back into the parent's.  Pass *order* -- a
        sortable key such as ``(start_slot, cell)`` or ``(seed,)`` --
        when snapshots arrive in arbitrary completion order: gauge
        series are then re-assembled in key order, preserving the
        last-value semantics a recency-sensitive consumer expects (see
        :meth:`repro.obs.sinks.PhaseAggregator.merge_state`).
        """
        if state:
            self.phases.merge_state(state, order=order)

    def flush(self) -> None:
        """Push every sink's buffered state to durable storage.

        Sinks without a ``flush`` method (aggregators, dashboards) are
        skipped; streaming sinks like
        :class:`~repro.obs.sinks.JsonlSink` get their file flushed.
        Called by the sharded salvage path so a killed worker never
        leaves a trace truncated mid-record.
        """
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def _emit(self, event: dict) -> None:
        for sink in self._sinks:
            sink.emit(event)
