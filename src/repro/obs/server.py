"""A pull-based metrics endpoint over stdlib ``http.server``.

:class:`MetricsServer` serves one :class:`~repro.obs.telemetry.MetricsRegistry`
as OpenMetrics text on ``GET /metrics``, from a daemon thread, so a
running simulation (sharded or not) can be scraped live::

    registry = MetricsRegistry()
    with MetricsServer(registry, port=9464) as server:
        print("scrape me:", server.url)   # curl http://127.0.0.1:9464/metrics
        ...run the simulation...

``port=0`` binds an ephemeral port (the bound port is available as
:attr:`MetricsServer.port` after :meth:`start`), which is what the tests
and the CI smoke job use.  No third-party dependency: the payload is
rendered by :meth:`MetricsRegistry.render_openmetrics` and the handler
is a ~30-line ``BaseHTTPRequestHandler``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import MetricsRegistry

__all__ = ["CONTENT_TYPE", "MetricsServer"]

#: The OpenMetrics content type (Prometheus negotiates the same string).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (exposition) and ``/`` (a tiny index)."""

    # The registry is attached to the *server* by MetricsServer.start().
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path in ("/metrics", "/metrics/"):
            body = self.server.registry.render_openmetrics().encode("utf-8")  # type: ignore[attr-defined]
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/":
            body = b'repro telemetry: scrape <a href="/metrics">/metrics</a>\n'
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "only / and /metrics exist here")

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class MetricsServer:
    """Serve a registry's OpenMetrics text from a daemon thread.

    Args:
        registry: The registry to expose (shared with the running
            simulation; its internal lock makes scrapes consistent).
        port: TCP port; ``0`` binds an ephemeral one.
        host: Bind address (loopback by default -- telemetry is not
            an authenticated surface).
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry
        self._requested_port = int(port)
        self.host = host
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> "MetricsServer":
        """Bind the socket and start serving; returns self (chainable)."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.registry = self.registry  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """The scrape URL, e.g. ``http://127.0.0.1:9464/metrics``."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
