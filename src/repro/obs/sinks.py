"""Event sinks: in-memory aggregation and JSONL trace files."""

from __future__ import annotations

import json
import math
from bisect import insort
from pathlib import Path

import numpy as np


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return math.nan
    rank = max(0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


class PhaseAggregator:
    """Accumulates span durations, counters, and gauge samples in memory.

    Span durations are kept per phase name so :meth:`table` can report
    percentiles; counters collapse to totals; gauges keep their sample
    series (e.g. the queue-backlog trajectory).
    """

    def __init__(self) -> None:
        self.spans: dict[str, list[float]] = {}
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, list[float]] = {}
        # Ordered gauge segments from merge_state(order=...): per gauge
        # name, (order_key, samples) pairs kept sorted by key so the
        # public `gauges` lists stay in logical (slot, cell) order no
        # matter what order pooled workers complete in.
        self._gauge_segments: dict[str, list[tuple[tuple, list[float]]]] = {}

    def emit(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "span":
            self.spans.setdefault(event["name"], []).append(event["seconds"])
        elif kind == "counter":
            name = event["name"]
            self.counters[name] = self.counters.get(name, 0.0) + event["value"]
        elif kind == "gauge":
            self.gauges.setdefault(event["name"], []).append(event["value"])
        # free-form "event" payloads are for streaming sinks, not stats

    def close(self) -> None:  # nothing buffered
        pass

    def phase_stats(self, name: str) -> dict[str, float]:
        """Count/total/p50/p95 for one span name."""
        values = sorted(self.spans.get(name, ()))
        return {
            "count": len(values),
            "total_seconds": float(sum(values)),
            "p50_seconds": _percentile(values, 0.50),
            "p95_seconds": _percentile(values, 0.95),
        }

    def merge(self, other: "PhaseAggregator") -> "PhaseAggregator":
        """Fold *other*'s accumulations into self."""
        return self.merge_state(other.state_dict())

    def state_dict(self) -> dict:
        """A picklable/JSON-able snapshot (for cross-process merging)."""
        return {
            "spans": {k: list(v) for k, v in self.spans.items()},
            "counters": dict(self.counters),
            "gauges": {k: list(v) for k, v in self.gauges.items()},
        }

    def merge_state(
        self, state: dict, *, order: "tuple | None" = None
    ) -> "PhaseAggregator":
        """Fold a :meth:`state_dict` snapshot into self.

        Spans and counters are order-insensitive (lists of durations,
        additive totals), but gauges carry *last-value* semantics: the
        tail of ``gauges["queue.backlog"]`` is "the current backlog".
        Pooled workers complete in arbitrary order, so appending their
        snapshots naively can leave an *older* epoch's samples at the
        tail.  Pass *order* -- any sortable key, conventionally
        ``(start_slot, cell)`` for sharded epochs or ``(seed,)`` for
        replications -- and each gauge list is re-assembled from its
        segments in key order.  Samples emitted directly on this
        aggregator before the first ordered merge sort before every
        merged segment.  ``order=None`` keeps the historical
        append-in-arrival-order behaviour.
        """
        for name, values in state.get("spans", {}).items():
            self.spans.setdefault(name, []).extend(values)
        for name, value in state.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, values in state.get("gauges", {}).items():
            if order is None:
                self.gauges.setdefault(name, []).extend(values)
                continue
            segments = self._gauge_segments.setdefault(name, [])
            if not segments and self.gauges.get(name):
                # First ordered merge for this gauge: keep any locally
                # emitted samples as the leading segment (the empty
                # tuple sorts before every real key).
                segments.append(((), list(self.gauges[name])))
            insort(segments, (tuple(order), list(values)), key=lambda s: s[0])
            self.gauges[name] = [v for _, vals in segments for v in vals]
        return self

    def table(self) -> str:
        """Render the per-phase profile (count, total s, p50, p95)."""
        headers = ("phase", "count", "total s", "p50 ms", "p95 ms")
        rows = []
        for name in sorted(self.spans):
            stats = self.phase_stats(name)
            rows.append(
                (
                    name,
                    str(stats["count"]),
                    f"{stats['total_seconds']:.3f}",
                    f"{1e3 * stats['p50_seconds']:.2f}",
                    f"{1e3 * stats['p95_seconds']:.2f}",
                )
            )
        for name in sorted(self.counters):
            rows.append((name, f"{self.counters[name]:.0f}", "", "", ""))
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
            for c in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
        return "\n".join(lines)


def _json_default(value: object) -> object:
    """Serialise numpy scalars/arrays that leak into event payloads."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


class JsonlSink:
    """Streams every event as one JSON line to a file.

    The file is written incrementally, so long horizons never buffer
    the trace in memory.  Schema: each line is one event dict as
    documented in :mod:`repro.obs.probe`.

    Usable as a context manager (the file is closed on exit)::

        with JsonlSink("run.jsonl", flush_every=1) as sink:
            probe.add_sink(sink)
            ...

    Args:
        path: Destination file (truncated).
        flush_every: Flush the stream after every N events; ``1`` makes
            each event durable immediately (crash safety at the price of
            one flush per event), ``None`` (default) leaves flushing to
            the runtime until :meth:`close`.
    """

    def __init__(
        self, path: "str | Path", *, flush_every: int | None = None
    ) -> None:
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be a positive int or None")
        self.path = Path(path)
        self.flush_every = flush_every
        self._since_flush = 0
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        self._fh.write(
            json.dumps(event, separators=(",", ":"), default=_json_default)
        )
        self._fh.write("\n")
        if self.flush_every is not None:
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._fh.flush()
                self._since_flush = 0

    def flush(self) -> None:
        """Push buffered lines to the OS now (safe after close).

        The sharded salvage path calls this (via
        :meth:`repro.obs.probe.Probe.flush`) before retrying a
        timed-out epoch job, so the trace on disk is whole-record
        durable even if the parent dies during the retry.
        """
        if not self._fh.closed:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: "str | Path") -> list[dict]:
    """Load a JSONL trace back into event dicts (testing/analysis aid)."""
    events = []
    with open(Path(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
