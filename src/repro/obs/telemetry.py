"""Fleet telemetry: a process-safe metrics registry with OpenMetrics export.

The observability bus (PR 2) streams *events*; this module adds the
*state* layer a scrape-based monitoring stack needs: a
:class:`MetricsRegistry` holding counters, gauges, and bounded-bucket
histograms (exact sum/count per series), addressable by metric name plus
a label set -- the Prometheus data model, without the dependency.

Three integration surfaces:

* :class:`TelemetrySink` -- a tracer sink bridging the event bus into a
  registry.  Spans become ``repro_phase_seconds`` histogram samples,
  counters become ``repro_<name>_total``, gauges become
  ``repro_<name>``, per-slot events feed ``repro_slot_latency`` /
  ``repro_slot_cost`` / ``repro_budget_drift``, and monitor alerts count
  into ``repro_alerts_total{monitor=,severity=}``.  Constant labels
  (e.g. ``cell="3"``) stamp every sample, so per-cell series never
  collide when merged.
* snapshot/merge -- :meth:`MetricsRegistry.snapshot` is a picklable
  value a pooled worker ships back with its epoch job;
  :meth:`MetricsRegistry.merge_snapshot` folds it into the parent's
  live registry (counters/histograms add; gauges keep the most recent
  value by a ``(generation, sequence)`` recency stamp, so out-of-order
  epoch completions cannot roll a gauge backwards).
  :meth:`MetricsRegistry.snapshot_delta` is the incremental variant for
  long-lived resident workers: it ships only the series that changed
  since the worker's previous flush (a per-registry flush generation
  counter tracks the baseline), in the same wire format, so the
  per-epoch merge cost stays flat as cell counts grow.
* kernel profiling -- :func:`instrument_kernels` wraps a resolved
  :class:`~repro.kernels.interface.KernelBackend` so every hot call
  (``candidate_costs`` / ``segment_first_min`` / ``gap_sweep`` /
  ``run_dynamics`` / ``golden_quad``) lands a wall-clock sample in the
  ``repro_kernel_seconds{kernel=,backend=}`` histogram.  The controller
  applies it automatically whenever a telemetry context is active
  (:func:`telemetry_context`), and the wrapper is thin enough to stay
  on by default (one ``perf_counter`` pair plus a bisect per call).

:meth:`MetricsRegistry.render_openmetrics` emits the OpenMetrics text
format (``# TYPE``/``# HELP`` metadata, ``_total``/``_bucket``/``_sum``
/``_count`` sample suffixes, a terminating ``# EOF``);
:func:`parse_openmetrics` is the matching validator used by tests and
the CI smoke job.  :mod:`repro.obs.server` serves the same text over
HTTP for live scrapes.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_right
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.interface import KernelBackend

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "MetricsRegistry",
    "TelemetrySink",
    "instrument_kernels",
    "maybe_instrument_kernels",
    "metric_name",
    "parse_openmetrics",
    "telemetry_context",
]

#: Default histogram buckets for wall-clock seconds: exponential from
#: 2 microseconds to 10 seconds (kernel calls live at the small end,
#: whole epochs at the large end); everything slower lands in +Inf.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    2e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_MANGLE_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Label-set key type: sorted ``(key, value)`` pairs (hashable, picklable).
LabelKey = "tuple[tuple[str, str], ...]"


def metric_name(bus_name: str, *, prefix: str = "repro") -> str:
    """Mangle a bus event name into an exposition-safe metric name.

    ``"queue.backlog"`` becomes ``"repro_queue_backlog"``: dots, dashes,
    and slashes collapse to underscores, and everything gains the
    ``repro_`` domain prefix per the naming scheme
    ``repro_<domain>_<name>``.
    """
    mangled = _MANGLE_RE.sub("_", bus_name).strip("_")
    return f"{prefix}_{mangled}" if prefix else mangled


def _label_key(labels: "Mapping[str, object] | None") -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


class _Family:
    """Base class for one named metric family (all its label series)."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict = {}

    def labels(self, **labels: object):
        """The bound series for one label set (created on first use)."""
        return self._bind(_label_key(labels))

    def _bind(self, key: LabelKey):
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def _bind(self, key: LabelKey) -> "_BoundCounter":
        return _BoundCounter(self, key)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        """Add *value* (must be >= 0) to the series for *labels*."""
        self._bind(_label_key(labels)).inc(value)

    def value(self, **labels: object) -> float:
        """Current total for one label set (0.0 if never incremented)."""
        return float(self._series.get(_label_key(labels), 0.0))


class _BoundCounter:
    __slots__ = ("_family", "_key")

    def __init__(self, family: Counter, key: LabelKey) -> None:
        self._family = family
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("counters only go up; use a gauge")
        family = self._family
        with family._lock:
            family._series[self._key] = (
                family._series.get(self._key, 0.0) + value
            )


class Gauge(_Family):
    """A last-value-wins sample per label set, with a recency stamp.

    The stamp is a ``(generation, sequence)`` pair ordered
    lexicographically.  Local sets use generation 0 and the registry's
    monotonic sequence; cross-process merges re-stamp incoming values
    with the caller-supplied generation (the epoch ordinal), so a stale
    worker snapshot that arrives late can never overwrite a newer one.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 registry: "MetricsRegistry") -> None:
        super().__init__(name, help, lock)
        self._registry = registry

    def _bind(self, key: LabelKey) -> "_BoundGauge":
        return _BoundGauge(self, key)

    def set(self, value: float, **labels: object) -> None:
        """Record *value* as the series' current level."""
        self._bind(_label_key(labels)).set(value)

    def value(self, **labels: object) -> float:
        """Current level for one label set (NaN if never set)."""
        entry = self._series.get(_label_key(labels))
        return float(entry[0]) if entry is not None else math.nan


class _BoundGauge:
    __slots__ = ("_family", "_key")

    def __init__(self, family: Gauge, key: LabelKey) -> None:
        self._family = family
        self._key = key

    def set(self, value: float) -> None:
        family = self._family
        with family._lock:
            family._registry._seq += 1
            family._series[self._key] = (
                float(value), (0, family._registry._seq)
            )


class Histogram(_Family):
    """Bounded cumulative-bucket histogram with exact sum and count.

    Buckets are upper bounds (``le``); an implicit ``+Inf`` bucket
    catches overflow, so ``observe`` never loses a sample.  The stored
    counts are per-bucket (non-cumulative); rendering accumulates them
    into the OpenMetrics cumulative form.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: "tuple[float, ...]") -> None:
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds

    def _bind(self, key: LabelKey) -> "_BoundHistogram":
        with self._lock:
            slot = self._series.get(key)
            if slot is None:
                # counts has len(bounds)+1 entries; the last is +Inf.
                slot = [[0] * (len(self.bounds) + 1), 0.0, 0]
                self._series[key] = slot
        return _BoundHistogram(self, key, slot)

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample into the right bucket."""
        self._bind(_label_key(labels)).observe(value)

    def stats(self, **labels: object) -> dict:
        """count/sum plus bucket-estimated p50/p95 for one label set."""
        slot = self._series.get(_label_key(labels))
        if slot is None:
            return {"count": 0, "sum": 0.0,
                    "p50": math.nan, "p95": math.nan}
        counts, total, count = slot
        return {
            "count": int(count),
            "sum": float(total),
            "p50": _bucket_quantile(self.bounds, counts, count, 0.50),
            "p95": _bucket_quantile(self.bounds, counts, count, 0.95),
        }


def _bucket_quantile(
    bounds: "tuple[float, ...]", counts: "list[int]", count: int, q: float
) -> float:
    """Estimate a quantile by linear interpolation inside its bucket.

    The estimate is bounded by construction (the +Inf bucket reports its
    lower edge), which is all a regression *gate* needs -- exact values
    come from the sum/count pair.
    """
    if count <= 0:
        return math.nan
    rank = q * count
    seen = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        lo = 0.0 if i == 0 else bounds[i - 1]
        hi = bounds[i] if i < len(bounds) else math.inf
        if seen + c >= rank:
            if hi == math.inf:
                return lo
            frac = (rank - seen) / c
            return lo + frac * (hi - lo)
        seen += c
    return bounds[-1]


class _BoundHistogram:
    __slots__ = ("_family", "_key", "_slot")

    def __init__(self, family: Histogram, key: LabelKey, slot: list) -> None:
        self._family = family
        self._key = key
        self._slot = slot

    def observe(self, value: float) -> None:
        family = self._family
        value = float(value)
        index = bisect_right(family.bounds, value)
        slot = self._slot
        with family._lock:
            slot[0][index] += 1
            slot[1] += value
            slot[2] += 1


class MetricsRegistry:
    """A named collection of metric families, safe to share with a
    scrape thread and to merge across processes.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    them twice with the same name returns the same family (a type clash
    raises).  One registry-wide lock covers every mutation and the
    snapshot/render paths -- cheap at this granularity, and it makes a
    mid-run scrape internally consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "dict[str, _Family]" = {}
        self._seq = 0
        # snapshot_delta() baseline: what the last flush already shipped,
        # keyed (kind, family name) -> per-series flushed value.
        self._flushed: dict = {}
        self._flush_generation = 0

    # -- family accessors ------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        # OpenMetrics puts the `_total` suffix on the *sample*, not the
        # family: `counter("repro_slots_total")` and
        # `counter("repro_slots")` are the same family `repro_slots`,
        # exposed as `repro_slots_total`.
        if name.endswith("_total"):
            name = name[: -len("_total")]
        return self._family(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(name, help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: "tuple[float, ...] | None" = None,
    ) -> Histogram:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = Histogram(
                        name, help, self._lock,
                        buckets or DEFAULT_SECONDS_BUCKETS,
                    )
                    self._families[name] = family
        if not isinstance(family, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family

    def _family(self, name: str, help: str, cls: type) -> "_Family":
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    if cls is Gauge:
                        family = Gauge(name, help, self._lock, self)
                    else:
                        family = cls(name, help, self._lock)
                    self._families[name] = family
        if type(family) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family

    def families(self) -> "dict[str, str]":
        """Family name -> kind, for quick introspection."""
        return {name: f.kind for name, f in sorted(self._families.items())}

    def get(self, name: str) -> "_Family | None":
        """The family registered under *name*, if any.

        Accepts the counter sample spelling too: ``get("x_total")``
        finds the counter family ``x``.
        """
        family = self._families.get(name)
        if family is None and name.endswith("_total"):
            candidate = self._families.get(name[: -len("_total")])
            if isinstance(candidate, Counter):
                family = candidate
        return family

    # -- cross-process snapshot/merge -------------------------------------

    def snapshot(self) -> dict:
        """A picklable value capturing every series (for epoch jobs)."""
        with self._lock:
            out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
            for name, family in self._families.items():
                if isinstance(family, Counter):
                    out["counters"][name] = {
                        "help": family.help,
                        "series": dict(family._series),
                    }
                elif isinstance(family, Gauge):
                    out["gauges"][name] = {
                        "help": family.help,
                        "series": {
                            k: (v, stamp)
                            for k, (v, stamp) in family._series.items()
                        },
                    }
                else:
                    assert isinstance(family, Histogram)
                    out["histograms"][name] = {
                        "help": family.help,
                        "bounds": family.bounds,
                        "series": {
                            k: [list(slot[0]), slot[1], slot[2]]
                            for k, slot in family._series.items()
                        },
                    }
            return out

    def snapshot_delta(self) -> "dict | None":
        """Only the series that changed since the previous flush.

        Same wire format as :meth:`snapshot` -- counter and histogram
        series are *increments* relative to the last ``snapshot_delta``
        call, gauges carry their current value and stamp -- so the
        receiving side folds a delta with the same
        :meth:`merge_snapshot` it uses for full snapshots.  Unchanged
        series are omitted entirely; a flush with no changes at all
        returns ``None`` (callers skip the ship).

        This is the resident-worker flush path: a long-lived sharded
        worker keeps one registry for the whole run and ships one small
        delta per epoch, instead of rebuilding a registry per epoch job
        and shipping every series every time.  Each call advances
        :attr:`flush_generation` (recorded in the delta under
        ``"flush_generation"``; :meth:`merge_snapshot` ignores the key).
        """
        with self._lock:
            self._flush_generation += 1
            out: dict = {
                "counters": {},
                "gauges": {},
                "histograms": {},
                "flush_generation": self._flush_generation,
            }
            for name, family in self._families.items():
                if isinstance(family, Counter):
                    # A never-flushed family (or series) ships even with
                    # nothing counted yet, so pre-bound counters (e.g. a
                    # sink's crash counter) appear on the receiving side
                    # exactly as a full snapshot would expose them.
                    fresh = ("counter", name) not in self._flushed
                    base = self._flushed.setdefault(("counter", name), {})
                    series = {}
                    for key, value in family._series.items():
                        if key not in base or value != base[key]:
                            series[key] = value - base.get(key, 0.0)
                            base[key] = value
                    if series or fresh:
                        out["counters"][name] = {
                            "help": family.help, "series": series,
                        }
                elif isinstance(family, Gauge):
                    fresh = ("gauge", name) not in self._flushed
                    base = self._flushed.setdefault(("gauge", name), {})
                    series = {}
                    for key, (value, stamp) in family._series.items():
                        if base.get(key) != stamp:
                            series[key] = (value, stamp)
                            base[key] = stamp
                    if series or fresh:
                        out["gauges"][name] = {
                            "help": family.help, "series": series,
                        }
                else:
                    assert isinstance(family, Histogram)
                    fresh = ("histogram", name) not in self._flushed
                    base = self._flushed.setdefault(("histogram", name), {})
                    series = {}
                    for key, slot in family._series.items():
                        previous = base.get(key)
                        if previous is None:
                            if slot[2] == 0:
                                continue  # pre-bound, never observed
                            series[key] = [list(slot[0]), slot[1], slot[2]]
                        elif previous[2] != slot[2]:
                            series[key] = [
                                [c - p for c, p in zip(slot[0], previous[0])],
                                slot[1] - previous[1],
                                slot[2] - previous[2],
                            ]
                        else:
                            continue
                        base[key] = [list(slot[0]), slot[1], slot[2]]
                    if series or fresh:
                        out["histograms"][name] = {
                            "help": family.help,
                            "bounds": family.bounds,
                            "series": series,
                        }
            if not (out["counters"] or out["gauges"] or out["histograms"]):
                return None
            return out

    @property
    def flush_generation(self) -> int:
        """How many :meth:`snapshot_delta` flushes have happened."""
        return self._flush_generation

    def merge_snapshot(
        self, snap: "dict | None", *, generation: "int | None" = None
    ) -> None:
        """Fold a worker :meth:`snapshot` into this registry.

        Counters and histograms *add* (worker registries are fresh per
        epoch job, so their series are deltas); gauges keep whichever
        value has the larger ``(generation, sequence)`` stamp.  Pass the
        epoch ordinal as *generation* so later epochs win regardless of
        the order their futures complete in.
        """
        if not snap:
            return
        for name, data in snap.get("counters", {}).items():
            family = self.counter(name, data.get("help", ""))
            with self._lock:
                for key, value in data["series"].items():
                    family._series[key] = family._series.get(key, 0.0) + value
        for name, data in snap.get("gauges", {}).items():
            family = self.gauge(name, data.get("help", ""))
            with self._lock:
                for key, (value, stamp) in data["series"].items():
                    if generation is not None:
                        stamp = (generation, stamp[1])
                    current = family._series.get(key)
                    if current is None or stamp >= current[1]:
                        family._series[key] = (value, stamp)
        for name, data in snap.get("histograms", {}).items():
            family = self.histogram(
                name, data.get("help", ""), buckets=tuple(data["bounds"])
            )
            if family.bounds != tuple(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds disagree across "
                    "processes; cannot merge"
                )
            with self._lock:
                for key, (counts, total, count) in data["series"].items():
                    slot = family._series.get(key)
                    if slot is None:
                        family._series[key] = [list(counts), total, count]
                    else:
                        for i, c in enumerate(counts):
                            slot[0][i] += c
                        slot[1] += total
                        slot[2] += count

    # -- exposition --------------------------------------------------------

    def render_openmetrics(self) -> str:
        """The registry as OpenMetrics text (ends with ``# EOF``)."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                lines.append(f"# TYPE {name} {family.kind}")
                if family.help:
                    lines.append(
                        f"# HELP {name} "
                        + family.help.replace("\\", "\\\\").replace("\n", "\\n")
                    )
                if isinstance(family, Counter):
                    for key in sorted(family._series):
                        lines.append(
                            f"{name}_total{_render_labels(key)} "
                            f"{_format_value(family._series[key])}"
                        )
                elif isinstance(family, Gauge):
                    for key in sorted(family._series):
                        value = family._series[key][0]
                        lines.append(
                            f"{name}{_render_labels(key)} "
                            f"{_format_value(value)}"
                        )
                else:
                    assert isinstance(family, Histogram)
                    bounds = (*family.bounds, math.inf)
                    for key in sorted(family._series):
                        counts, total, count = family._series[key]
                        cumulative = 0
                        for bound, c in zip(bounds, counts):
                            cumulative += c
                            le = (("le", _format_le(bound)),)
                            lines.append(
                                f"{name}_bucket{_render_labels(key, le)} "
                                f"{cumulative}"
                            )
                        lines.append(
                            f"{name}_sum{_render_labels(key)} "
                            f"{_format_value(total)}"
                        )
                        lines.append(f"{name}_count{_render_labels(key)} {count}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


# -- OpenMetrics text parsing (the validator side) -------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_SUFFIXES = ("_total", "_bucket", "_sum", "_count")


def _parse_sample_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_openmetrics(text: str) -> dict:
    """Parse (and validate) OpenMetrics text into families.

    Returns ``{family: {"type": kind, "help": str | None, "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Raises ``ValueError``
    on structural problems: a missing ``# EOF`` terminator, a sample
    before its ``# TYPE`` line, a malformed line, or a sample name that
    does not belong to a declared family.  This is the scrape-side
    contract check used by tests and the CI smoke job (no
    ``prometheus_client`` dependency needed).
    """
    families: dict = {}
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("OpenMetrics text must end with '# EOF'")
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ValueError(f"line {lineno}: blank lines are not allowed")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            _, keyword, name, rest = parts
            if keyword == "TYPE":
                if name in families:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                if rest not in ("counter", "gauge", "histogram", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {rest!r}"
                    )
                families[name] = {"type": rest, "help": None, "samples": []}
            else:
                if name not in families:
                    raise ValueError(
                        f"line {lineno}: HELP before TYPE for {name!r}"
                    )
                families[name]["help"] = rest
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        family_name = sample_name
        for suffix in _SUFFIXES:
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                family_name = sample_name[: -len(suffix)]
                break
        if family_name not in families:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no TYPE metadata"
            )
        labels = {
            k: v.encode().decode("unicode_escape")
            for k, v in _LABEL_PAIR_RE.findall(match.group("labels") or "")
        }
        families[family_name]["samples"].append(
            (sample_name, labels, _parse_sample_value(match.group("value")))
        )
    return families


# -- the bus -> registry bridge --------------------------------------------


class TelemetrySink:
    """A tracer sink publishing bus events into a :class:`MetricsRegistry`.

    Mapping (names follow the ``repro_<domain>_<name>`` scheme):

    =========================  ============================================
    bus event                  registry metric
    =========================  ============================================
    span ``slot/bdma/p2a``     ``repro_phase_seconds{phase="slot/bdma/p2a"}``
    counter ``engine.moves``   ``repro_engine_moves_total``
    gauge ``queue.backlog``    ``repro_queue_backlog``
    event ``slot``             ``repro_slots_total``, ``repro_slot_latency``,
                               ``repro_slot_cost``, ``repro_budget_drift``
                               (running mean of ``theta = C_t - Cbar``)
    event ``alert``            ``repro_alerts_total{monitor=,severity=}``
    event ``shard.epoch``      ``repro_shard_completed_slots``
    event ``crash``            ``repro_crashes_total``
    event ``shed``             ``repro_shed_tasks_total``
    =========================  ============================================

    Args:
        registry: Destination registry.
        labels: Constant labels stamped on every sample (e.g.
            ``{"cell": "3"}`` inside a sharded worker).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        labels: "Mapping[str, object] | None" = None,
    ) -> None:
        self.registry = registry
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        for key in self.labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        self._phase_seconds = registry.histogram(
            "repro_phase_seconds", "Wall-clock seconds per controller phase"
        )
        self._slots = registry.counter(
            "repro_slots_total", "Simulated slots observed on the bus"
        ).labels(**self.labels)
        self._slot_latency = registry.gauge(
            "repro_slot_latency", "Most recent per-slot overall latency (s)"
        ).labels(**self.labels)
        self._slot_cost = registry.gauge(
            "repro_slot_cost", "Most recent per-slot energy cost ($)"
        ).labels(**self.labels)
        self._budget_drift = registry.gauge(
            "repro_budget_drift",
            "Running mean of theta = C_t - Cbar since this sink started "
            "(positive = overspending the time-average budget)",
        ).labels(**self.labels)
        self._alerts = registry.counter(
            "repro_alerts_total", "Monitor alerts raised, by monitor/severity"
        )
        self._crashes = registry.counter(
            "repro_crashes_total", "Simulation crash events"
        ).labels(**self.labels)
        self._shed = registry.counter(
            "repro_shed_tasks_total",
            "Tasks shed by overload admission control",
        ).labels(**self.labels)
        # Hot-path caches: bus name -> bound series.
        self._bound_counters: dict = {}
        self._bound_gauges: dict = {}
        self._bound_phases: dict = {}
        self._theta_sum = 0.0
        self._theta_count = 0

    # -- Sink protocol -------------------------------------------------
    def emit(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "span":
            name = event["name"]
            bound = self._bound_phases.get(name)
            if bound is None:
                bound = self._phase_seconds.labels(phase=name, **self.labels)
                self._bound_phases[name] = bound
            bound.observe(event["seconds"])
        elif kind == "counter":
            name = event["name"]
            bound = self._bound_counters.get(name)
            if bound is None:
                bound = self.registry.counter(
                    metric_name(name), f"Bus counter {name!r}"
                ).labels(**self.labels)
                self._bound_counters[name] = bound
            bound.inc(event["value"])
        elif kind == "gauge":
            name = event["name"]
            bound = self._bound_gauges.get(name)
            if bound is None:
                bound = self.registry.gauge(
                    metric_name(name), f"Bus gauge {name!r}"
                ).labels(**self.labels)
                self._bound_gauges[name] = bound
            bound.set(event["value"])
        else:  # kind == "event"
            name = event["name"]
            if name == "slot":
                data = event["data"]
                self._slots.inc()
                latency = data.get("latency")
                if latency is not None:
                    self._slot_latency.set(latency)
                cost = data.get("cost")
                if cost is not None:
                    self._slot_cost.set(cost)
                theta = data.get("theta")
                if theta is not None:
                    self._theta_sum += float(theta)
                    self._theta_count += 1
                    self._budget_drift.set(self._theta_sum / self._theta_count)
            elif name == "alert":
                data = event["data"]
                self._alerts.inc(
                    1.0,
                    monitor=str(data.get("monitor", "unknown")),
                    severity=str(data.get("severity", "unknown")),
                    **self.labels,
                )
            elif name == "shard.epoch":
                self.registry.gauge(
                    "repro_shard_completed_slots",
                    "Slots completed by the sharded run so far",
                ).set(event["data"].get("completed", 0), **self.labels)
            elif name == "crash":
                self._crashes.inc()
            elif name == "shed":
                self._shed.inc(
                    float(len(event["data"].get("devices", ())))
                )

    def close(self) -> None:  # registry outlives the sink
        pass


# -- kernel profiling -------------------------------------------------------

_KERNEL_CALLS = (
    "candidate_costs",
    "segment_first_min",
    "gap_sweep",
    "run_dynamics",
    "golden_quad",
)


def instrument_kernels(
    backend: "KernelBackend",
    registry: MetricsRegistry,
    labels: "Mapping[str, object] | None" = None,
) -> "KernelBackend":
    """Wrap a resolved backend so every kernel call is timed.

    Returns a new frozen :class:`~repro.kernels.interface.KernelBackend`
    whose callables record wall-clock samples into
    ``repro_kernel_seconds{kernel=<call>, backend=<name>}``.  The
    wrapper is call-signature transparent and adds one ``perf_counter``
    pair plus a locked bucket increment per call (~1 microsecond) --
    cheap enough to stay on by default next to kernels that run for
    tens of microseconds and up.
    """
    from dataclasses import replace
    from time import perf_counter

    histogram = registry.histogram(
        "repro_kernel_seconds",
        "Wall-clock seconds per kernel-backend call",
    )
    wrapped = {}
    for call in _KERNEL_CALLS:
        fn = getattr(backend, call)
        if fn is None:
            continue
        bound = histogram.labels(
            kernel=call, backend=backend.name, **(labels or {})
        )

        def timed(*args, _fn=fn, _bound=bound):
            start = perf_counter()
            out = _fn(*args)
            _bound.observe(perf_counter() - start)
            return out

        wrapped[call] = timed
    return replace(backend, **wrapped)


# -- the active telemetry context ------------------------------------------

#: Process-global ``(registry, labels)`` pair consulted by
#: :func:`maybe_instrument_kernels` at controller construction.  Set via
#: :func:`telemetry_context`; workers install it per epoch job.
_ACTIVE: "tuple[MetricsRegistry, dict] | None" = None


@contextmanager
def telemetry_context(
    registry: "MetricsRegistry | None",
    labels: "Mapping[str, object] | None" = None,
) -> Iterator["MetricsRegistry | None"]:
    """Make *registry* the process's active telemetry target.

    While active, any :class:`~repro.core.controller.DPPController`
    built inherits instrumented kernels (via
    :func:`maybe_instrument_kernels`) labelled with *labels*.  A
    ``None`` registry is a no-op pass-through, so call sites need no
    branching.
    """
    global _ACTIVE
    if registry is None:
        yield None
        return
    previous = _ACTIVE
    _ACTIVE = (registry, dict(labels or {}))
    try:
        yield registry
    finally:
        _ACTIVE = previous


def maybe_instrument_kernels(backend: "KernelBackend") -> "KernelBackend":
    """Instrument *backend* iff a telemetry context is active.

    Called by the controller right after kernel resolution; with no
    active context this is an attribute check and a return (zero cost on
    the default path).
    """
    if _ACTIVE is None:
        return backend
    registry, labels = _ACTIVE
    return instrument_kernels(backend, registry, labels)


# -- profile reporting ------------------------------------------------------


def histogram_summaries(
    registry: MetricsRegistry, name: str
) -> "list[dict]":
    """Per-series count/sum/p50/p95 rows for one histogram family.

    Rows are sorted by total seconds descending -- the shape the
    ``profile report`` CLI view and the perf gate both consume.
    """
    family = registry.get(name)
    if family is None or not isinstance(family, Histogram):
        return []
    rows = []
    for key in family._series:
        if family._series[key][2] == 0:
            continue  # pre-bound but never observed; all-nan noise
        stats = family.stats(**dict(key))
        counts = list(family._series[key][0])
        rows.append(
            {
                "labels": dict(key),
                "count": stats["count"],
                "sum": stats["sum"],
                "p50": stats["p50"],
                "p95": stats["p95"],
                "bucket_counts": counts,
            }
        )
    rows.sort(key=lambda r: r["sum"], reverse=True)
    return rows
