"""Trace analytics: typed loading, summaries, diffs, flight recording.

The JSONL traces streamed by :class:`~repro.obs.sinks.JsonlSink` are
plain event dicts; this module turns them back into typed records
(:func:`load_trace`), renders run summaries (:meth:`Trace.summary`),
and compares two runs phase by phase and metric by metric
(:func:`diff_traces`) -- the engine behind ``repro trace summary`` and
``repro trace diff``, which doubles as a CI perf gate.

:class:`FlightRecorder` is the crash-forensics sink: a ring buffer of
the last N slots' events that dumps itself to disk when the simulation
loop emits a ``crash`` event (see :func:`repro.sim.engine.run_simulation`).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import manifest_path_for
from repro.obs.sinks import PhaseAggregator, _json_default, read_jsonl

__all__ = [
    "SpanRecord",
    "CounterRecord",
    "GaugeRecord",
    "EventRecord",
    "Trace",
    "load_trace",
    "Delta",
    "TraceDiff",
    "diff_traces",
    "FlightRecorder",
]

#: Slot-event fields summarised and diffed as run metrics.
_SLOT_METRICS = ("latency", "cost", "backlog_after", "solve_seconds")


@dataclass(frozen=True)
class SpanRecord:
    """One timed phase occurrence (``kind: "span"``)."""

    name: str
    start: float
    seconds: float


@dataclass(frozen=True)
class CounterRecord:
    """One counter increment (``kind: "counter"``)."""

    name: str
    value: float


@dataclass(frozen=True)
class GaugeRecord:
    """One gauge sample (``kind: "gauge"``)."""

    name: str
    value: float


@dataclass(frozen=True)
class EventRecord:
    """One free-form event (``kind: "event"``), e.g. a slot record."""

    name: str
    data: dict


@dataclass
class Trace:
    """A loaded JSONL trace, events grouped by kind.

    Attributes:
        path: Source file (``None`` for synthetic traces).
        spans: Every span occurrence, in stream order.
        counters: Counter totals (increments collapsed).
        gauges: Gauge sample series per name.
        events: Free-form events, in stream order.
    """

    path: Path | None = None
    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, list[float]] = field(default_factory=dict)
    events: list[EventRecord] = field(default_factory=list)

    @property
    def slots(self) -> list[dict]:
        """Per-slot records (the ``data`` of every ``slot`` event)."""
        return [e.data for e in self.events if e.name == "slot"]

    @property
    def alerts(self) -> list[dict]:
        """Monitor alerts captured in the trace."""
        return [e.data for e in self.events if e.name == "alert"]

    def phase_totals(self) -> dict[str, float]:
        """Total seconds per span name."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
        return totals

    def metrics(self) -> dict[str, float]:
        """Run metrics for summaries/diffs: slot-field means, final
        backlog, and every counter total (as ``counter/<name>``)."""
        out: dict[str, float] = {}
        slots = self.slots
        for key in _SLOT_METRICS:
            values = [float(s[key]) for s in slots if key in s]
            if values:
                out[f"mean_{key}"] = sum(values) / len(values)
        backlogs = [float(s["backlog_after"]) for s in slots
                    if "backlog_after" in s]
        if backlogs:
            out["final_backlog"] = backlogs[-1]
        for name, value in self.counters.items():
            out[f"counter/{name}"] = value
        return out

    def aggregator(self) -> PhaseAggregator:
        """Replay the trace into a fresh :class:`PhaseAggregator`."""
        agg = PhaseAggregator()
        for span in self.spans:
            agg.emit({"kind": "span", "name": span.name,
                      "seconds": span.seconds})
        for name, value in self.counters.items():
            agg.emit({"kind": "counter", "name": name, "value": value})
        for name, values in self.gauges.items():
            for value in values:
                agg.emit({"kind": "gauge", "name": name, "value": value})
        return agg

    def manifest(self) -> dict | None:
        """The sibling run manifest, when one exists on disk."""
        if self.path is None:
            return None
        manifest_path = manifest_path_for(self.path)
        if not manifest_path.exists():
            return None
        return json.loads(manifest_path.read_text())

    def summary(self) -> str:
        """Human-readable run summary: provenance, metrics, phase table."""
        lines = []
        source = str(self.path) if self.path is not None else "<memory>"
        lines.append(f"trace    : {source}")
        manifest = self.manifest()
        if manifest:
            lines.append(
                f"manifest : {manifest.get('package')} "
                f"{manifest.get('version')} seed={manifest.get('seed')} "
                f"config_hash={manifest.get('config_hash')}"
            )
        lines.append(
            f"events   : {len(self.spans)} spans, "
            f"{len(self.counters)} counters, "
            f"{sum(len(v) for v in self.gauges.values())} gauge samples, "
            f"{len(self.slots)} slots, {len(self.alerts)} alerts"
        )
        metrics = self.metrics()
        for name in sorted(m for m in metrics if not m.startswith("counter/")):
            lines.append(f"{name:<20} : {metrics[name]:.6g}")
        # Engine work counters, called out by name so warm-start and
        # batched-P2-B effectiveness is visible without reading the
        # full phase table.
        engine_counters = (
            "engine.sweeps",
            "engine.moves",
            "engine.warm_start_hits",
            "p2b.scalar_solves",
            "p2b.batch_iters",
            "p2b.fastpath",
        )
        present = [
            f"{name.split('.', 1)[1]}={self.counters[name]:.0f}"
            for name in engine_counters
            if name in self.counters
        ]
        if present:
            lines.append(f"engine   : {' '.join(present)}")
        for alert in self.alerts:
            lines.append(
                f"alert    : [{alert.get('severity')}] "
                f"{alert.get('monitor')}: {alert.get('message')}"
            )
        if self.spans or self.counters:
            lines.append("")
            lines.append(self.aggregator().table())
        return "\n".join(lines)


def load_trace(path: "str | Path") -> Trace:
    """Load a JSONL trace back into typed records.

    Unknown ``kind`` values are skipped (forward compatibility); the
    known kinds are documented in :mod:`repro.obs.probe`.
    """
    path = Path(path)
    trace = Trace(path=path)
    for event in read_jsonl(path):
        kind = event.get("kind")
        if kind == "span":
            trace.spans.append(
                SpanRecord(
                    name=event["name"],
                    start=float(event.get("start", 0.0)),
                    seconds=float(event["seconds"]),
                )
            )
        elif kind == "counter":
            name = event["name"]
            trace.counters[name] = (
                trace.counters.get(name, 0.0) + float(event["value"])
            )
        elif kind == "gauge":
            trace.gauges.setdefault(event["name"], []).append(
                float(event["value"])
            )
        elif kind == "event":
            trace.events.append(
                EventRecord(name=event["name"], data=event.get("data", {}))
            )
    return trace


@dataclass(frozen=True)
class Delta:
    """One compared quantity between a base and a new run."""

    name: str
    base: float
    new: float

    @property
    def ratio(self) -> float:
        """``new / base`` (inf when the base is 0 and new is not)."""
        if self.base == 0.0:
            return float("inf") if self.new != 0.0 else 1.0
        return self.new / self.base

    @property
    def rel_change(self) -> float:
        """Signed relative change ``(new - base) / |base|``."""
        if self.base == 0.0:
            return float("inf") if self.new != 0.0 else 0.0
        return (self.new - self.base) / abs(self.base)


@dataclass
class TraceDiff:
    """Outcome of comparing two traces.

    Attributes:
        phases: Per-phase total-seconds deltas (shared phases only).
        metrics: Run-metric deltas (shared metrics only).
        regressions: Human-readable descriptions of threshold breaches.
        notes: Non-failing observations (added/removed phases, ...).
    """

    phases: list[Delta] = field(default_factory=list)
    metrics: list[Delta] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no regression crossed its threshold."""
        return not self.regressions

    def render(self) -> str:
        """Text report: metric deltas, phase-time deltas, verdict."""
        lines = []
        if self.metrics:
            lines.append(f"{'metric':<32} {'base':>12} {'new':>12} {'change':>9}")
            for d in sorted(self.metrics, key=lambda d: d.name):
                change = (
                    f"{100.0 * d.rel_change:+.1f}%"
                    if abs(d.rel_change) != float("inf") else "new!=0"
                )
                lines.append(
                    f"{d.name:<32} {d.base:>12.6g} {d.new:>12.6g} {change:>9}"
                )
        if self.phases:
            lines.append("")
            lines.append(f"{'phase':<32} {'base s':>12} {'new s':>12} {'ratio':>9}")
            for d in sorted(self.phases, key=lambda d: d.name):
                lines.append(
                    f"{d.name:<32} {d.base:>12.4f} {d.new:>12.4f} "
                    f"{d.ratio:>8.2f}x"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append("")
        if self.ok:
            lines.append("no regressions")
        else:
            for regression in self.regressions:
                lines.append(f"REGRESSION: {regression}")
        return "\n".join(lines)


def diff_traces(
    base: "Trace | str | Path",
    new: "Trace | str | Path",
    *,
    time_threshold: float = 0.5,
    metric_threshold: float = 0.10,
    min_phase_seconds: float = 5e-4,
    include_times: bool = True,
) -> TraceDiff:
    """Compare two traces; flag phase-time and metric regressions.

    A *phase* regresses when its total seconds grow by more than
    ``time_threshold`` (relative) *and* ``min_phase_seconds`` (absolute
    -- sub-millisecond noise never fails a gate).  A *metric* regresses
    when it grows by more than ``metric_threshold``; every summarised
    metric is oriented so that larger is worse (latency, cost, backlog,
    solve time, engine work counters), so only increases fail.
    Identical traces always diff clean.

    Args:
        base: Baseline trace (or a path to one).
        new: Candidate trace (or a path to one).
        time_threshold: Relative phase-time growth tolerated.
        metric_threshold: Relative metric growth tolerated.
        min_phase_seconds: Absolute phase-time growth floor.
        include_times: Compare span times at all; disable for
            cross-machine gates where only metrics are comparable.
    """
    if not isinstance(base, Trace):
        base = load_trace(base)
    if not isinstance(new, Trace):
        new = load_trace(new)
    diff = TraceDiff()

    if include_times:
        base_phases = base.phase_totals()
        new_phases = new.phase_totals()
        for name in sorted(set(base_phases) | set(new_phases)):
            if name not in base_phases:
                diff.notes.append(f"phase {name!r} only in new trace")
                continue
            if name not in new_phases:
                diff.notes.append(f"phase {name!r} only in base trace")
                continue
            delta = Delta(name=name, base=base_phases[name], new=new_phases[name])
            diff.phases.append(delta)
            grew = delta.new - delta.base
            if (
                delta.new > delta.base * (1.0 + time_threshold)
                and grew > min_phase_seconds
            ):
                diff.regressions.append(
                    f"phase {name!r} slowed {delta.ratio:.2f}x "
                    f"({delta.base:.4f}s -> {delta.new:.4f}s)"
                )

    base_metrics = base.metrics()
    new_metrics = new.metrics()
    for name in sorted(set(base_metrics) | set(new_metrics)):
        if not include_times and name == "mean_solve_seconds":
            # Wall-clock like the phases: meaningless across machines.
            continue
        if name not in base_metrics or name not in new_metrics:
            side = "new" if name in new_metrics else "base"
            diff.notes.append(f"metric {name!r} only in {side} trace")
            continue
        delta = Delta(name=name, base=base_metrics[name], new=new_metrics[name])
        diff.metrics.append(delta)
        if delta.base == 0.0:
            regressed = delta.new > 1e-9
        else:
            regressed = delta.new > delta.base * (1.0 + metric_threshold)
        if regressed:
            diff.regressions.append(
                f"metric {name!r} worsened {delta.base:.6g} -> "
                f"{delta.new:.6g} (+{100.0 * delta.rel_change:.1f}%)"
                if delta.base != 0.0 else
                f"metric {name!r} worsened 0 -> {delta.new:.6g}"
            )
    return diff


class FlightRecorder:
    """Ring-buffer sink: keeps the last N slots of events, dumps on crash.

    Events are bucketed per slot (a bucket closes on each ``slot``
    event); only the most recent *capacity_slots* buckets are retained,
    so the recorder is memory-flat on unbounded horizons.  When the
    simulation loop emits a ``crash`` event (see
    :func:`repro.sim.engine.run_simulation`), the buffer -- crash event
    included -- is written to *path* as ordinary trace JSONL, readable
    by :func:`load_trace`.

    Args:
        path: Dump destination.
        capacity_slots: Completed slots retained in the ring.
    """

    def __init__(self, path: "str | Path", *, capacity_slots: int = 32) -> None:
        self.path = Path(path)
        self.capacity_slots = int(capacity_slots)
        self._buckets: deque[list[dict]] = deque(maxlen=self.capacity_slots)
        self._current: list[dict] = []
        #: Path written by the last dump, ``None`` until one happens.
        self.dumped: Path | None = None

    def emit(self, event: dict) -> None:
        self._current.append(event)
        if event["kind"] == "event":
            if event["name"] == "slot":
                self._buckets.append(self._current)
                self._current = []
            elif event["name"] == "crash":
                self.dump()

    def buffered_events(self) -> list[dict]:
        """The retained events, oldest first."""
        out: list[dict] = []
        for bucket in self._buckets:
            out.extend(bucket)
        out.extend(self._current)
        return out

    def dump(self, path: "str | Path | None" = None) -> Path:
        """Write the buffer as JSONL; returns the path written."""
        path = Path(path) if path is not None else self.path
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.buffered_events():
                fh.write(json.dumps(event, separators=(",", ":"),
                                    default=_json_default))
                fh.write("\n")
        self.dumped = path
        return path

    def close(self) -> None:  # a clean run leaves no dump behind
        pass
