"""Radio substrate: access-link channel conditions and device mobility.

The paper's channel state ``h_{i,k,t}`` (bps/Hz spectral efficiency)
varies over time because devices move.  This subpackage provides:

* :mod:`repro.radio.channel` -- channel models producing the ``(I, K)``
  spectral-efficiency matrix each slot (uniform draws per the paper's
  settings, and a distance-based log-path-loss model for mobility
  scenarios).
* :mod:`repro.radio.fading` -- temporally correlated variation (AR(1)
  processes) so consecutive slots look like a moving user, not white
  noise.
* :mod:`repro.radio.mobility` -- device movement models (static, random
  waypoint).
"""

from repro.radio.channel import (
    ChannelModel,
    DistanceChannelModel,
    UniformChannelModel,
)
from repro.radio.fading import Ar1Process, CorrelatedChannelModel
from repro.radio.fronthaul import (
    FronthaulModel,
    ScintillatingFronthaul,
    StaticFronthaul,
)
from repro.radio.mobility import MobilityModel, RandomWaypointMobility, StaticMobility

__all__ = [
    "ChannelModel",
    "UniformChannelModel",
    "DistanceChannelModel",
    "Ar1Process",
    "CorrelatedChannelModel",
    "FronthaulModel",
    "StaticFronthaul",
    "ScintillatingFronthaul",
    "MobilityModel",
    "StaticMobility",
    "RandomWaypointMobility",
]
