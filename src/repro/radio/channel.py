"""Access-link channel models producing ``h_{i,k,t}`` (bps/Hz).

The convention throughout the library: an entry of ``0`` in the
spectral-efficiency matrix means "device i cannot use base station k this
slot" (out of coverage); positive entries are usable channels.  The
paper's simulations draw each covered pair's efficiency uniformly in
``[15, 50]`` bps/Hz.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import BoolArray, FloatArray, Rng


class ChannelModel(abc.ABC):
    """Produces the per-slot spectral-efficiency matrix."""

    @abc.abstractmethod
    def spectral_efficiency(
        self,
        t: int,
        device_positions: FloatArray,
        bs_positions: FloatArray,
        coverage: BoolArray,
        rng: Rng,
    ) -> FloatArray:
        """Return the ``(I, K)`` matrix ``h_t``; zero where uncovered.

        Args:
            t: Slot index (models may be time-dependent).
            device_positions: ``(I, 2)`` current device coordinates.
            bs_positions: ``(K, 2)`` base-station coordinates.
            coverage: ``(I, K)`` boolean coverage mask this slot.
            rng: Random generator for the stochastic part of the channel.
        """


@dataclass
class UniformChannelModel(ChannelModel):
    """Iid uniform spectral efficiency on covered links (paper Sec. VI-A).

    Each covered (device, base station) pair gets an independent draw
    from ``[se_min, se_max]`` every slot.  The paper quotes 15-50 bps/Hz
    for mid-band n77 access links [33].
    """

    se_min: float = 15.0
    se_max: float = 50.0

    def __post_init__(self) -> None:
        if not 0.0 < self.se_min <= self.se_max:
            raise ConfigurationError(
                f"need 0 < se_min <= se_max, got [{self.se_min}, {self.se_max}]"
            )

    def spectral_efficiency(
        self,
        t: int,
        device_positions: FloatArray,
        bs_positions: FloatArray,
        coverage: BoolArray,
        rng: Rng,
    ) -> FloatArray:
        del t, device_positions, bs_positions
        h = rng.uniform(self.se_min, self.se_max, size=coverage.shape)
        h[~coverage] = 0.0
        return h


@dataclass
class DistanceChannelModel(ChannelModel):
    """Log-distance spectral efficiency with shadowing.

    Spectral efficiency decays linearly in log-distance between
    ``se_max`` (at ``d_ref``) and ``se_min`` (at ``d_edge``), plus
    Gaussian shadowing, clipped back into ``[se_min, se_max]``.  This
    couples channel quality to mobility, exercising the algorithms under
    spatially correlated states rather than uniform noise.
    """

    se_min: float = 15.0
    se_max: float = 50.0
    d_ref: float = 50.0
    d_edge: float = 3_000.0
    shadowing_std: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.se_min <= self.se_max:
            raise ConfigurationError("need 0 < se_min <= se_max")
        if not 0.0 < self.d_ref < self.d_edge:
            raise ConfigurationError("need 0 < d_ref < d_edge")
        if self.shadowing_std < 0.0:
            raise ConfigurationError("shadowing_std must be non-negative")

    def spectral_efficiency(
        self,
        t: int,
        device_positions: FloatArray,
        bs_positions: FloatArray,
        coverage: BoolArray,
        rng: Rng,
    ) -> FloatArray:
        del t
        diff = device_positions[:, None, :] - bs_positions[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        dist = np.clip(dist, self.d_ref, self.d_edge)
        # Linear interpolation in log-distance between the two anchors.
        frac = (np.log10(dist) - np.log10(self.d_ref)) / (
            np.log10(self.d_edge) - np.log10(self.d_ref)
        )
        h = self.se_max - frac * (self.se_max - self.se_min)
        if self.shadowing_std > 0.0:
            h = h + self.shadowing_std * rng.standard_normal(h.shape)
        h = np.clip(h, self.se_min, self.se_max)
        h[~coverage] = 0.0
        return h
