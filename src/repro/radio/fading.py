"""Temporally correlated channel variation.

Redrawing channel gains independently each slot (the paper's setting) is
the worst case for an online controller; real channels are correlated in
time.  :class:`CorrelatedChannelModel` wraps any base channel model with
per-link AR(1) perturbations so experiments can study both regimes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.radio.channel import ChannelModel
from repro.types import BoolArray, FloatArray, Rng


class Ar1Process:
    """Vector AR(1) process ``x_{t+1} = rho x_t + sqrt(1-rho^2) eps_t``.

    Stationary with zero mean and unit variance for ``|rho| < 1``, which
    makes it a drop-in "coloured noise" source: scale by the desired
    standard deviation at the point of use.
    """

    def __init__(self, shape: tuple[int, ...], rho: float, rng: Rng) -> None:
        if not -1.0 < rho < 1.0:
            raise ConfigurationError(f"rho must lie in (-1, 1), got {rho}")
        self.rho = float(rho)
        self._innovation_scale = float(np.sqrt(1.0 - rho * rho))
        self._state: FloatArray = rng.standard_normal(shape)

    @property
    def state(self) -> FloatArray:
        """Current value of the process (read-only copy)."""
        return self._state.copy()

    def step(self, rng: Rng) -> FloatArray:
        """Advance one slot and return the new state."""
        eps = rng.standard_normal(self._state.shape)
        self._state = self.rho * self._state + self._innovation_scale * eps
        return self._state.copy()

    @classmethod
    def restore(cls, rho: float, state: FloatArray) -> "Ar1Process":
        """Rebuild a process from a saved state without consuming RNG.

        Used by checkpoint/resume: the restored process continues from
        ``state`` exactly as the original would have, so the next
        :meth:`step` consumes the same draws as an uninterrupted run.
        """
        process = cls.__new__(cls)
        process.rho = float(rho)
        process._innovation_scale = float(np.sqrt(1.0 - rho * rho))
        process._state = np.asarray(state, dtype=np.float64).copy()
        return process


class CorrelatedChannelModel(ChannelModel):
    """A base channel model plus AR(1)-correlated perturbations.

    The perturbation is additive in bps/Hz, clipped so efficiencies stay
    positive on covered links.  The AR(1) state is lazily initialised on
    the first call (the shape depends on the scenario's ``(I, K)``).

    Args:
        base: The underlying channel model supplying the mean field.
        rho: Temporal correlation of the perturbation, in ``(-1, 1)``.
        std: Standard deviation of the perturbation, bps/Hz.
        floor: Minimum spectral efficiency on covered links.
    """

    def __init__(
        self,
        base: ChannelModel,
        *,
        rho: float = 0.9,
        std: float = 4.0,
        floor: float = 1.0,
    ) -> None:
        if std < 0.0:
            raise ConfigurationError("std must be non-negative")
        if floor <= 0.0:
            raise ConfigurationError("floor must be positive")
        self.base = base
        self.rho = rho
        self.std = float(std)
        self.floor = float(floor)
        self._process: Ar1Process | None = None

    def spectral_efficiency(
        self,
        t: int,
        device_positions: FloatArray,
        bs_positions: FloatArray,
        coverage: BoolArray,
        rng: Rng,
    ) -> FloatArray:
        mean = self.base.spectral_efficiency(
            t, device_positions, bs_positions, coverage, rng
        )
        if self._process is None or self._process.state.shape != mean.shape:
            self._process = Ar1Process(mean.shape, self.rho, rng)
            noise = self._process.state
        else:
            noise = self._process.step(rng)
        h = mean + self.std * noise
        h = np.maximum(h, self.floor)
        h[~coverage] = 0.0
        return h

    def reset(self) -> None:
        """Drop the AR(1) state so the next call re-initialises it."""
        self._process = None

    def state_dict(self) -> dict:
        """Serializable AR(1) state (for checkpoint/resume)."""
        if self._process is None:
            return {}
        return {"ar1": self._process._state.tolist()}

    def load_state_dict(self, state: dict) -> None:
        """Restore AR(1) state captured by :meth:`state_dict`."""
        if not state:
            self._process = None
            return
        self._process = Ar1Process.restore(self.rho, np.asarray(state["ar1"]))
