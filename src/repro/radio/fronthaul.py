"""Time-varying fronthaul spectral efficiency models.

The paper fixes ``h^F_k`` because base stations and server rooms do not
move, but notes its algorithm handles variation -- relevant for wireless
(mmWave) fronthaul where rain fade and scintillation modulate the link.
These models produce the per-slot ``(K,)`` override consumed through
:attr:`repro.core.state.SlotState.fronthaul_se`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.radio.fading import Ar1Process
from repro.types import FloatArray, Rng


class FronthaulModel(abc.ABC):
    """Produces per-slot fronthaul spectral efficiencies."""

    @abc.abstractmethod
    def spectral_efficiency(
        self, t: int, base_values: FloatArray, rng: Rng
    ) -> FloatArray:
        """The slot's ``h^F`` vector given the static base values."""


class StaticFronthaul(FronthaulModel):
    """The paper's default: fronthaul efficiency never changes."""

    def spectral_efficiency(
        self, t: int, base_values: FloatArray, rng: Rng
    ) -> FloatArray:
        del t, rng
        return np.asarray(base_values, dtype=np.float64).copy()


class ScintillatingFronthaul(FronthaulModel):
    """AR(1)-modulated fronthaul quality around the static values.

    Models slowly varying atmospheric conditions on wireless fronthaul:
    the efficiency is the base value times ``exp(std * x_t)`` for a
    stationary AR(1) process ``x_t``, floored at a fraction of the base.

    Args:
        rho: Temporal correlation in ``(-1, 1)``.
        std: Log-scale standard deviation of the modulation.
        floor_fraction: Lowest allowed fraction of the base efficiency.
    """

    def __init__(
        self,
        *,
        rho: float = 0.95,
        std: float = 0.15,
        floor_fraction: float = 0.2,
    ) -> None:
        if std < 0.0:
            raise ConfigurationError("std must be non-negative")
        if not 0.0 < floor_fraction <= 1.0:
            raise ConfigurationError("floor_fraction must lie in (0, 1]")
        self.rho = rho
        self.std = float(std)
        self.floor_fraction = float(floor_fraction)
        self._process: Ar1Process | None = None

    def spectral_efficiency(
        self, t: int, base_values: FloatArray, rng: Rng
    ) -> FloatArray:
        base = np.asarray(base_values, dtype=np.float64)
        if self._process is None or self._process.state.shape != base.shape:
            self._process = Ar1Process(base.shape, self.rho, rng)
            x = self._process.state
        else:
            x = self._process.step(rng)
        modulated = base * np.exp(self.std * x - 0.5 * self.std * self.std)
        return np.maximum(modulated, self.floor_fraction * base)

    def reset(self) -> None:
        """Drop the AR(1) state so the next call re-initialises it."""
        self._process = None

    def state_dict(self) -> dict:
        """Serializable AR(1) state (for checkpoint/resume)."""
        if self._process is None:
            return {}
        return {"ar1": self._process._state.tolist()}

    def load_state_dict(self, state: dict) -> None:
        """Restore AR(1) state captured by :meth:`state_dict`."""
        if not state:
            self._process = None
            return
        self._process = Ar1Process.restore(self.rho, np.asarray(state["ar1"]))
