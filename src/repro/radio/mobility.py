"""Device mobility models.

Mobility drives both the coverage matrix (small cells come and go) and
distance-based channel models.  Positions are planar metres inside a
square area; models are stateless with respect to the positions array --
they take the current positions and return the next ones, so the
simulation engine owns the state.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, Rng


class MobilityModel(abc.ABC):
    """Advances device positions by one slot."""

    @abc.abstractmethod
    def step(self, positions: FloatArray, rng: Rng) -> FloatArray:
        """Return the next ``(I, 2)`` positions given the current ones."""


class StaticMobility(MobilityModel):
    """Devices never move (the paper's default simulation)."""

    def step(self, positions: FloatArray, rng: Rng) -> FloatArray:
        del rng
        return np.asarray(positions, dtype=np.float64).copy()


class RandomWaypointMobility(MobilityModel):
    """Classic random-waypoint mobility inside a square area.

    Each device holds a target waypoint and moves toward it at its drawn
    speed; on arrival it draws a fresh waypoint and speed.  Slot duration
    converts speed to per-slot displacement.

    Args:
        area_size: Side length of the square arena, metres.
        speed_range: Uniform draw range of device speeds, metres/second.
        slot_seconds: Wall-clock duration of one slot.
    """

    def __init__(
        self,
        area_size: float,
        *,
        speed_range: tuple[float, float] = (0.5, 2.0),
        slot_seconds: float = 60.0,
    ) -> None:
        if area_size <= 0:
            raise ConfigurationError("area_size must be positive")
        lo, hi = speed_range
        if not 0 <= lo <= hi:
            raise ConfigurationError("need 0 <= speed_min <= speed_max")
        if slot_seconds <= 0:
            raise ConfigurationError("slot_seconds must be positive")
        self.area_size = float(area_size)
        self.speed_range = (float(lo), float(hi))
        self.slot_seconds = float(slot_seconds)
        self._targets: FloatArray | None = None
        self._speeds: FloatArray | None = None

    def _ensure_state(self, positions: FloatArray, rng: Rng) -> None:
        n = positions.shape[0]
        if self._targets is None or self._targets.shape[0] != n:
            self._targets = rng.uniform(0.0, self.area_size, size=(n, 2))
            self._speeds = rng.uniform(*self.speed_range, size=n)

    def step(self, positions: FloatArray, rng: Rng) -> FloatArray:
        positions = np.asarray(positions, dtype=np.float64).copy()
        self._ensure_state(positions, rng)
        assert self._targets is not None and self._speeds is not None

        delta = self._targets - positions
        dist = np.sqrt(np.sum(delta * delta, axis=1))
        step_len = self._speeds * self.slot_seconds
        arrived = dist <= step_len

        # Move non-arrived devices toward their waypoints.
        moving = ~arrived & (dist > 0)
        scale = np.zeros_like(dist)
        scale[moving] = step_len[moving] / dist[moving]
        positions[moving] += delta[moving] * scale[moving, None]

        # Arrived devices land on the waypoint and redraw target + speed.
        positions[arrived] = self._targets[arrived]
        n_arrived = int(np.count_nonzero(arrived))
        if n_arrived:
            self._targets[arrived] = rng.uniform(
                0.0, self.area_size, size=(n_arrived, 2)
            )
            self._speeds[arrived] = rng.uniform(*self.speed_range, size=n_arrived)
        return np.clip(positions, 0.0, self.area_size)
