"""Multi-cell scale-out, in one namespace.

The sharding layer spans three subpackages -- cell partitioning lives
with the topology code (:mod:`repro.network.partition`), budget
coordination with the budget algebra (:mod:`repro.core.budget`), and
the sharded engine with the simulation loop (:mod:`repro.sim.sharded`).
This module re-exports the public surface so scale-out reads as one
story::

    from repro import sharding

    scenario = repro.make_paper_scenario(seed=7)
    plan = sharding.partition_cells(scenario.network, 4)
    result = sharding.run_sharded(scenario, horizon=48, cells=plan)
    print(result.merged.summary(), result.budgets.sum(axis=1))
"""

from __future__ import annotations

from repro.core.budget import BudgetCoordinator, CoordinatedBudget
from repro.network.partition import (
    Cell,
    CellIndexMaps,
    CellPlan,
    extract_subnetwork,
    partition_cells,
)
from repro.sim.checkpoint import ShardCheckpoint
from repro.sim.shard_runtime import (
    CellRuntime,
    ResidentWorker,
    SharedStatePlanner,
    WorkerFailure,
)
from repro.sim.sharded import (
    RUNTIME_NAMES,
    ShardedController,
    ShardedResult,
    merge_cell_metrics,
    run_sharded,
    shard_scenarios,
)

__all__ = [
    "BudgetCoordinator",
    "Cell",
    "CellIndexMaps",
    "CellPlan",
    "CellRuntime",
    "CoordinatedBudget",
    "RUNTIME_NAMES",
    "ResidentWorker",
    "ShardCheckpoint",
    "SharedStatePlanner",
    "ShardedController",
    "ShardedResult",
    "WorkerFailure",
    "extract_subnetwork",
    "merge_cell_metrics",
    "partition_cells",
    "run_sharded",
    "shard_scenarios",
]
