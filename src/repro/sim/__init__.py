"""Discrete-time simulation engine (paper Sec. VI).

* :mod:`repro.sim.seeding` -- reproducible independent RNG streams.
* :mod:`repro.sim.scenario` -- the per-slot state generator combining
  workload, channel, mobility, and price models into ``beta_t``.
* :mod:`repro.sim.engine` -- run a controller over a horizon.
* :mod:`repro.sim.results` -- the result container with time-average
  summaries.
* :mod:`repro.sim.metrics` -- window averages and convergence helpers.
"""

from repro.sim.seeding import SeedBank
from repro.sim.faults import (
    BaseStationOutages,
    ChannelStaleness,
    ChaosSchedule,
    FaultPlan,
    FronthaulDegradation,
    MarkovOutages,
    NoOutages,
    OutageModel,
    PriceFeedDropouts,
    ScriptedIncident,
    ServerOutages,
    StateFault,
)
from repro.sim.checkpoint import RunCheckpoint, run_checkpointed
from repro.sim.scenario import Scenario, StateGenerator
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult, SimulationSummary
from repro.sim.metrics import (
    converged_tail_mean,
    cumulative_time_average,
    window_averages,
)
from repro.sim.replication import (
    ReplicationOutcome,
    ReplicationReport,
    ReplicationSpec,
    ReplicationSummary,
    run_replications,
)
from repro.sim.sharded import (
    ShardedController,
    ShardedResult,
    merge_cell_metrics,
    run_sharded,
    shard_scenarios,
)

__all__ = [
    "OutageModel",
    "NoOutages",
    "MarkovOutages",
    "StateFault",
    "ServerOutages",
    "BaseStationOutages",
    "FronthaulDegradation",
    "PriceFeedDropouts",
    "ChannelStaleness",
    "ScriptedIncident",
    "ChaosSchedule",
    "FaultPlan",
    "RunCheckpoint",
    "run_checkpointed",
    "ReplicationSpec",
    "ReplicationOutcome",
    "ReplicationReport",
    "ReplicationSummary",
    "run_replications",
    "SeedBank",
    "StateGenerator",
    "Scenario",
    "run_simulation",
    "SimulationResult",
    "SimulationSummary",
    "window_averages",
    "cumulative_time_average",
    "converged_tail_mean",
    "ShardedController",
    "ShardedResult",
    "merge_cell_metrics",
    "run_sharded",
    "shard_scenarios",
]
