"""Lockstep execution of several independent simulations.

Batched replication runs R seeds' simulations *slot by slot* in one
process: every lane (seed) advances its controller through
:meth:`~repro.core.controller.DPPController.step_requests`, and the
P2-B searches the lanes yield within each BDMA round are fused into a
single kernel invocation by :func:`repro.core.p2b.solve_p2b_many`.
The lanes never interact -- each has its own scenario, controller, rng,
and tracer -- so every lane's trajectory is bit-identical to running it
alone through :func:`repro.sim.engine.run_simulation`; only the
wall-clock changes (fewer, larger kernel calls).

A lane that raises is dropped with its error recorded while the others
keep running; callers (:func:`repro.sim.replication.run_replications`)
feed failed lanes back through the per-seed retry machinery.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.controller import OnlineController, SlotRecord
from repro.core.p2b import solve_p2b_many
from repro.core.state import SlotState
from repro.obs.probe import Tracer, as_tracer
from repro.sim.results import SimulationResult

__all__ = ["LockstepLane", "run_simulations_lockstep"]

logger = logging.getLogger(__name__)


@dataclass
class LockstepLane:
    """One independent simulation advancing in lockstep with others.

    Attributes:
        controller: The lane's policy.  Must expose ``step_requests``
            (the :class:`~repro.core.controller.DPPController` family);
            lanes whose controller does not are rejected up front by
            :func:`run_simulations_lockstep`.
        states: The lane's per-slot state stream.
        budget: Budget recorded on the lane's result.
        tracer: The lane's observability tracer (per-lane probes keep
            counter totals identical to solo runs).
    """

    controller: OnlineController
    states: Iterable[SlotState]
    budget: float | None = None
    tracer: "Tracer | None" = None


class _LaneRun:
    """Mutable per-lane bookkeeping for the lockstep loop."""

    def __init__(self, lane: LockstepLane) -> None:
        self.lane = lane
        self.tracer = as_tracer(lane.tracer)
        self.states = iter(lane.states)
        self.latency: list[float] = []
        self.cost: list[float] = []
        self.theta: list[float] = []
        self.backlog: list[float] = []
        self.solve_seconds: list[float] = []
        self.price: list[float] = []
        self.error: Exception | None = None
        self.done = False

    def accumulate(self, state: SlotState, record: SlotRecord) -> None:
        self.latency.append(record.latency)
        self.cost.append(record.cost)
        self.theta.append(record.theta)
        self.backlog.append(record.backlog_after)
        self.solve_seconds.append(record.solve_seconds)
        self.price.append(state.price)
        if self.tracer.enabled:
            self.tracer.event("slot", record.to_dict())

    def fail(self, exc: Exception) -> None:
        self.error = exc
        self.done = True

    def result(self) -> SimulationResult:
        return SimulationResult(
            latency=np.array(self.latency),
            cost=np.array(self.cost),
            theta=np.array(self.theta),
            backlog=np.array(self.backlog),
            solve_seconds=np.array(self.solve_seconds),
            price=np.array(self.price),
            budget=self.lane.budget,
            records=[],
        )


def run_simulations_lockstep(
    lanes: "list[LockstepLane]",
) -> "list[tuple[SimulationResult | None, Exception | None]]":
    """Drive every lane through its state stream, slot by slot together.

    Returns one ``(result, error)`` pair per lane, in lane order:
    ``(SimulationResult, None)`` for lanes that finished, ``(None,
    exception)`` for lanes that raised (the others still finish).  Each
    finished lane's trajectories are bit-identical to a solo
    :func:`repro.sim.engine.run_simulation` of the same lane.

    Raises:
        TypeError: A lane's controller has no ``step_requests`` -- the
            caller should run such configurations per seed instead.
    """
    for lane in lanes:
        if not callable(getattr(lane.controller, "step_requests", None)):
            raise TypeError(
                f"{type(lane.controller).__name__} has no step_requests; "
                "lockstep needs the DPP controller family"
            )
    runs = [_LaneRun(lane) for lane in lanes]
    logger.info("lockstep start: %d lanes", len(runs))
    while True:
        # Draw every active lane's next slot state.
        slot_states: dict[int, SlotState] = {}
        for i, run in enumerate(runs):
            if run.done:
                continue
            try:
                slot_states[i] = next(run.states)
            except StopIteration:
                run.done = True
            except Exception as exc:  # a poisoned state stream
                run.fail(exc)
        if not slot_states:
            break
        # Start each lane's slot generator, collecting its first P2-B
        # request (a lane whose slot needs none finishes immediately).
        generators: dict[int, object] = {}
        pending: dict[int, dict] = {}
        records: dict[int, SlotRecord] = {}
        for i, state in slot_states.items():
            run = runs[i]
            try:
                if run.tracer.enabled:
                    run.tracer.gauge("slot.price", float(state.price))
                gen = run.lane.controller.step_requests(state)
                generators[i] = gen
                pending[i] = next(gen)
            except StopIteration as stop:
                records[i] = stop.value
            except Exception as exc:
                run.fail(exc)
        # Advance all lanes round by round, fusing the rounds' searches.
        while pending:
            order = sorted(pending)
            answers = solve_p2b_many([pending[i] for i in order])
            next_pending: dict[int, dict] = {}
            for i, frequencies in zip(order, answers):
                try:
                    next_pending[i] = generators[i].send(frequencies)
                except StopIteration as stop:
                    records[i] = stop.value
                except Exception as exc:
                    runs[i].fail(exc)
            pending = next_pending
        for i, record in records.items():
            runs[i].accumulate(slot_states[i], record)
    logger.info(
        "lockstep done: %d lanes, %d failed",
        len(runs),
        sum(1 for run in runs if run.error is not None),
    )
    return [
        (None, run.error) if run.error is not None else (run.result(), None)
        for run in runs
    ]
