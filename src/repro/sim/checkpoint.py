"""Checkpoint/resume for long simulation runs.

A checkpointed run periodically snapshots everything the slot loop
carries across slots -- the state stream's rng, the fault plan's rng and
chain states, the generator's model states, the controller's virtual
queue / solver rng / carried assignments, and the aggregated metric
trajectories -- into one JSON file, written atomically (tmp +
``os.replace``) so a crash mid-write never corrupts the previous
snapshot.

Resuming restores all of it and continues from the next slot.  Because
every piece of cross-slot state is either captured exactly (rng
bit-generator states, float arrays) or deterministic in the slot index,
a resumed run is *bit-identical* to an uninterrupted one: same latency,
cost, and backlog trajectories, same final queue.  The equality is
asserted by ``tests/test_checkpoint.py`` and the CI ``chaos-smoke`` job.

Quickstart::

    result = repro.api.run(
        horizon=500, seed=7, checkpoint="run.ckpt", checkpoint_every=50
    )
    # ... process dies at slot 230; rerun with resume=True:
    result = repro.api.run(
        horizon=500, seed=7, checkpoint="run.ckpt", resume=True
    )
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import CheckpointError
from repro.obs.probe import Tracer, as_tracer
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.types import Rng

logger = logging.getLogger(__name__)

__all__ = ["RunCheckpoint", "ShardCheckpoint", "run_checkpointed"]

#: Metric trajectories snapshotted per segment, in
#: :class:`~repro.sim.results.SimulationResult` field order.
_METRIC_KEYS = ("latency", "cost", "theta", "backlog", "solve_seconds", "price")


@dataclass
class RunCheckpoint:
    """One atomic snapshot of a run in progress.

    Attributes:
        config_hash: Digest of the run configuration (seed, horizon,
            budget, controller type, fleet size).  Resume refuses a
            checkpoint whose hash does not match the requested run.
        horizon: Total slots the run was asked for.
        completed: Slots finished when the snapshot was taken.
        state_rng: ``bit_generator.state`` of the state stream.
        controller: The controller's ``state_dict()``.
        generator: The state generator's ``state_dict()``.
        plan_rng: ``bit_generator.state`` of the fault plan's stream
            (``None`` when the scenario has no plan).
        fault_plan: The fault plan's ``state_dict()`` (``None`` without
            a plan).
        metrics: Per-slot trajectories accumulated so far, keyed by
            :data:`_METRIC_KEYS`.
        version: Snapshot format version.
    """

    config_hash: str
    horizon: int
    completed: int
    state_rng: dict
    controller: dict
    generator: dict
    plan_rng: dict | None = None
    fault_plan: dict | None = None
    metrics: dict = field(default_factory=dict)
    version: int = 1

    def write(self, path: "str | Path") -> None:
        """Atomically persist the snapshot to *path*.

        The JSON is written to a sibling temp file and moved into place
        with ``os.replace``, so readers only ever see a complete
        snapshot (the same pattern as ``RunManifest.write``).

        Raises:
            CheckpointError: The snapshot could not be serialized or
                written.
        """
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(asdict(self)))
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as exc:
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc

    @classmethod
    def load(cls, path: "str | Path") -> "RunCheckpoint":
        """Read a snapshot previously written by :meth:`write`.

        Raises:
            CheckpointError: The file is missing, unreadable, or not a
                known snapshot format.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if not isinstance(data, dict) or "config_hash" not in data:
            raise CheckpointError(f"{path} is not a run checkpoint")
        version = int(data.get("version", 0))
        if version != 1:
            raise CheckpointError(
                f"unsupported checkpoint version {version} in {path}"
            )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ShardCheckpoint:
    """One atomic snapshot of a sharded run in progress.

    The sharded engine's cross-slot state is the per-cell *carry* (the
    same controller / generator / rng / fault-plan cursor bundle the
    resident workers ship on ``pull``) plus the budget coordinator's
    pacing state, so that is what the snapshot holds -- written at epoch
    boundaries by :meth:`repro.sim.sharded.ShardedController.run` when
    ``checkpoint=`` is set, restored on ``resume=True``.  A resumed
    sharded run is bit-identical to an uninterrupted one, on both the
    sequential and the resident execution paths (the carries are
    runtime-agnostic, so a snapshot written sequentially resumes under
    resident workers and vice versa).

    Attributes:
        config_hash: Digest of the sharded run configuration (seed,
            horizon, budget, controller name, fleet size, cell count,
            epoch length, coordinator mode).
        horizon: Total slots the run was asked for.
        completed: Slots finished when the snapshot was taken.
        coordinator: The budget coordinator's ``state_dict()``.
        carries: Per-cell carry dicts, in cell order.
        metrics: Per-cell metric trajectories accumulated so far.
        budgets: Per-epoch applied budget splits, in epoch order.
        version: Snapshot format version.
    """

    config_hash: str
    horizon: int
    completed: int
    coordinator: dict
    carries: list = field(default_factory=list)
    metrics: list = field(default_factory=list)
    budgets: list = field(default_factory=list)
    version: int = 1

    def write(self, path: "str | Path") -> None:
        """Atomically persist the snapshot (same pattern as
        :meth:`RunCheckpoint.write`)."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(asdict(self)))
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as exc:
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc

    @classmethod
    def load(cls, path: "str | Path") -> "ShardCheckpoint":
        """Read a snapshot previously written by :meth:`write`.

        Raises:
            CheckpointError: The file is missing, unreadable, or not a
                sharded-run snapshot.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if not isinstance(data, dict) or "coordinator" not in data:
            raise CheckpointError(f"{path} is not a sharded-run checkpoint")
        version = int(data.get("version", 0))
        if version != 1:
            raise CheckpointError(
                f"unsupported checkpoint version {version} in {path}"
            )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def _config_hash(scenario: Scenario, controller, horizon: int, budget) -> str:
    config = {
        "seed": scenario.seeds.seed,
        "horizon": int(horizon),
        "budget": repr(budget),
        "controller": type(controller).__name__,
        "devices": scenario.network.num_devices,
    }
    return hashlib.sha256(
        json.dumps(config, sort_keys=True).encode()
    ).hexdigest()[:16]


def _restore_rng(state: dict) -> Rng:
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def _require_resumable(obj, role: str) -> None:
    if not (hasattr(obj, "state_dict") and hasattr(obj, "load_state_dict")):
        raise CheckpointError(
            f"{role} {type(obj).__name__} does not support checkpointing "
            "(needs state_dict()/load_state_dict())"
        )


def _result_from_metrics(
    metrics: dict, budget, records: list
) -> SimulationResult:
    return SimulationResult(
        **{k: np.asarray(metrics.get(k, []), dtype=float) for k in _METRIC_KEYS},
        budget=budget,
        records=records,
    )


def run_checkpointed(
    scenario: Scenario,
    controller,
    *,
    horizon: int,
    path: "str | Path",
    budget: float | None = None,
    every: int = 16,
    resume: bool = False,
    tracer: "Tracer | None" = None,
    keep_records: bool = False,
    on_slot=None,
    compiled: bool = True,
    chunk: int = 32,
) -> SimulationResult:
    """Drive *controller* through *horizon* slots with periodic snapshots.

    Runs the simulation in segments of *every* slots; after each segment
    a :class:`RunCheckpoint` is written atomically to *path* (a
    ``checkpoint`` event and ``resilience.checkpoints`` counter mark it
    on *tracer*).  With ``resume=True`` and a matching snapshot at
    *path*, the run continues from the snapshot's next slot; without one
    it falls back to a fresh start.  Resumed trajectories are
    bit-identical to an uninterrupted run's.

    Args:
        scenario: The scenario; its generator, seed bank, and optional
            fault plan are all checkpointed.
        controller: An online controller exposing
            ``state_dict``/``load_state_dict`` (e.g.
            :class:`~repro.core.controller.DPPController`).
        horizon: Total number of slots.
        path: Snapshot file location.
        budget: ``Cbar`` recorded on the result; ``scenario.budget``
            when omitted.
        every: Slots per segment between snapshots.
        resume: Continue from an existing snapshot at *path*.
        tracer: Observability tracer (fault/checkpoint events land here).
        keep_records: Retain per-slot records -- only for the slots run
            in *this* process; records from before a resume are gone.
        on_slot: Per-slot progress callback.
        compiled: Use the compiled state pipeline (bit-identical to the
            per-slot path; see
            :meth:`~repro.sim.scenario.StateGenerator.compile_states`).
        chunk: Slots per compiled chunk.

    Returns:
        The full-horizon :class:`~repro.sim.results.SimulationResult`
        (snapshotted metrics from before a resume included).

    Raises:
        CheckpointError: On an unusable controller/generator, a
            mismatched snapshot, or a write failure.
    """
    if every < 1:
        raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
    if horizon < 0:
        raise CheckpointError(f"horizon must be >= 0, got {horizon}")
    tracer = as_tracer(tracer)
    if budget is None:
        budget = scenario.budget
    _require_resumable(controller, "controller")
    generator = scenario.generator
    suspects = generator.unresumable_models()
    if suspects:
        logger.warning(
            "models %s carry state but expose no state_dict(); a resumed "
            "run may diverge from an uninterrupted one",
            suspects,
        )
    plan = scenario.fault_plan if scenario.fault_plan else None
    config_hash = _config_hash(scenario, controller, horizon, budget)

    path = Path(path)
    completed = 0
    metrics: dict[str, list[float]] = {k: [] for k in _METRIC_KEYS}
    records: list = []
    if resume and path.exists():
        ck = RunCheckpoint.load(path)
        if ck.config_hash != config_hash:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different run "
                f"(hash {ck.config_hash} != {config_hash}); "
                "pass resume=False to overwrite it"
            )
        if ck.horizon != horizon:
            raise CheckpointError(
                f"checkpoint {path} was taken for horizon {ck.horizon}, "
                f"requested {horizon}"
            )
        completed = int(ck.completed)
        metrics = {k: list(ck.metrics.get(k, [])) for k in _METRIC_KEYS}
        state_rng = _restore_rng(ck.state_rng)
        generator.load_state_dict(ck.generator)
        controller.load_state_dict(ck.controller)
        if plan is not None:
            if ck.plan_rng is None or ck.fault_plan is None:
                raise CheckpointError(
                    f"checkpoint {path} has no fault-plan state but the "
                    "scenario carries a plan"
                )
            plan_rng = _restore_rng(ck.plan_rng)
            plan.load_state_dict(ck.fault_plan)
        else:
            plan_rng = None
        logger.info("resumed %s at slot %d/%d", path, completed, horizon)
    else:
        generator.reset()
        state_rng = scenario.state_rng()
        if plan is not None:
            plan.reset()
            plan_rng = scenario.fault_rng()
        else:
            plan_rng = None

    while completed < horizon:
        count = min(every, horizon - completed)
        if compiled:
            segment = generator.compile_states(
                count, state_rng, chunk=chunk, start=completed
            )
        else:
            segment = generator.states(count, state_rng, start=completed)
        if plan is not None:
            segment = plan.stream(segment, scenario.network, plan_rng, tracer)
        part = run_simulation(
            controller,
            segment,
            budget=budget,
            keep_records=keep_records,
            on_slot=on_slot,
            tracer=tracer,
        )
        for key in _METRIC_KEYS:
            metrics[key].extend(getattr(part, key).tolist())
        if keep_records:
            records.extend(part.records)
        completed += count
        snapshot = RunCheckpoint(
            config_hash=config_hash,
            horizon=horizon,
            completed=completed,
            state_rng=state_rng.bit_generator.state,
            controller=controller.state_dict(),
            generator=generator.state_dict(),
            plan_rng=plan_rng.bit_generator.state if plan_rng is not None else None,
            fault_plan=plan.state_dict() if plan is not None else None,
            metrics=metrics,
        )
        snapshot.write(path)
        if tracer.enabled:
            tracer.counter("resilience.checkpoints", 1)
            tracer.event(
                "checkpoint", {"slot": completed, "path": str(path)}
            )

    return _result_from_metrics(metrics, budget, records)
