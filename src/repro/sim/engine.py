"""The discrete-time simulation loop."""

from __future__ import annotations

import logging
from typing import Callable, Iterable

import numpy as np

from repro.core.controller import OnlineController, SlotRecord
from repro.core.state import SlotState
from repro.obs.probe import Tracer, as_tracer
from repro.sim.results import SimulationResult

logger = logging.getLogger(__name__)


def run_simulation(
    controller: OnlineController,
    states: Iterable[SlotState],
    *,
    budget: float | None = None,
    keep_records: bool = False,
    on_slot: Callable[[SlotRecord], None] | None = None,
    tracer: "Tracer | None" = None,
) -> SimulationResult:
    """Drive *controller* through the given state sequence.

    Args:
        controller: The online policy under test.
        states: Iterable of per-slot system states ``beta_t`` (e.g. from
            :meth:`repro.sim.scenario.Scenario.fresh_states`).
        budget: The budget ``Cbar`` to record on the result (summaries
            use it to judge constraint satisfaction).
        keep_records: Retain the full :class:`SlotRecord` objects
            (assignments, allocations) -- memory-heavy on long runs.
        on_slot: Optional progress callback invoked after each slot.
        tracer: Observability tracer.  When enabled, every slot's record
            is streamed as a ``slot`` event (via
            :meth:`~repro.core.controller.SlotRecord.to_dict`), so trace
            sinks capture per-slot data even with ``keep_records=False``
            -- no :class:`SlotRecord` retention, no memory blow-up on
            long horizons.  A ``slot.price`` gauge is emitted per slot
            (for monitors/dashboards), and if the loop dies a final
            ``crash`` event carries the failing slot and exception --
            the trigger for :class:`repro.obs.trace.FlightRecorder`
            dumps.  Pass the same tracer to the controller to also get
            the per-phase spans.

    Returns:
        A :class:`SimulationResult` with per-slot trajectories.

    Raises:
        Exception: Whatever the controller (or a callback) raised; the
            ``crash`` event is emitted before re-raising.
    """
    tracer = as_tracer(tracer)
    latency: list[float] = []
    cost: list[float] = []
    theta: list[float] = []
    backlog: list[float] = []
    solve_seconds: list[float] = []
    price: list[float] = []
    records: list[SlotRecord] = []

    logger.info(
        "simulation start: controller=%s budget=%s",
        type(controller).__name__,
        budget,
    )
    last_t: int | None = None
    try:
        for state in states:
            if tracer.enabled:
                tracer.gauge("slot.price", float(state.price))
            record = controller.step(state)
            last_t = record.t
            logger.debug(
                "slot %d: latency=%.4f cost=%.4f backlog=%.3f solve=%.3fs",
                record.t,
                record.latency,
                record.cost,
                record.backlog_after,
                record.solve_seconds,
            )
            latency.append(record.latency)
            cost.append(record.cost)
            theta.append(record.theta)
            backlog.append(record.backlog_after)
            solve_seconds.append(record.solve_seconds)
            price.append(state.price)
            if keep_records:
                records.append(record)
            if tracer.enabled:
                tracer.event("slot", record.to_dict())
            if on_slot is not None:
                on_slot(record)
    except Exception as exc:
        logger.exception("simulation crashed after slot %s", last_t)
        if tracer.enabled:
            tracer.event(
                "crash",
                {
                    "slot": last_t,
                    "error": repr(exc),
                    "error_type": type(exc).__name__,
                },
            )
        raise

    logger.info(
        "simulation done: %d slots, mean latency %.4f, mean cost %.4f",
        len(latency),
        float(np.mean(latency)) if latency else float("nan"),
        float(np.mean(cost)) if cost else float("nan"),
    )
    return SimulationResult(
        latency=np.array(latency),
        cost=np.array(cost),
        theta=np.array(theta),
        backlog=np.array(backlog),
        solve_seconds=np.array(solve_seconds),
        price=np.array(price),
        budget=budget,
        records=records,
    )
