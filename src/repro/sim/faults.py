"""Fault injection: outage models and the composable fault framework.

The paper assumes an always-healthy substrate -- every server up, every
fronthaul link intact, the price signal fresh each slot.  This module
injects the failures real deployments see, in two layers:

* :class:`OutageModel` (kept from the original design) produces the
  per-slot server availability mask consumed through
  :attr:`repro.core.state.SlotState.available_servers`: offline servers
  are excluded from every device's strategy set and draw no power.
* :class:`StateFault` components transform an already-drawn
  :class:`~repro.core.state.SlotState` -- base-station outages,
  fronthaul degradation, price-feed dropouts (the controller acts on the
  last *stale* price), channel-estimate staleness -- and a
  :class:`FaultPlan` composes any number of them plus a scripted
  :class:`ChaosSchedule` of incidents.

A :class:`FaultPlan` is applied *after* state generation from its own
seeded stream, so the compiled state pipeline
(:meth:`~repro.sim.scenario.StateGenerator.compile_states`) stays valid
and bit-identical: the base stream never sees the plan's draws.  Every
component guards feasibility deterministically (a device keeps at least
one covered, connected base station; at least one server stays up) --
total blackouts are a scenario configuration error, not something an
online controller can answer.  All components expose
``reset``/``state_dict``/``load_state_dict`` so checkpoint/resume
(:mod:`repro.sim.checkpoint`) reproduces faulted runs bit-identically.
"""

from __future__ import annotations

import abc
import copy
import dataclasses
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.state import SlotState
from repro.exceptions import ConfigurationError
from repro.network.topology import MECNetwork
from repro.obs.probe import Tracer, as_tracer
from repro.types import BoolArray, FloatArray, Rng


class OutageModel(abc.ABC):
    """Produces per-slot server availability masks."""

    @abc.abstractmethod
    def availability(self, t: int, network: MECNetwork, rng: Rng) -> BoolArray:
        """The ``(N,)`` availability mask for slot *t*."""


class NoOutages(OutageModel):
    """The paper's setting: every server is always up."""

    def availability(self, t: int, network: MECNetwork, rng: Rng) -> BoolArray:
        del t, rng
        return np.ones(network.num_servers, dtype=bool)


class MarkovOutages(OutageModel):
    """Independent per-server up/down Markov chains.

    Each slot an up server fails with probability ``1/mtbf_slots`` and a
    down server recovers with probability ``1/mttr_slots``.  The
    stationary unavailability is ``mttr / (mtbf + mttr)``.

    Args:
        mtbf_slots: Mean time between failures, in slots.
        mttr_slots: Mean time to repair, in slots.
        min_up_fraction: Repair-forcing guard: if fewer than this
            fraction of servers would be up, the longest-down servers
            are force-repaired (keeps the scenario feasible and bounded
            away from "everything is dark").
        min_up_per_cluster: Keep at least this many servers alive in
            every cluster.  A fully dark room strands devices whose only
            covering base stations are wired to it, which would make the
            slot infeasible; 1 preserves feasibility whenever the
            fault-free scenario was feasible.
    """

    def __init__(
        self,
        *,
        mtbf_slots: float = 200.0,
        mttr_slots: float = 6.0,
        min_up_fraction: float = 0.5,
        min_up_per_cluster: int = 1,
    ) -> None:
        if mtbf_slots <= 0 or mttr_slots <= 0:
            raise ConfigurationError("mtbf/mttr must be positive")
        if not 0.0 < min_up_fraction <= 1.0:
            raise ConfigurationError("min_up_fraction must lie in (0, 1]")
        if min_up_per_cluster < 0:
            raise ConfigurationError("min_up_per_cluster must be >= 0")
        self.fail_prob = min(1.0 / mtbf_slots, 1.0)
        self.repair_prob = min(1.0 / mttr_slots, 1.0)
        self.min_up_fraction = float(min_up_fraction)
        self.min_up_per_cluster = int(min_up_per_cluster)
        self._up: BoolArray | None = None
        self._down_since: np.ndarray | None = None

    def availability(self, t: int, network: MECNetwork, rng: Rng) -> BoolArray:
        n = network.num_servers
        if self._up is None or self._up.size != n:
            self._up = np.ones(n, dtype=bool)
            self._down_since = np.full(n, -1, dtype=np.int64)
        assert self._down_since is not None

        draws = rng.random(n)
        failing = self._up & (draws < self.fail_prob)
        recovering = ~self._up & (draws < self.repair_prob)
        self._up = (self._up & ~failing) | recovering
        self._down_since[failing] = t
        self._down_since[self._up] = -1

        # Guard 1: force-repair the longest-down servers if too few are up.
        # The tie-break is deterministic: longest-down first (smallest
        # failure slot), equal downtimes resolved by server index via the
        # stable sort -- never by quicksort's unspecified tie order.
        min_up = max(1, int(np.ceil(self.min_up_fraction * n)))
        if int(self._up.sum()) < min_up:
            down = np.flatnonzero(~self._up)
            order = down[np.argsort(self._down_since[down], kind="stable")]
            need = min_up - int(self._up.sum())
            revive = order[:need]
            self._up[revive] = True
            self._down_since[revive] = -1

        # Guard 2: keep every cluster minimally staffed (feasibility),
        # with the same longest-down-first deterministic tie-break.
        if self.min_up_per_cluster > 0:
            for cluster in network.clusters:
                members = np.array(cluster.servers, dtype=np.int64)
                up_count = int(self._up[members].sum())
                need = min(self.min_up_per_cluster, members.size) - up_count
                if need > 0:
                    down = members[~self._up[members]]
                    order = down[np.argsort(self._down_since[down], kind="stable")]
                    revive = order[:need]
                    self._up[revive] = True
                    self._down_since[revive] = -1
        return self._up.copy()

    def reset(self) -> None:
        """Bring every server back up (between independent runs)."""
        self._up = None
        self._down_since = None

    def state_dict(self) -> dict:
        """Serializable chain state (for checkpoint/resume)."""
        if self._up is None or self._down_since is None:
            return {}
        return {
            "up": self._up.tolist(),
            "down_since": self._down_since.tolist(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore chain state captured by :meth:`state_dict`."""
        if not state:
            self.reset()
            return
        self._up = np.asarray(state["up"], dtype=bool)
        self._down_since = np.asarray(state["down_since"], dtype=np.int64)


class _TwoStateChain:
    """Independent per-entity up/down Markov chains (MTBF/MTTR).

    The shared engine behind the base-station, fronthaul, and price-feed
    faults.  Exactly one ``rng.random(n)`` call per slot regardless of
    chain state, so RNG consumption is deterministic and resumable.
    """

    def __init__(self, mtbf_slots: float, mttr_slots: float) -> None:
        if mtbf_slots <= 0 or mttr_slots <= 0:
            raise ConfigurationError("mtbf/mttr must be positive")
        self.fail_prob = min(1.0 / mtbf_slots, 1.0)
        self.repair_prob = min(1.0 / mttr_slots, 1.0)
        self._up: BoolArray | None = None
        self._down_since: np.ndarray | None = None

    def step(self, t: int, n: int, rng: Rng) -> BoolArray:
        """Advance every chain one slot; returns the up-mask (a view)."""
        if self._up is None or self._up.size != n:
            self._up = np.ones(n, dtype=bool)
            self._down_since = np.full(n, -1, dtype=np.int64)
        assert self._down_since is not None
        draws = rng.random(n)
        failing = self._up & (draws < self.fail_prob)
        recovering = ~self._up & (draws < self.repair_prob)
        self._up = (self._up & ~failing) | recovering
        self._down_since[failing] = t
        self._down_since[self._up] = -1
        return self._up

    def force_up(self, indices: np.ndarray) -> None:
        """Deterministically revive the given entities."""
        assert self._up is not None and self._down_since is not None
        self._up[indices] = True
        self._down_since[indices] = -1

    def longest_down_first(self, candidates: np.ndarray) -> np.ndarray:
        """Candidates ordered longest-down first, ties by index (stable)."""
        assert self._down_since is not None
        return candidates[np.argsort(self._down_since[candidates], kind="stable")]

    def reset(self) -> None:
        self._up = None
        self._down_since = None

    def state_dict(self) -> dict:
        if self._up is None or self._down_since is None:
            return {}
        return {"up": self._up.tolist(), "down_since": self._down_since.tolist()}

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.reset()
            return
        self._up = np.asarray(state["up"], dtype=bool)
        self._down_since = np.asarray(state["down_since"], dtype=np.int64)


class StateFault(abc.ABC):
    """A seeded, stateful transform applied to a freshly drawn slot state.

    Components consume the :class:`FaultPlan`'s dedicated RNG stream --
    never the state stream -- so the compiled state pipeline stays
    bit-identical with or without faults.  Implementations must draw a
    fixed amount of randomness per slot (independent of fault state) so
    checkpoint/resume reproduces the stream exactly.
    """

    @abc.abstractmethod
    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        """Transform *state*; returns the (possibly new) state and events."""

    def reset(self) -> None:
        """Forget all chain/staleness state (between independent runs)."""

    def subset(
        self,
        device_map: Sequence[int],
        bs_map: Sequence[int],
        server_map: Sequence[int],
    ) -> "StateFault":
        """Project this fault onto a cell's sub-topology.

        Mirrors ``TaskGenerator.subset``: the maps are the cell's
        global indices in local order (``map[i_local] == i_global``,
        from :class:`~repro.network.partition.CellIndexMaps`).  The
        stochastic faults all size their chains lazily from the first
        state they see, so the base projection is a fresh, reset copy
        -- each cell then runs an *independent* chain from its own
        child fault stream.  Faults carrying global index structure
        must override this and remap.
        """
        del device_map, bs_map, server_map
        out = copy.deepcopy(self)
        out.reset()
        return out

    def state_dict(self) -> dict:
        """Serializable internal state (for checkpoint/resume)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore internal state captured by :meth:`state_dict`."""
        del state


def _transition_events(
    kind: str, previous: tuple[int, ...], current: tuple[int, ...], t: int
) -> list[dict]:
    """Onset/clear events for a fault whose affected-target set changed."""
    events: list[dict] = []
    onset = sorted(set(current) - set(previous))
    cleared = sorted(set(previous) - set(current))
    if onset:
        events.append({"fault": kind, "phase": "onset", "t": t, "targets": onset})
    if cleared:
        events.append({"fault": kind, "phase": "clear", "t": t, "targets": cleared})
    return events


class ServerOutages(StateFault):
    """Adapter lifting an :class:`OutageModel` into the fault framework.

    The model's mask is ANDed with any availability mask already on the
    state; if the intersection would go completely dark, the state's
    existing mask wins (the adapter defers rather than blacking out).
    """

    def __init__(self, model: OutageModel | None = None) -> None:
        self.model = model if model is not None else MarkovOutages()
        self._last_down: tuple[int, ...] = ()

    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        mask = self.model.availability(state.t, network, rng)
        if state.available_servers is not None:
            combined = mask & state.available_servers
            mask = combined if combined.any() else state.available_servers
        down = tuple(int(n) for n in np.flatnonzero(~mask))
        events = _transition_events("server_outage", self._last_down, down, state.t)
        self._last_down = down
        if not down and state.available_servers is None:
            return state, events
        return dataclasses.replace(state, available_servers=mask), events

    def reset(self) -> None:
        self._last_down = ()
        if hasattr(self.model, "reset"):
            self.model.reset()

    def state_dict(self) -> dict:
        out: dict = {"last_down": list(self._last_down)}
        if hasattr(self.model, "state_dict"):
            out["model"] = self.model.state_dict()
        return out

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.reset()
            return
        self._last_down = tuple(int(n) for n in state.get("last_down", ()))
        if hasattr(self.model, "load_state_dict"):
            self.model.load_state_dict(state.get("model", {}))


class BaseStationOutages(StateFault):
    """Per-base-station up/down Markov chains.

    A down base station's access-link column is zeroed, which removes it
    from every device's strategy set (zero spectral efficiency means
    "out of coverage").  A deterministic guard never strands a covered
    device: while some device would lose its last covered base station,
    the longest-down covering station is revived (ties by index, stable).
    """

    def __init__(self, *, mtbf_slots: float = 300.0, mttr_slots: float = 4.0) -> None:
        self._chain = _TwoStateChain(mtbf_slots, mttr_slots)
        self._last_down: tuple[int, ...] = ()

    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        num_bs = state.num_base_stations
        up = self._chain.step(state.t, num_bs, rng)
        coverage = state.spectral_efficiency > 0.0
        if not up.all():
            covered = coverage.any(axis=1)
            stranded = covered & ~(coverage & up[None, :]).any(axis=1)
            while stranded.any():
                device = int(np.argmax(stranded))
                candidates = np.flatnonzero(coverage[device] & ~up)
                revive = self._chain.longest_down_first(candidates)[:1]
                self._chain.force_up(revive)
                stranded = covered & ~(coverage & up[None, :]).any(axis=1)
        down = tuple(int(k) for k in np.flatnonzero(~up))
        events = _transition_events("bs_outage", self._last_down, down, state.t)
        self._last_down = down
        if not down:
            return state, events
        h = state.spectral_efficiency.copy()
        h[:, ~up] = 0.0
        return dataclasses.replace(state, spectral_efficiency=h), events

    def reset(self) -> None:
        self._chain.reset()
        self._last_down = ()

    def state_dict(self) -> dict:
        return {"chain": self._chain.state_dict(), "last_down": list(self._last_down)}

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.reset()
            return
        self._chain.load_state_dict(state.get("chain", {}))
        self._last_down = tuple(int(k) for k in state.get("last_down", ()))


class FronthaulDegradation(StateFault):
    """Per-link fronthaul degradation/loss as up/down Markov chains.

    While a link is degraded its fronthaul spectral efficiency is
    multiplied by ``factor`` (strictly positive, so the slot stays
    feasible -- transmissions slow down rather than vanish, modelling a
    lossy or rerouted backhaul path).
    """

    def __init__(
        self,
        *,
        mtbf_slots: float = 200.0,
        mttr_slots: float = 8.0,
        factor: float = 0.25,
    ) -> None:
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError("degradation factor must lie in (0, 1]")
        self.factor = float(factor)
        self._chain = _TwoStateChain(mtbf_slots, mttr_slots)
        self._last_down: tuple[int, ...] = ()

    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        num_bs = state.num_base_stations
        up = self._chain.step(state.t, num_bs, rng)
        down = tuple(int(k) for k in np.flatnonzero(~up))
        events = _transition_events(
            "fronthaul_degraded", self._last_down, down, state.t
        )
        self._last_down = down
        if not down:
            return state, events
        base = (
            state.fronthaul_se
            if state.fronthaul_se is not None
            else network.fronthaul_se
        )
        degraded = np.asarray(base, dtype=float).copy()
        degraded[~up] *= self.factor
        return dataclasses.replace(state, fronthaul_se=degraded), events

    def reset(self) -> None:
        self._chain.reset()
        self._last_down = ()

    def state_dict(self) -> dict:
        return {"chain": self._chain.state_dict(), "last_down": list(self._last_down)}

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.reset()
            return
        self._chain.load_state_dict(state.get("chain", {}))
        self._last_down = tuple(int(k) for k in state.get("last_down", ()))


class PriceFeedDropouts(StateFault):
    """Price-feed dropouts: the controller acts on the last *stale* price.

    A single up/down Markov chain models the feed.  While the feed is
    down the slot's true price is replaced with the last successfully
    observed one; the first slot is always treated as fresh so a price
    exists to hold.
    """

    def __init__(self, *, mtbf_slots: float = 100.0, mttr_slots: float = 3.0) -> None:
        self._chain = _TwoStateChain(mtbf_slots, mttr_slots)
        self._last_fresh: float | None = None
        self._stale_age = 0

    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        del network
        feed_up = bool(self._chain.step(state.t, 1, rng)[0])
        events: list[dict] = []
        if feed_up or self._last_fresh is None:
            if self._stale_age:
                events.append(
                    {"fault": "price_feed", "phase": "clear", "t": state.t,
                     "stale_slots": self._stale_age}
                )
            self._last_fresh = float(state.price)
            self._stale_age = 0
            return state, events
        self._stale_age += 1
        if self._stale_age == 1:
            events.append({"fault": "price_feed", "phase": "onset", "t": state.t})
        return dataclasses.replace(state, price=self._last_fresh), events

    def reset(self) -> None:
        self._chain.reset()
        self._last_fresh = None
        self._stale_age = 0

    def state_dict(self) -> dict:
        return {
            "chain": self._chain.state_dict(),
            "last_fresh": self._last_fresh,
            "stale_age": self._stale_age,
        }

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.reset()
            return
        self._chain.load_state_dict(state.get("chain", {}))
        last_fresh = state.get("last_fresh")
        self._last_fresh = None if last_fresh is None else float(last_fresh)
        self._stale_age = int(state.get("stale_age", 0))


class ChannelStaleness(StateFault):
    """Stale channel estimates: old CSI reaches the controller.

    With probability ``prob`` (one draw per slot, always consumed) the
    controller observes the *previous* slot's channel matrix instead of
    the current one.  Compose this before any base-station outage fault
    so outage zeroing still applies to whatever estimate survives.
    """

    def __init__(self, *, prob: float = 0.1) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ConfigurationError("staleness probability must lie in [0, 1]")
        self.prob = float(prob)
        self._last_h: FloatArray | None = None

    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        del network
        draw = float(rng.random())
        fresh = state.spectral_efficiency
        stale = (
            self._last_h is not None
            and self._last_h.shape == fresh.shape
            and draw < self.prob
        )
        previous = self._last_h
        self._last_h = np.array(fresh, copy=True)
        if not stale:
            return state, []
        assert previous is not None
        events = [{"fault": "channel_stale", "phase": "onset", "t": state.t}]
        return dataclasses.replace(state, spectral_efficiency=previous), events

    def reset(self) -> None:
        self._last_h = None

    def state_dict(self) -> dict:
        return {
            "last_h": None if self._last_h is None else self._last_h.tolist()
        }

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.reset()
            return
        last_h = state.get("last_h")
        self._last_h = None if last_h is None else np.asarray(last_h, dtype=float)


_INCIDENT_KINDS = ("server_down", "bs_down", "fronthaul_degraded", "price_freeze")


@dataclass(frozen=True)
class ScriptedIncident:
    """A deterministic incident active for ``[at, at + duration)`` slots.

    Attributes:
        at: First slot the incident is active.
        duration: Number of slots it stays active.
        kind: One of ``server_down`` / ``bs_down`` / ``fronthaul_degraded``
            / ``price_freeze``.
        targets: Server or base-station indices affected (ignored by
            ``price_freeze``).
        factor: Multiplier for ``fronthaul_degraded``.
    """

    at: int
    duration: int
    kind: str
    targets: tuple[int, ...] = ()
    factor: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in _INCIDENT_KINDS:
            raise ConfigurationError(
                f"unknown incident kind {self.kind!r}; expected one of "
                f"{_INCIDENT_KINDS}"
            )
        if self.at < 0 or self.duration <= 0:
            raise ConfigurationError("incidents need at >= 0 and duration >= 1")
        if self.kind != "price_freeze" and not self.targets:
            raise ConfigurationError(f"{self.kind} incidents need explicit targets")
        if not 0.0 < self.factor <= 1.0:
            raise ConfigurationError("incident factor must lie in (0, 1]")
        object.__setattr__(self, "targets", tuple(int(x) for x in self.targets))

    def active(self, t: int) -> bool:
        return self.at <= t < self.at + self.duration

    def subset(
        self, bs_map: Sequence[int], server_map: Sequence[int]
    ) -> "ScriptedIncident | None":
        """The incident as seen from one cell, or ``None`` if it does
        not touch the cell.

        ``server_down`` targets are remapped through *server_map* and
        ``bs_down`` / ``fronthaul_degraded`` through *bs_map*
        (``map[i_local] == i_global``); a ``price_freeze`` has no
        targets and lands in every cell.  An incident whose remapped
        target set is empty is dropped -- the fleet-wide incident
        simply never reaches that cell.
        """
        if self.kind == "price_freeze":
            return self
        source = server_map if self.kind == "server_down" else bs_map
        local = {int(g): i for i, g in enumerate(source)}
        targets = tuple(local[t] for t in self.targets if t in local)
        if not targets:
            return None
        return dataclasses.replace(self, targets=targets)


class ChaosSchedule:
    """An ordered collection of :class:`ScriptedIncident` objects."""

    def __init__(self, incidents: Iterable[ScriptedIncident]) -> None:
        self.incidents = tuple(incidents)
        for incident in self.incidents:
            if not isinstance(incident, ScriptedIncident):
                raise ConfigurationError(
                    "ChaosSchedule takes ScriptedIncident objects, got "
                    f"{type(incident).__name__}"
                )

    def active(self, t: int) -> list[ScriptedIncident]:
        return [incident for incident in self.incidents if incident.active(t)]

    def subset(
        self, bs_map: Sequence[int], server_map: Sequence[int]
    ) -> "ChaosSchedule":
        """The schedule restricted to one cell (incident order kept)."""
        projected = (
            incident.subset(bs_map, server_map) for incident in self.incidents
        )
        return ChaosSchedule(i for i in projected if i is not None)


class FaultPlan:
    """Composes stochastic fault models plus scripted incidents.

    Stochastic :class:`StateFault` components run first, in the order
    given (each seeing its predecessors' output), then every active
    :class:`ScriptedIncident`.  The plan draws from its own seeded
    stream (``Scenario.fault_rng()``), leaving the state stream -- and
    therefore the compiled state pipeline -- untouched.

    Args:
        faults: Stochastic fault components, applied in order.
        schedule: A :class:`ChaosSchedule` or an iterable of
            :class:`ScriptedIncident` objects.
    """

    def __init__(
        self,
        faults: Sequence[StateFault] = (),
        *,
        schedule: "ChaosSchedule | Iterable[ScriptedIncident] | None" = None,
    ) -> None:
        self.faults = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, StateFault):
                raise ConfigurationError(
                    f"FaultPlan takes StateFault components, got "
                    f"{type(fault).__name__}"
                )
        if schedule is None or isinstance(schedule, ChaosSchedule):
            self.schedule = schedule
        else:
            self.schedule = ChaosSchedule(schedule)
        self._prev_price: float | None = None

    def __bool__(self) -> bool:
        return bool(self.faults) or bool(
            self.schedule is not None and self.schedule.incidents
        )

    def subset(
        self,
        device_map: Sequence[int],
        bs_map: Sequence[int],
        server_map: Sequence[int],
    ) -> "FaultPlan":
        """Project the plan onto a cell's sub-topology.

        Stochastic components are projected through
        :meth:`StateFault.subset` (fresh chains, sized by the cell's
        states, driven by the cell's own child fault stream) and
        scripted incidents through
        :meth:`ScriptedIncident.subset` (targets remapped to local
        indices, incidents missing the cell dropped).  The projected
        plan may be empty (falsy) -- a cell untouched by every
        incident of an incidents-only plan runs fault-free.
        """
        faults = tuple(
            fault.subset(device_map, bs_map, server_map) for fault in self.faults
        )
        schedule = (
            None
            if self.schedule is None
            else self.schedule.subset(bs_map, server_map)
        )
        return FaultPlan(faults, schedule=schedule)

    def reset(self) -> None:
        """Forget all component state (between independent runs)."""
        for fault in self.faults:
            fault.reset()
        self._prev_price = None

    def apply(
        self, state: SlotState, network: MECNetwork, rng: Rng
    ) -> tuple[SlotState, list[dict]]:
        """Run every component plus active incidents on one slot state."""
        events: list[dict] = []
        for fault in self.faults:
            state, fault_events = fault.apply(state, network, rng)
            events.extend(fault_events)
        if self.schedule is not None:
            for incident in self.schedule.active(state.t):
                state, incident_events = self._apply_incident(
                    incident, state, network
                )
                events.extend(incident_events)
        self._prev_price = float(state.price)
        return state, events

    def _apply_incident(
        self, incident: ScriptedIncident, state: SlotState, network: MECNetwork
    ) -> tuple[SlotState, list[dict]]:
        events: list[dict] = []
        if incident.at == state.t:
            events.append(
                {
                    "fault": f"incident.{incident.kind}",
                    "phase": "onset",
                    "t": state.t,
                    "targets": list(incident.targets),
                    "duration": incident.duration,
                }
            )
        if incident.kind == "server_down":
            mask = (
                state.available_servers.copy()
                if state.available_servers is not None
                else np.ones(network.num_servers, dtype=bool)
            )
            targets = [n for n in incident.targets if 0 <= n < mask.size]
            was_up = np.flatnonzero(mask)
            mask[targets] = False
            if not mask.any() and was_up.size:
                mask[was_up[0]] = True  # never go completely dark
            return dataclasses.replace(state, available_servers=mask), events
        if incident.kind == "bs_down":
            h = state.spectral_efficiency.copy()
            coverage_before = h > 0.0
            targets = [k for k in incident.targets if 0 <= k < h.shape[1]]
            h[:, targets] = 0.0
            stranded = coverage_before.any(axis=1) & ~(h > 0.0).any(axis=1)
            for device in np.flatnonzero(stranded):
                for k in targets:  # restore the first covering target column
                    if coverage_before[device, k]:
                        h[:, k] = state.spectral_efficiency[:, k]
                        break
            return dataclasses.replace(state, spectral_efficiency=h), events
        if incident.kind == "fronthaul_degraded":
            base = (
                state.fronthaul_se
                if state.fronthaul_se is not None
                else network.fronthaul_se
            )
            degraded = np.asarray(base, dtype=float).copy()
            targets = [k for k in incident.targets if 0 <= k < degraded.size]
            degraded[targets] *= incident.factor
            return dataclasses.replace(state, fronthaul_se=degraded), events
        # price_freeze: hold the previous slot's (post-fault) price.
        if self._prev_price is not None:
            return dataclasses.replace(state, price=self._prev_price), events
        return state, events

    def stream(
        self,
        states: Iterator[SlotState],
        network: MECNetwork,
        rng: Rng,
        tracer: "Tracer | None" = None,
    ) -> Iterator[SlotState]:
        """Wrap a state iterator, applying the plan slot by slot.

        Emits each fault as a ``fault`` event plus a
        ``resilience.faults`` counter on *tracer*.  Does NOT reset the
        plan -- callers decide whether they are starting fresh
        (:meth:`reset`) or resuming from a checkpoint
        (:meth:`load_state_dict`).
        """
        tracer = as_tracer(tracer)
        for state in states:
            out, events = self.apply(state, network, rng)
            if tracer.enabled and events:
                for event in events:
                    tracer.event("fault", event)
                tracer.counter("resilience.faults", len(events))
            yield out

    def state_dict(self) -> dict:
        """Serializable plan state (for checkpoint/resume)."""
        return {
            "prev_price": self._prev_price,
            "faults": [fault.state_dict() for fault in self.faults],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore plan state captured by :meth:`state_dict`."""
        if not state:
            self.reset()
            return
        prev = state.get("prev_price")
        self._prev_price = None if prev is None else float(prev)
        stored = state.get("faults", [])
        for fault, fault_state in zip(self.faults, stored):
            fault.load_state_dict(fault_state)
