"""Server-outage (failure-injection) models.

The paper assumes every edge server is always up.  Real deployments see
maintenance windows and failures; these models produce the per-slot
availability mask consumed through
:attr:`repro.core.state.SlotState.available_servers`: offline servers
are excluded from every device's strategy set and draw no power.

:class:`MarkovOutages` gives each server an independent two-state
(up/down) Markov chain parameterised by the familiar MTBF/MTTR pair,
with a guard that never lets the last reachable compute capacity
disappear (the problem would become infeasible, which is a scenario
configuration error rather than something an online controller can
answer).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import MECNetwork
from repro.types import BoolArray, Rng


class OutageModel(abc.ABC):
    """Produces per-slot server availability masks."""

    @abc.abstractmethod
    def availability(self, t: int, network: MECNetwork, rng: Rng) -> BoolArray:
        """The ``(N,)`` availability mask for slot *t*."""


class NoOutages(OutageModel):
    """The paper's setting: every server is always up."""

    def availability(self, t: int, network: MECNetwork, rng: Rng) -> BoolArray:
        del t, rng
        return np.ones(network.num_servers, dtype=bool)


class MarkovOutages(OutageModel):
    """Independent per-server up/down Markov chains.

    Each slot an up server fails with probability ``1/mtbf_slots`` and a
    down server recovers with probability ``1/mttr_slots``.  The
    stationary unavailability is ``mttr / (mtbf + mttr)``.

    Args:
        mtbf_slots: Mean time between failures, in slots.
        mttr_slots: Mean time to repair, in slots.
        min_up_fraction: Repair-forcing guard: if fewer than this
            fraction of servers would be up, the longest-down servers
            are force-repaired (keeps the scenario feasible and bounded
            away from "everything is dark").
        min_up_per_cluster: Keep at least this many servers alive in
            every cluster.  A fully dark room strands devices whose only
            covering base stations are wired to it, which would make the
            slot infeasible; 1 preserves feasibility whenever the
            fault-free scenario was feasible.
    """

    def __init__(
        self,
        *,
        mtbf_slots: float = 200.0,
        mttr_slots: float = 6.0,
        min_up_fraction: float = 0.5,
        min_up_per_cluster: int = 1,
    ) -> None:
        if mtbf_slots <= 0 or mttr_slots <= 0:
            raise ConfigurationError("mtbf/mttr must be positive")
        if not 0.0 < min_up_fraction <= 1.0:
            raise ConfigurationError("min_up_fraction must lie in (0, 1]")
        if min_up_per_cluster < 0:
            raise ConfigurationError("min_up_per_cluster must be >= 0")
        self.fail_prob = min(1.0 / mtbf_slots, 1.0)
        self.repair_prob = min(1.0 / mttr_slots, 1.0)
        self.min_up_fraction = float(min_up_fraction)
        self.min_up_per_cluster = int(min_up_per_cluster)
        self._up: BoolArray | None = None
        self._down_since: np.ndarray | None = None

    def availability(self, t: int, network: MECNetwork, rng: Rng) -> BoolArray:
        n = network.num_servers
        if self._up is None or self._up.size != n:
            self._up = np.ones(n, dtype=bool)
            self._down_since = np.full(n, -1, dtype=np.int64)
        assert self._down_since is not None

        draws = rng.random(n)
        failing = self._up & (draws < self.fail_prob)
        recovering = ~self._up & (draws < self.repair_prob)
        self._up = (self._up & ~failing) | recovering
        self._down_since[failing] = t
        self._down_since[self._up] = -1

        # Guard 1: force-repair the longest-down servers if too few are up.
        min_up = max(1, int(np.ceil(self.min_up_fraction * n)))
        if int(self._up.sum()) < min_up:
            down = np.flatnonzero(~self._up)
            order = down[np.argsort(self._down_since[down])]
            need = min_up - int(self._up.sum())
            revive = order[:need]
            self._up[revive] = True
            self._down_since[revive] = -1

        # Guard 2: keep every cluster minimally staffed (feasibility).
        if self.min_up_per_cluster > 0:
            for cluster in network.clusters:
                members = np.array(cluster.servers, dtype=np.int64)
                up_count = int(self._up[members].sum())
                need = min(self.min_up_per_cluster, members.size) - up_count
                if need > 0:
                    down = members[~self._up[members]]
                    order = down[np.argsort(self._down_since[down])]
                    revive = order[:need]
                    self._up[revive] = True
                    self._down_since[revive] = -1
        return self._up.copy()

    def reset(self) -> None:
        """Bring every server back up (between independent runs)."""
        self._up = None
        self._down_since = None
