"""Trajectory metrics: window averages and convergence detection."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray


def window_averages(values: FloatArray, window: int) -> FloatArray:
    """Non-overlapping window means (the paper's Fig. 9 averages 48 slots).

    Trailing values that do not fill a window are dropped.

    Raises:
        ConfigurationError: If *window* is not positive or exceeds the
            series length.
    """
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ConfigurationError("window must be positive")
    if values.size < window:
        raise ConfigurationError(
            f"series of length {values.size} shorter than window {window}"
        )
    usable = (values.size // window) * window
    return values[:usable].reshape(-1, window).mean(axis=1)


def cumulative_time_average(values: FloatArray) -> FloatArray:
    """``(1/t) sum_{s<=t} values[s]`` for every prefix ``t``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    return np.cumsum(values) / np.arange(1, values.size + 1)


def converged_tail_mean(values: FloatArray, *, fraction: float = 0.5) -> float:
    """Mean of the last *fraction* of the series (post-transient value).

    Used for "converged queue backlog" style statistics (Fig. 8): the
    first part of a DPP run is the queue ramping up; the steady state is
    the tail.
    """
    values = np.asarray(values, dtype=np.float64)
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must lie in (0, 1]")
    if values.size == 0:
        raise ConfigurationError("empty series")
    start = int(np.floor(values.size * (1.0 - fraction)))
    return float(np.mean(values[start:]))


def slope(values: FloatArray) -> float:
    """Least-squares slope of the series against its index.

    A near-zero slope over the tail indicates the virtual queue is
    stable (its time average converged).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        raise ConfigurationError("need at least two points for a slope")
    x = np.arange(values.size, dtype=np.float64)
    x = x - x.mean()
    return float(np.dot(x, values - values.mean()) / np.dot(x, x))
