"""Repeated-seed replication of simulation runs.

Single simulation runs are noisy; claims in the paper are about
averages.  :func:`run_replications` executes the same experimental
configuration under several root seeds -- optionally across processes --
and aggregates the headline metrics with bootstrap confidence
intervals.

The unit of work is a :class:`ReplicationSpec`: a plain, picklable
description (scenario knobs + controller knobs) from which each worker
rebuilds everything.  This is what makes multiprocessing safe -- no
controller or network objects ever cross process boundaries.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.aggregate import RunStatistics, summarize_runs
from repro.baselines import mcba_p2a_solver, ropt_p2a_solver
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ReplicationSpec:
    """A picklable description of one simulation configuration.

    Attributes:
        num_devices: Devices ``I``.
        horizon: Slots per run.
        v: DPP parameter ``V``.
        z: BDMA alternation rounds.
        solver: ``"bdma"``, ``"mcba"``, or ``"ropt"``.
        workload: ``"uniform"`` or ``"diurnal"``.
        budget_fraction: Budget position in the feasible range.
        warm_start_queue: Start the queue at its estimated equilibrium.
        network_overrides: Extra :class:`~repro.network.builder.NetworkBuilder`
            fields (must be picklable).
    """

    num_devices: int = 30
    horizon: int = 96
    v: float = 100.0
    z: int = 3
    solver: str = "bdma"
    workload: str = "uniform"
    budget_fraction: float = 0.5
    warm_start_queue: bool = False
    network_overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.solver not in ("bdma", "mcba", "ropt"):
            raise ConfigurationError(f"unknown solver {self.solver!r}")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")


@dataclass(frozen=True)
class ReplicationOutcome:
    """Headline metrics of one seed's run."""

    seed: int
    mean_latency: float
    mean_cost: float
    mean_backlog: float
    budget: float


@dataclass
class ReplicationReport:
    """Aggregated statistics across seeds.

    Attributes:
        outcomes: Per-seed results, in seed order.
        latency: Bootstrap statistics of the time-average latency.
        cost: Bootstrap statistics of the time-average cost.
        budget: The (seed-0) budget for reference.
    """

    outcomes: list[ReplicationOutcome] = field(default_factory=list)
    latency: RunStatistics | None = None
    cost: RunStatistics | None = None
    budget: float = 0.0

    def budget_satisfaction_rate(self) -> float:
        """Fraction of seeds whose realised cost met their budget."""
        if not self.outcomes:
            return 0.0
        hits = sum(
            1 for o in self.outcomes if o.mean_cost <= o.budget * (1 + 1e-9)
        )
        return hits / len(self.outcomes)


def execute_replication(args: tuple[ReplicationSpec, int]) -> ReplicationOutcome:
    """Run one seed of a spec (module-level so it pickles for workers)."""
    spec, seed = args
    scenario = repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(
            num_devices=spec.num_devices,
            workload=spec.workload,
            budget_fraction=spec.budget_fraction,
        ),
        **dict(spec.network_overrides),
    )
    solver = None
    z = spec.z
    if spec.solver == "ropt":
        solver, z = ropt_p2a_solver(), 1
    elif spec.solver == "mcba":
        solver, z = mcba_p2a_solver(), 1
    initial = 0.0
    if spec.warm_start_queue:
        from repro.analysis.equilibrium import estimate_equilibrium_backlog

        initial = estimate_equilibrium_backlog(
            scenario.network,
            list(scenario.fresh_states(repro.DEFAULT_PERIOD)),
            scenario.controller_rng("replication-eq"),
            v=spec.v,
            budget=scenario.budget,
        )
    controller = repro.DPPController(
        scenario.network,
        scenario.controller_rng("replication"),
        v=spec.v,
        budget=scenario.budget,
        z=z,
        p2a_solver=solver,
        initial_backlog=initial,
    )
    result = repro.run_simulation(
        controller, scenario.fresh_states(spec.horizon), budget=scenario.budget
    )
    return ReplicationOutcome(
        seed=seed,
        mean_latency=result.time_average_latency(),
        mean_cost=result.time_average_cost(),
        mean_backlog=float(np.mean(result.backlog)),
        budget=scenario.budget,
    )


def run_replications(
    spec: ReplicationSpec,
    seeds: tuple[int, ...] | list[int],
    *,
    processes: int | None = None,
) -> ReplicationReport:
    """Run *spec* under every seed and aggregate.

    Args:
        spec: The configuration to replicate.
        seeds: Root seeds; each yields an independent topology and
            state stream.
        processes: Worker processes; ``None`` or 1 runs sequentially
            (no pickling, easier debugging).

    Returns:
        A :class:`ReplicationReport` with per-seed outcomes and
        bootstrap statistics of the headline metrics.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    jobs = [(spec, seed) for seed in seeds]
    if processes is None or processes <= 1:
        outcomes = [execute_replication(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            outcomes = list(pool.map(execute_replication, jobs))

    report = ReplicationReport(outcomes=outcomes, budget=outcomes[0].budget)
    report.latency = summarize_runs(
        np.array([o.mean_latency for o in outcomes])
    )
    report.cost = summarize_runs(np.array([o.mean_cost for o in outcomes]))
    return report
