"""Repeated-seed replication of simulation runs.

Single simulation runs are noisy; claims in the paper are about
averages.  :func:`run_replications` executes the same experimental
configuration under several root seeds -- optionally across processes --
and aggregates the headline metrics with bootstrap confidence
intervals.

The unit of work is a :class:`ReplicationSpec`: a plain, picklable
description (scenario knobs + controller knobs) from which each worker
rebuilds everything.  This is what makes multiprocessing safe -- no
controller or network objects ever cross process boundaries.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.aggregate import RunStatistics, summarize_runs
from repro.exceptions import ConfigurationError, SolverError
from repro.obs.probe import Probe, Tracer, as_tracer

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ReplicationSpec:
    """A picklable description of one simulation configuration.

    Attributes:
        num_devices: Devices ``I``.
        horizon: Slots per run.
        v: DPP parameter ``V``.
        z: BDMA alternation rounds.
        solver: A controller name understood by
            :func:`repro.api.make_controller` (``"bdma"``/``"dpp"``,
            ``"mcba"``, ``"ropt"``, ``"greedy"``, or ``"fixed"``).
        workload: ``"uniform"`` or ``"diurnal"``.
        budget_fraction: Budget position in the feasible range.
        warm_start_queue: Start the queue at its estimated equilibrium.
        network_overrides: Extra :class:`~repro.network.builder.NetworkBuilder`
            fields (must be picklable).
        fail_seeds: Seeds whose runs always raise (failure injection for
            testing the retry/salvage machinery; never use in real
            experiments).
        flaky_seeds: Seeds whose runs fail on their first attempt in
            each process and succeed on retry (transient-failure
            injection).
        batch_seeds: Seeds run together in lockstep per dispatch (see
            :mod:`repro.sim.batched`): their per-round P2-B searches are
            fused into one kernel invocation, so a batch is cheaper than
            ``batch_seeds`` solo runs while staying bit-identical to
            them.  1 (the default) keeps the historical per-seed path;
            ``"fixed"``-solver specs always run per seed (no BDMA loop
            to fuse).  A lane that fails inside a batch is retried
            *solo* through the usual retry machinery.
        engine_backend: Array-kernel backend (``"numpy"``/``"jit"``) for
            every run's controller; bit-identical across backends.
    """

    num_devices: int = 30
    horizon: int = 96
    v: float = 100.0
    z: int = 3
    solver: str = "bdma"
    workload: str = "uniform"
    budget_fraction: float = 0.5
    warm_start_queue: bool = False
    network_overrides: tuple[tuple[str, object], ...] = ()
    fail_seeds: tuple[int, ...] = ()
    flaky_seeds: tuple[int, ...] = ()
    batch_seeds: int = 1
    engine_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.solver not in ("bdma", "dpp", "mcba", "ropt", "greedy", "fixed"):
            raise ConfigurationError(f"unknown solver {self.solver!r}")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.batch_seeds < 1:
            raise ConfigurationError("batch_seeds must be >= 1")
        if self.engine_backend not in ("numpy", "jit"):
            raise ConfigurationError(
                f"unknown engine backend {self.engine_backend!r}"
            )


@dataclass(frozen=True)
class ReplicationOutcome:
    """Headline metrics of one seed's run.

    Attributes:
        seed: Root seed of the run.
        mean_latency: Time-average latency.
        mean_cost: Time-average energy cost.
        mean_backlog: Time-average virtual-queue backlog.
        budget: The scenario's budget.
        mean_solve_seconds: Average per-slot decision time.
        phase_state: The worker tracer's aggregated phase state
            (:meth:`repro.obs.PhaseAggregator.state_dict`) when tracing
            was requested; the parent merges these.
    """

    seed: int
    mean_latency: float
    mean_cost: float
    mean_backlog: float
    budget: float
    mean_solve_seconds: float = float("nan")
    phase_state: dict | None = None


@dataclass
class ReplicationReport:
    """Aggregated statistics across seeds.

    Attributes:
        outcomes: Per-seed results for the seeds that *succeeded*, in
            seed order.
        latency: Bootstrap statistics of the time-average latency.
        cost: Bootstrap statistics of the time-average cost.
        budget: The (first successful seed's) budget for reference;
            ``0.0`` when every seed failed.
        failed_seeds: Seeds that produced no outcome after all retry
            attempts (empty on a healthy run).
    """

    outcomes: list[ReplicationOutcome] = field(default_factory=list)
    latency: RunStatistics | None = None
    cost: RunStatistics | None = None
    budget: float = 0.0
    failed_seeds: list[int] = field(default_factory=list)

    def budget_satisfaction_rate(self) -> float:
        """Fraction of *successful* seeds whose realised cost met their
        budget; ``0.0`` when no seed succeeded."""
        if not self.outcomes:
            return 0.0
        hits = sum(
            1 for o in self.outcomes if o.mean_cost <= o.budget * (1 + 1e-9)
        )
        return hits / len(self.outcomes)

    def summary(self) -> "ReplicationSummary":
        """Condense the report into a :class:`ReplicationSummary`.

        Field names deliberately mirror
        :class:`repro.sim.results.SimulationSummary` so both result
        flavours serialise and compare uniformly.

        Raises:
            ConfigurationError: The report has no successful outcomes to
                average (e.g. every seed landed in ``failed_seeds``).
        """
        if not self.outcomes:
            raise ConfigurationError(
                "cannot summarise an empty report"
                + (
                    f" (all {len(self.failed_seeds)} seeds failed)"
                    if self.failed_seeds
                    else ""
                )
            )
        return ReplicationSummary(
            runs=len(self.outcomes),
            failed_runs=len(self.failed_seeds),
            mean_latency=float(np.mean([o.mean_latency for o in self.outcomes])),
            mean_cost=float(np.mean([o.mean_cost for o in self.outcomes])),
            mean_backlog=float(np.mean([o.mean_backlog for o in self.outcomes])),
            budget_satisfied=self.budget_satisfaction_rate() >= 1.0,
            mean_solve_seconds=float(
                np.mean([o.mean_solve_seconds for o in self.outcomes])
            ),
            latency_ci=(
                (self.latency.ci_low, self.latency.ci_high)
                if self.latency is not None
                else None
            ),
            cost_ci=(
                (self.cost.ci_low, self.cost.ci_high)
                if self.cost is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ReplicationSummary:
    """Headline statistics across seeds.

    Shares ``mean_latency`` / ``mean_cost`` / ``mean_backlog`` /
    ``budget_satisfied`` / ``mean_solve_seconds`` field names with
    :class:`repro.sim.results.SimulationSummary`; adds the seed count
    and bootstrap confidence intervals.
    """

    runs: int
    mean_latency: float
    mean_cost: float
    mean_backlog: float
    budget_satisfied: bool | None
    mean_solve_seconds: float
    latency_ci: tuple[float, float] | None = None
    cost_ci: tuple[float, float] | None = None
    failed_runs: int = 0

    def to_dict(self) -> dict:
        """JSON-ready view, uniform with ``SimulationSummary.to_dict``."""
        return {
            "runs": self.runs,
            "failed_runs": self.failed_runs,
            "mean_latency": self.mean_latency,
            "mean_cost": self.mean_cost,
            "mean_backlog": self.mean_backlog,
            "budget_satisfied": self.budget_satisfied,
            "mean_solve_seconds": self.mean_solve_seconds,
            "latency_ci": list(self.latency_ci) if self.latency_ci else None,
            "cost_ci": list(self.cost_ci) if self.cost_ci else None,
        }


def execute_replication(
    args: "tuple[ReplicationSpec, int] | tuple[ReplicationSpec, int, bool]",
) -> ReplicationOutcome:
    """Run one seed of a spec (module-level so it pickles for workers).

    Accepts ``(spec, seed)`` or ``(spec, seed, trace_phases)``; with
    ``trace_phases`` the worker runs under its own
    :class:`~repro.obs.Probe` and ships the aggregated phase state back
    in the outcome (tracers themselves never cross process boundaries).
    """
    spec, seed = args[0], args[1]
    trace_phases = bool(args[2]) if len(args) > 2 else False
    return _run_one(spec, seed, trace_phases)


#: Per-worker replication context installed once by :func:`_init_worker`,
#: so :func:`run_replications` ships the spec with each worker process
#: instead of pickling it into every seed's job tuple.
_WORKER_CONTEXT: "tuple[ReplicationSpec, bool] | None" = None


def _init_worker(spec: ReplicationSpec, trace_phases: bool) -> None:
    """Pool initializer: pin the spec in the worker process."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (spec, trace_phases)


def _execute_seed(seed: int) -> ReplicationOutcome:
    """Worker entry point: run one seed against the pinned spec."""
    assert _WORKER_CONTEXT is not None, "worker pool was not initialised"
    spec, trace_phases = _WORKER_CONTEXT
    return _run_one(spec, seed, trace_phases)


#: Per-process attempt counts for ``flaky_seeds`` injection.  Worker
#: processes each get their own copy, so "fails once then succeeds"
#: holds per process -- exactly the transient crash being simulated.
_FLAKY_ATTEMPTS: dict[int, int] = {}


def _run_one(
    spec: ReplicationSpec, seed: int, trace_phases: bool
) -> ReplicationOutcome:
    """Run one seed of a spec and condense its outcome."""
    from repro.api import make_controller

    if seed in spec.fail_seeds:
        raise SolverError(f"injected failure for seed {seed}")
    if seed in spec.flaky_seeds:
        _FLAKY_ATTEMPTS[seed] = _FLAKY_ATTEMPTS.get(seed, 0) + 1
        if _FLAKY_ATTEMPTS[seed] == 1:
            raise SolverError(f"injected transient failure for seed {seed}")

    scenario = repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(
            num_devices=spec.num_devices,
            workload=spec.workload,
            budget_fraction=spec.budget_fraction,
        ),
        **dict(spec.network_overrides),
    )
    probe = Probe() if trace_phases else None
    controller = make_controller(
        spec.solver,
        scenario,
        v=spec.v,
        z=spec.z,
        rng_label="replication",
        equilibrium_rng_label="replication-eq",
        warm_start_queue=spec.warm_start_queue,
        tracer=probe,
        engine_backend=spec.engine_backend,
    )
    result = repro.run_simulation(
        controller,
        scenario.fresh_compiled_states(spec.horizon),
        budget=scenario.budget,
        tracer=probe,
    )
    summary = result.summary()
    return ReplicationOutcome(
        seed=seed,
        mean_latency=result.time_average_latency(),
        mean_cost=result.time_average_cost(),
        mean_backlog=float(np.mean(result.backlog)),
        budget=scenario.budget,
        mean_solve_seconds=summary.mean_solve_seconds,
        phase_state=probe.phases.state_dict() if probe is not None else None,
    )


def _run_batch(
    spec: ReplicationSpec, seeds: "list[int] | tuple[int, ...]", trace_phases: bool
) -> "list[tuple[int, ReplicationOutcome | None, Exception | None]]":
    """Run a group of seeds in lockstep; one entry per seed, seed order.

    Each entry is ``(seed, outcome, None)`` on success or ``(seed, None,
    error)`` on failure.  Injection knobs fire per seed before the batch
    launches, so ``fail_seeds`` / ``flaky_seeds`` behave exactly as on
    the per-seed path.  Lane isolation is per seed inside the lockstep
    loop; a driver-level failure that escapes it lands on every
    unfinished seed (the caller retries those solo).
    """
    from repro.api import make_controller
    from repro.sim.batched import LockstepLane, run_simulations_lockstep

    outcomes: dict[int, ReplicationOutcome] = {}
    errors: dict[int, Exception] = {}
    lanes: list[LockstepLane] = []
    lane_info: list[tuple[int, float, "Probe | None"]] = []
    for seed in seeds:
        try:
            if seed in spec.fail_seeds:
                raise SolverError(f"injected failure for seed {seed}")
            if seed in spec.flaky_seeds:
                _FLAKY_ATTEMPTS[seed] = _FLAKY_ATTEMPTS.get(seed, 0) + 1
                if _FLAKY_ATTEMPTS[seed] == 1:
                    raise SolverError(
                        f"injected transient failure for seed {seed}"
                    )
            scenario = repro.make_paper_scenario(
                seed=seed,
                config=repro.ScenarioConfig(
                    num_devices=spec.num_devices,
                    workload=spec.workload,
                    budget_fraction=spec.budget_fraction,
                ),
                **dict(spec.network_overrides),
            )
            probe = Probe() if trace_phases else None
            controller = make_controller(
                spec.solver,
                scenario,
                v=spec.v,
                z=spec.z,
                rng_label="replication",
                equilibrium_rng_label="replication-eq",
                warm_start_queue=spec.warm_start_queue,
                tracer=probe,
                engine_backend=spec.engine_backend,
            )
            lanes.append(
                LockstepLane(
                    controller=controller,
                    states=scenario.fresh_compiled_states(
                        spec.horizon, tracer=probe
                    ),
                    budget=scenario.budget,
                    tracer=probe,
                )
            )
            lane_info.append((seed, scenario.budget, probe))
        except Exception as exc:
            errors[seed] = exc
    if lanes:
        try:
            lane_results = run_simulations_lockstep(lanes)
        except Exception as exc:
            for seed, _, _ in lane_info:
                errors.setdefault(seed, exc)
        else:
            for (seed, budget, probe), (result, error) in zip(
                lane_info, lane_results
            ):
                if error is not None or result is None:
                    errors[seed] = error or SolverError("lane produced no result")
                    continue
                summary = result.summary()
                outcomes[seed] = ReplicationOutcome(
                    seed=seed,
                    mean_latency=result.time_average_latency(),
                    mean_cost=result.time_average_cost(),
                    mean_backlog=float(np.mean(result.backlog)),
                    budget=budget,
                    mean_solve_seconds=summary.mean_solve_seconds,
                    phase_state=(
                        probe.phases.state_dict() if probe is not None else None
                    ),
                )
    return [(seed, outcomes.get(seed), errors.get(seed)) for seed in seeds]


def _execute_seed_batch(seeds: "tuple[int, ...]") -> "list[ReplicationOutcome]":
    """Worker entry point: run a seed group in lockstep, failing fast.

    Used on the plain (non-resilient) pooled path, where a failing seed
    should propagate exactly like the per-seed path's worker exception.
    """
    assert _WORKER_CONTEXT is not None, "worker pool was not initialised"
    spec, trace_phases = _WORKER_CONTEXT
    out: list[ReplicationOutcome] = []
    for _, outcome, error in _run_batch(spec, seeds, trace_phases):
        if error is not None:
            raise error
        assert outcome is not None
        out.append(outcome)
    return out


def _execute_seed_batch_salvage(
    seeds: "tuple[int, ...]",
) -> "list[tuple[int, ReplicationOutcome | None, str | None]]":
    """Worker entry point for the batched salvage path.

    Per-seed failures never raise -- they come back as error strings so
    one bad seed cannot poison its group's future.
    """
    assert _WORKER_CONTEXT is not None, "worker pool was not initialised"
    spec, trace_phases = _WORKER_CONTEXT
    return [
        (
            seed,
            outcome,
            None if error is None else f"{type(error).__name__}: {error}",
        )
        for seed, outcome, error in _run_batch(spec, seeds, trace_phases)
    ]


class _SeedTracker:
    """Retry bookkeeping shared by the sequential and pooled paths."""

    def __init__(
        self,
        max_retries: int,
        backoff_seconds: float,
        tracer: Tracer,
    ) -> None:
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.tracer = tracer
        self.attempts: dict[int, int] = {}
        self.failed: list[int] = []

    def note_failure(self, seed: int, error: Exception) -> bool:
        """Record a failed attempt; return ``True`` when *seed* should
        be retried (after the backoff sleep), ``False`` when it is
        permanently failed."""
        self.attempts[seed] = self.attempts.get(seed, 0) + 1
        attempt = self.attempts[seed]
        if attempt <= self.max_retries:
            logger.warning(
                "seed %d failed (attempt %d/%d): %s; retrying",
                seed,
                attempt,
                self.max_retries + 1,
                error,
            )
            if self.tracer.enabled:
                self.tracer.counter("resilience.retries", 1)
                self.tracer.event(
                    "replication.retry",
                    {"seed": seed, "attempt": attempt, "error": str(error)},
                )
            if self.backoff_seconds > 0.0:
                time.sleep(self.backoff_seconds * attempt)
            return True
        logger.error(
            "seed %d failed permanently after %d attempts: %s",
            seed,
            attempt,
            error,
        )
        if self.tracer.enabled:
            self.tracer.counter("resilience.seed_failures", 1)
            self.tracer.event(
                "replication.seed_failed",
                {"seed": seed, "attempts": attempt, "error": str(error)},
            )
        self.failed.append(seed)
        return False


def _run_pool_resilient(
    spec: ReplicationSpec,
    seeds: list[int],
    *,
    processes: int,
    trace_phases: bool,
    timeout_seconds: float | None,
    tracker: _SeedTracker,
) -> dict[int, ReplicationOutcome]:
    """The salvage-everything pooled path.

    Submits every pending seed, collects results in order, and survives
    the three ways a worker can die: an exception inside the run
    (retried per seed), a per-seed timeout, and a crashed worker
    process (``BrokenProcessPool``).  The latter two poison the whole
    pool, so the pool is torn down, rebuilt, and the not-yet-collected
    seeds are resubmitted -- the run finishes with a ``failed_seeds``
    list instead of a dead pool.  Terminates because every round either
    resolves at least the first pending seed or consumes one of its
    bounded retry attempts.
    """
    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker,
            initargs=(spec, trace_phases),
        )

    results: dict[int, ReplicationOutcome] = {}
    pending = list(seeds)
    pool = make_pool()
    try:
        while pending:
            futures = {seed: pool.submit(_execute_seed, seed) for seed in pending}
            next_pending: list[int] = []
            rebuild = False
            for position, seed in enumerate(pending):
                try:
                    results[seed] = futures[seed].result(timeout=timeout_seconds)
                except (FuturesTimeout, BrokenProcessPool) as exc:
                    # The pool itself is now unusable (a hung seed's
                    # worker keeps running; a crashed worker breaks the
                    # executor).  Fail this seed's attempt, salvage the
                    # rest into the next round on a fresh pool.
                    if tracker.note_failure(seed, exc):
                        next_pending.append(seed)
                    next_pending.extend(pending[position + 1 :])
                    rebuild = True
                    break
                except Exception as exc:  # worker raised inside the run
                    if tracker.note_failure(seed, exc):
                        next_pending.append(seed)
            if rebuild:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                if tracker.tracer.enabled:
                    tracker.tracer.event(
                        "replication.pool_rebuilt",
                        {"pending": len(next_pending)},
                    )
            pending = next_pending
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results


def _run_pool_resilient_batched(
    spec: ReplicationSpec,
    seeds: list[int],
    *,
    processes: int,
    trace_phases: bool,
    timeout_seconds: float | None,
    tracker: _SeedTracker,
    batch: int,
) -> dict[int, ReplicationOutcome]:
    """The salvage path for ``batch_seeds > 1``: groups as work units.

    Seed groups are submitted whole and run in lockstep inside the
    worker.  Per-seed failures inside a group come back as error entries
    (never exceptions) and are retried as *singleton* groups -- i.e.
    through the ordinary per-seed lockstep-of-one, which is exactly
    ``_run_one``'s arithmetic.  A group timeout or a crashed worker
    burns one attempt for every seed in the group and rebuilds the pool,
    mirroring :func:`_run_pool_resilient`.
    """

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker,
            initargs=(spec, trace_phases),
        )

    results: dict[int, ReplicationOutcome] = {}
    pending = [list(seeds[i : i + batch]) for i in range(0, len(seeds), batch)]
    pool = make_pool()
    try:
        while pending:
            futures = [
                pool.submit(_execute_seed_batch_salvage, tuple(group))
                for group in pending
            ]
            next_pending: list[list[int]] = []
            rebuild = False
            for position, (group, future) in enumerate(zip(pending, futures)):
                try:
                    entries = future.result(timeout=timeout_seconds)
                except (FuturesTimeout, BrokenProcessPool) as exc:
                    # The whole group is gone with the pool; every seed
                    # in it burns an attempt, the rest of the round is
                    # salvaged onto a fresh pool.
                    for seed in group:
                        if tracker.note_failure(seed, exc):
                            next_pending.append([seed])
                    next_pending.extend(pending[position + 1 :])
                    rebuild = True
                    break
                except Exception as exc:  # driver bug in the worker
                    for seed in group:
                        if tracker.note_failure(seed, exc):
                            next_pending.append([seed])
                else:
                    for seed, outcome, error in entries:
                        if error is None:
                            assert outcome is not None
                            results[seed] = outcome
                        elif tracker.note_failure(seed, SolverError(error)):
                            next_pending.append([seed])
            if rebuild:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                if tracker.tracer.enabled:
                    tracker.tracer.event(
                        "replication.pool_rebuilt",
                        {"pending": sum(len(g) for g in next_pending)},
                    )
            pending = next_pending
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results


def run_replications(
    spec: ReplicationSpec,
    seeds: tuple[int, ...] | list[int],
    *,
    processes: int | None = None,
    chunksize: int | None = None,
    tracer: "Tracer | None" = None,
    timeout_seconds: float | None = None,
    max_retries: int = 0,
    retry_backoff_seconds: float = 0.25,
) -> ReplicationReport:
    """Run *spec* under every seed and aggregate.

    Args:
        spec: The configuration to replicate.  Shipped to each worker
            process once, through the pool initializer, rather than
            pickled into every seed's job.
        seeds: Root seeds; each yields an independent topology and
            state stream.
        processes: Worker processes; ``None`` or 1 runs sequentially
            (no pickling, easier debugging).
        chunksize: Seeds handed to a worker per dispatch.  Defaults to
            an even split (``ceil(len(seeds) / processes)``, capped at
            8) so the pool round-trips batches instead of single seeds;
            ordering of the outcomes is unaffected.  Ignored on the
            resilient path (per-seed submission).
        tracer: Observability tracer.  Each run (worker) records into
            its own probe; the per-phase aggregations are merged into
            *tracer* when it is a :class:`repro.obs.Probe`, so the
            parent sees one profile across all seeds.  Retry and
            seed-failure events land here too.
        timeout_seconds: Per-seed wall-clock deadline for collecting a
            pooled result; a seed that blows it burns one attempt and
            the pool is rebuilt (a hung worker cannot be cancelled).
            ``None`` disables the watchdog.  With ``spec.batch_seeds >
            1`` the deadline applies to each *group* (its seeds run
            together), and blowing it burns an attempt for every seed in
            the group.
        max_retries: Extra attempts per seed after its first failure.
            With the default 0 and no injection knobs, a failing seed
            on the plain pooled path propagates as before.
        retry_backoff_seconds: Base sleep before attempt ``n``'s retry
            (linear backoff: ``base * n``).

    Returns:
        A :class:`ReplicationReport` with per-seed outcomes, bootstrap
        statistics of the headline metrics, and ``failed_seeds`` for
        any seed that never produced an outcome.  All seeds failing
        yields an empty report (``summary()`` then raises), not an
        exception here.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if max_retries < 0:
        raise ConfigurationError("max_retries must be >= 0")
    if timeout_seconds is not None and timeout_seconds <= 0.0:
        raise ConfigurationError("timeout_seconds must be positive")
    trace_phases = tracer is not None and tracer.enabled
    resilient = (
        timeout_seconds is not None
        or max_retries > 0
        or bool(spec.fail_seeds)
        or bool(spec.flaky_seeds)
    )
    tracker = _SeedTracker(max_retries, retry_backoff_seconds, as_tracer(tracer))
    # The fixed-frequency controller has no BDMA loop to fuse, so its
    # specs always take the historical per-seed paths.
    batch = spec.batch_seeds if spec.solver != "fixed" else 1
    if processes is None or processes <= 1:
        if batch > 1:
            by_seed: dict[int, ReplicationOutcome] = {}
            for start in range(0, len(seeds), batch):
                group = seeds[start : start + batch]
                for seed, outcome, error in _run_batch(
                    spec, group, trace_phases
                ):
                    if error is None:
                        assert outcome is not None
                        by_seed[seed] = outcome
                        continue
                    if not resilient:
                        raise error
                    # Retry solo: a lockstep-of-one is _run_one's exact
                    # arithmetic, so the retried outcome is the same one
                    # an unbatched run would have produced.
                    retry = tracker.note_failure(seed, error)
                    while retry:
                        try:
                            by_seed[seed] = _run_one(spec, seed, trace_phases)
                            break
                        except Exception as exc:
                            retry = tracker.note_failure(seed, exc)
            outcomes = [by_seed[s] for s in seeds if s in by_seed]
        elif not resilient:
            outcomes = [_run_one(spec, seed, trace_phases) for seed in seeds]
        else:
            by_seed = {}
            for seed in seeds:
                while True:
                    try:
                        by_seed[seed] = _run_one(spec, seed, trace_phases)
                        break
                    except Exception as exc:
                        if not tracker.note_failure(seed, exc):
                            break
            outcomes = [by_seed[s] for s in seeds if s in by_seed]
    elif not resilient:
        with ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker,
            initargs=(spec, trace_phases),
        ) as pool:
            if batch > 1:
                groups = [
                    tuple(seeds[i : i + batch])
                    for i in range(0, len(seeds), batch)
                ]
                outcomes = [
                    outcome
                    for chunk in pool.map(_execute_seed_batch, groups)
                    for outcome in chunk
                ]
            else:
                if chunksize is None:
                    chunksize = min(8, -(-len(seeds) // processes))
                outcomes = list(
                    pool.map(_execute_seed, seeds, chunksize=max(1, chunksize))
                )
    elif batch > 1:
        results = _run_pool_resilient_batched(
            spec,
            seeds,
            processes=processes,
            trace_phases=trace_phases,
            timeout_seconds=timeout_seconds,
            tracker=tracker,
            batch=batch,
        )
        outcomes = [results[s] for s in seeds if s in results]
    else:
        results = _run_pool_resilient(
            spec,
            seeds,
            processes=processes,
            trace_phases=trace_phases,
            timeout_seconds=timeout_seconds,
            tracker=tracker,
        )
        outcomes = [results[s] for s in seeds if s in results]
    if isinstance(tracer, Probe):
        for outcome in outcomes:
            tracer.merge_phase_state(outcome.phase_state, order=(outcome.seed,))

    report = ReplicationReport(
        outcomes=outcomes,
        budget=outcomes[0].budget if outcomes else 0.0,
        failed_seeds=sorted(tracker.failed),
    )
    if outcomes:
        report.latency = summarize_runs(
            np.array([o.mean_latency for o in outcomes])
        )
        report.cost = summarize_runs(np.array([o.mean_cost for o in outcomes]))
    return report
