"""Repeated-seed replication of simulation runs.

Single simulation runs are noisy; claims in the paper are about
averages.  :func:`run_replications` executes the same experimental
configuration under several root seeds -- optionally across processes --
and aggregates the headline metrics with bootstrap confidence
intervals.

The unit of work is a :class:`ReplicationSpec`: a plain, picklable
description (scenario knobs + controller knobs) from which each worker
rebuilds everything.  This is what makes multiprocessing safe -- no
controller or network objects ever cross process boundaries.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.analysis.aggregate import RunStatistics, summarize_runs
from repro.exceptions import ConfigurationError
from repro.obs.probe import Probe, Tracer


@dataclass(frozen=True)
class ReplicationSpec:
    """A picklable description of one simulation configuration.

    Attributes:
        num_devices: Devices ``I``.
        horizon: Slots per run.
        v: DPP parameter ``V``.
        z: BDMA alternation rounds.
        solver: A controller name understood by
            :func:`repro.api.make_controller` (``"bdma"``/``"dpp"``,
            ``"mcba"``, ``"ropt"``, ``"greedy"``, or ``"fixed"``).
        workload: ``"uniform"`` or ``"diurnal"``.
        budget_fraction: Budget position in the feasible range.
        warm_start_queue: Start the queue at its estimated equilibrium.
        network_overrides: Extra :class:`~repro.network.builder.NetworkBuilder`
            fields (must be picklable).
    """

    num_devices: int = 30
    horizon: int = 96
    v: float = 100.0
    z: int = 3
    solver: str = "bdma"
    workload: str = "uniform"
    budget_fraction: float = 0.5
    warm_start_queue: bool = False
    network_overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.solver not in ("bdma", "dpp", "mcba", "ropt", "greedy", "fixed"):
            raise ConfigurationError(f"unknown solver {self.solver!r}")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")


@dataclass(frozen=True)
class ReplicationOutcome:
    """Headline metrics of one seed's run.

    Attributes:
        seed: Root seed of the run.
        mean_latency: Time-average latency.
        mean_cost: Time-average energy cost.
        mean_backlog: Time-average virtual-queue backlog.
        budget: The scenario's budget.
        mean_solve_seconds: Average per-slot decision time.
        phase_state: The worker tracer's aggregated phase state
            (:meth:`repro.obs.PhaseAggregator.state_dict`) when tracing
            was requested; the parent merges these.
    """

    seed: int
    mean_latency: float
    mean_cost: float
    mean_backlog: float
    budget: float
    mean_solve_seconds: float = float("nan")
    phase_state: dict | None = None


@dataclass
class ReplicationReport:
    """Aggregated statistics across seeds.

    Attributes:
        outcomes: Per-seed results, in seed order.
        latency: Bootstrap statistics of the time-average latency.
        cost: Bootstrap statistics of the time-average cost.
        budget: The (seed-0) budget for reference.
    """

    outcomes: list[ReplicationOutcome] = field(default_factory=list)
    latency: RunStatistics | None = None
    cost: RunStatistics | None = None
    budget: float = 0.0

    def budget_satisfaction_rate(self) -> float:
        """Fraction of seeds whose realised cost met their budget."""
        if not self.outcomes:
            return 0.0
        hits = sum(
            1 for o in self.outcomes if o.mean_cost <= o.budget * (1 + 1e-9)
        )
        return hits / len(self.outcomes)

    def summary(self) -> "ReplicationSummary":
        """Condense the report into a :class:`ReplicationSummary`.

        Field names deliberately mirror
        :class:`repro.sim.results.SimulationSummary` so both result
        flavours serialise and compare uniformly.
        """
        if not self.outcomes:
            raise ConfigurationError("cannot summarise an empty report")
        return ReplicationSummary(
            runs=len(self.outcomes),
            mean_latency=float(np.mean([o.mean_latency for o in self.outcomes])),
            mean_cost=float(np.mean([o.mean_cost for o in self.outcomes])),
            mean_backlog=float(np.mean([o.mean_backlog for o in self.outcomes])),
            budget_satisfied=self.budget_satisfaction_rate() >= 1.0,
            mean_solve_seconds=float(
                np.mean([o.mean_solve_seconds for o in self.outcomes])
            ),
            latency_ci=(
                (self.latency.ci_low, self.latency.ci_high)
                if self.latency is not None
                else None
            ),
            cost_ci=(
                (self.cost.ci_low, self.cost.ci_high)
                if self.cost is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ReplicationSummary:
    """Headline statistics across seeds.

    Shares ``mean_latency`` / ``mean_cost`` / ``mean_backlog`` /
    ``budget_satisfied`` / ``mean_solve_seconds`` field names with
    :class:`repro.sim.results.SimulationSummary`; adds the seed count
    and bootstrap confidence intervals.
    """

    runs: int
    mean_latency: float
    mean_cost: float
    mean_backlog: float
    budget_satisfied: bool | None
    mean_solve_seconds: float
    latency_ci: tuple[float, float] | None = None
    cost_ci: tuple[float, float] | None = None

    def to_dict(self) -> dict:
        """JSON-ready view, uniform with ``SimulationSummary.to_dict``."""
        return {
            "runs": self.runs,
            "mean_latency": self.mean_latency,
            "mean_cost": self.mean_cost,
            "mean_backlog": self.mean_backlog,
            "budget_satisfied": self.budget_satisfied,
            "mean_solve_seconds": self.mean_solve_seconds,
            "latency_ci": list(self.latency_ci) if self.latency_ci else None,
            "cost_ci": list(self.cost_ci) if self.cost_ci else None,
        }


def execute_replication(
    args: "tuple[ReplicationSpec, int] | tuple[ReplicationSpec, int, bool]",
) -> ReplicationOutcome:
    """Run one seed of a spec (module-level so it pickles for workers).

    Accepts ``(spec, seed)`` or ``(spec, seed, trace_phases)``; with
    ``trace_phases`` the worker runs under its own
    :class:`~repro.obs.Probe` and ships the aggregated phase state back
    in the outcome (tracers themselves never cross process boundaries).
    """
    spec, seed = args[0], args[1]
    trace_phases = bool(args[2]) if len(args) > 2 else False
    return _run_one(spec, seed, trace_phases)


#: Per-worker replication context installed once by :func:`_init_worker`,
#: so :func:`run_replications` ships the spec with each worker process
#: instead of pickling it into every seed's job tuple.
_WORKER_CONTEXT: "tuple[ReplicationSpec, bool] | None" = None


def _init_worker(spec: ReplicationSpec, trace_phases: bool) -> None:
    """Pool initializer: pin the spec in the worker process."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (spec, trace_phases)


def _execute_seed(seed: int) -> ReplicationOutcome:
    """Worker entry point: run one seed against the pinned spec."""
    assert _WORKER_CONTEXT is not None, "worker pool was not initialised"
    spec, trace_phases = _WORKER_CONTEXT
    return _run_one(spec, seed, trace_phases)


def _run_one(
    spec: ReplicationSpec, seed: int, trace_phases: bool
) -> ReplicationOutcome:
    """Run one seed of a spec and condense its outcome."""
    from repro.api import make_controller

    scenario = repro.make_paper_scenario(
        seed=seed,
        config=repro.ScenarioConfig(
            num_devices=spec.num_devices,
            workload=spec.workload,
            budget_fraction=spec.budget_fraction,
        ),
        **dict(spec.network_overrides),
    )
    probe = Probe() if trace_phases else None
    controller = make_controller(
        spec.solver,
        scenario,
        v=spec.v,
        z=spec.z,
        rng_label="replication",
        equilibrium_rng_label="replication-eq",
        warm_start_queue=spec.warm_start_queue,
        tracer=probe,
    )
    result = repro.run_simulation(
        controller,
        scenario.fresh_compiled_states(spec.horizon),
        budget=scenario.budget,
        tracer=probe,
    )
    summary = result.summary()
    return ReplicationOutcome(
        seed=seed,
        mean_latency=result.time_average_latency(),
        mean_cost=result.time_average_cost(),
        mean_backlog=float(np.mean(result.backlog)),
        budget=scenario.budget,
        mean_solve_seconds=summary.mean_solve_seconds,
        phase_state=probe.phases.state_dict() if probe is not None else None,
    )


def run_replications(
    spec: ReplicationSpec,
    seeds: tuple[int, ...] | list[int],
    *,
    processes: int | None = None,
    chunksize: int | None = None,
    tracer: "Tracer | None" = None,
) -> ReplicationReport:
    """Run *spec* under every seed and aggregate.

    Args:
        spec: The configuration to replicate.  Shipped to each worker
            process once, through the pool initializer, rather than
            pickled into every seed's job.
        seeds: Root seeds; each yields an independent topology and
            state stream.
        processes: Worker processes; ``None`` or 1 runs sequentially
            (no pickling, easier debugging).
        chunksize: Seeds handed to a worker per dispatch.  Defaults to
            an even split (``ceil(len(seeds) / processes)``, capped at
            8) so the pool round-trips batches instead of single seeds;
            ordering of the outcomes is unaffected.
        tracer: Observability tracer.  Each run (worker) records into
            its own probe; the per-phase aggregations are merged into
            *tracer* when it is a :class:`repro.obs.Probe`, so the
            parent sees one profile across all seeds.

    Returns:
        A :class:`ReplicationReport` with per-seed outcomes and
        bootstrap statistics of the headline metrics.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    trace_phases = tracer is not None and tracer.enabled
    if processes is None or processes <= 1:
        outcomes = [_run_one(spec, seed, trace_phases) for seed in seeds]
    else:
        if chunksize is None:
            chunksize = min(8, -(-len(seeds) // processes))
        with ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker,
            initargs=(spec, trace_phases),
        ) as pool:
            outcomes = list(
                pool.map(_execute_seed, seeds, chunksize=max(1, chunksize))
            )
    if isinstance(tracer, Probe):
        for outcome in outcomes:
            tracer.merge_phase_state(outcome.phase_state)

    report = ReplicationReport(outcomes=outcomes, budget=outcomes[0].budget)
    report.latency = summarize_runs(
        np.array([o.mean_latency for o in outcomes])
    )
    report.cost = summarize_runs(np.array([o.mean_cost for o in outcomes]))
    return report
