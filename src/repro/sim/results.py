"""Simulation result containers and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.controller import SlotRecord
from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.monitors import HealthReport


@dataclass(frozen=True)
class SimulationSummary:
    """Headline time-average statistics of one run.

    Attributes:
        horizon: Number of simulated slots.
        mean_latency: Time-average overall latency.
        mean_cost: Time-average energy cost.
        mean_backlog: Time-average virtual-queue backlog.
        final_backlog: Backlog after the last slot.
        budget_satisfied: Whether ``mean_cost <= budget`` (when a budget
            was recorded).
        mean_solve_seconds: Average per-slot decision time.
    """

    horizon: int
    mean_latency: float
    mean_cost: float
    mean_backlog: float
    final_backlog: float
    budget_satisfied: bool | None
    mean_solve_seconds: float

    def to_dict(self) -> dict:
        """JSON-ready view; field names are shared with
        :meth:`repro.sim.replication.ReplicationSummary.to_dict`."""
        return {
            "horizon": self.horizon,
            "mean_latency": self.mean_latency,
            "mean_cost": self.mean_cost,
            "mean_backlog": self.mean_backlog,
            "final_backlog": self.final_backlog,
            "budget_satisfied": self.budget_satisfied,
            "mean_solve_seconds": self.mean_solve_seconds,
        }


@dataclass
class SimulationResult:
    """Per-slot trajectories of one simulation run.

    All arrays have length equal to the simulated horizon.  ``health``
    is filled by :func:`repro.api.run` when monitors were attached
    (``None`` otherwise).
    """

    latency: FloatArray
    cost: FloatArray
    theta: FloatArray
    backlog: FloatArray
    solve_seconds: FloatArray
    price: FloatArray
    budget: float | None = None
    records: list[SlotRecord] = field(default_factory=list)
    health: "HealthReport | None" = None

    @property
    def horizon(self) -> int:
        """Number of simulated slots."""
        return int(self.latency.size)

    def time_average_latency(self) -> float:
        """Mean overall latency across the run."""
        return float(np.mean(self.latency))

    def time_average_cost(self) -> float:
        """Mean energy cost across the run."""
        return float(np.mean(self.cost))

    def summary(self) -> SimulationSummary:
        """Condense the run into a :class:`SimulationSummary`."""
        mean_cost = self.time_average_cost()
        satisfied = None if self.budget is None else bool(mean_cost <= self.budget + 1e-9)
        return SimulationSummary(
            horizon=self.horizon,
            mean_latency=self.time_average_latency(),
            mean_cost=mean_cost,
            mean_backlog=float(np.mean(self.backlog)),
            final_backlog=float(self.backlog[-1]) if self.horizon else 0.0,
            budget_satisfied=satisfied,
            mean_solve_seconds=float(np.mean(self.solve_seconds)),
        )
