"""State generation: composing substrates into the per-slot ``beta_t``.

A :class:`StateGenerator` owns a workload generator, a channel model, a
price model, and a mobility model, and emits :class:`SlotState` objects.
A :class:`Scenario` bundles the static topology with a state generator
and a seed bank -- the unit the examples and benchmarks operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.state import SlotState
from repro.energy.pricing import PriceModel
from repro.exceptions import ConfigurationError
from repro.network.coverage import coverage_matrix
from repro.network.topology import MECNetwork
from repro.radio.channel import ChannelModel
from repro.radio.fronthaul import FronthaulModel
from repro.radio.mobility import MobilityModel, StaticMobility
from repro.sim.faults import OutageModel
from repro.sim.seeding import SeedBank
from repro.types import FloatArray, Rng
from repro.workload.generators import TaskGenerator


class StateGenerator:
    """Produces the system state ``beta_t`` slot by slot.

    Args:
        network: Static topology (positions, radii).
        tasks: Per-slot task draws (``f_t, d_t``).
        channel: Spectral-efficiency model (``h_t``).
        prices: Electricity price model (``p_t``).
        mobility: Device movement; static by default (the paper's
            setting keeps coverage fixed while channels fluctuate).
        price_scale: Multiplier converting the price model's units into
            cost-per-watt-per-slot.  With $/MWh prices and hourly slots,
            ``1e-6`` yields energy costs in dollars per slot.
        fronthaul: Optional time-varying fronthaul efficiency model; the
            static topology values are used when omitted (the paper's
            setting).
        faults: Optional server-outage model; every server is always up
            when omitted (the paper's setting).
    """

    def __init__(
        self,
        network: MECNetwork,
        tasks: TaskGenerator,
        channel: ChannelModel,
        prices: PriceModel,
        *,
        mobility: MobilityModel | None = None,
        price_scale: float = 1.0,
        fronthaul: "FronthaulModel | None" = None,
        faults: "OutageModel | None" = None,
    ) -> None:
        if tasks.num_devices != network.num_devices:
            raise ConfigurationError(
                f"task generator covers {tasks.num_devices} devices but the "
                f"network has {network.num_devices}"
            )
        self.network = network
        self.tasks = tasks
        self.channel = channel
        self.prices = prices
        self.mobility = mobility if mobility is not None else StaticMobility()
        if price_scale <= 0.0:
            raise ConfigurationError("price_scale must be positive")
        self.price_scale = float(price_scale)
        self.fronthaul = fronthaul
        self.faults = faults
        self._positions = network.device_positions()
        self._bs_positions = network.base_station_positions()
        self._radii = np.array([b.coverage_radius for b in network.base_stations])

    @property
    def positions(self) -> FloatArray:
        """Current device positions (mutated by mobility)."""
        return self._positions.copy()

    def state(self, t: int, rng: Rng) -> SlotState:
        """Draw ``beta_t`` for slot *t*, advancing mobility first."""
        self._positions = self.mobility.step(self._positions, rng)
        coverage = coverage_matrix(self._positions, self._bs_positions, self._radii)
        batch = self.tasks.generate(t, rng)
        h = self.channel.spectral_efficiency(
            t, self._positions, self._bs_positions, coverage, rng
        )
        price = self.prices.price(t, rng) * self.price_scale
        fronthaul_se = None
        if self.fronthaul is not None:
            fronthaul_se = self.fronthaul.spectral_efficiency(
                t, self.network.fronthaul_se, rng
            )
        available = None
        if self.faults is not None:
            available = self.faults.availability(t, self.network, rng)
        return SlotState(
            t=t,
            cycles=batch.cycles,
            bits=batch.bits,
            spectral_efficiency=h,
            price=price,
            fronthaul_se=fronthaul_se,
            available_servers=available,
        )

    def states(self, horizon: int, rng: Rng, *, start: int = 0) -> Iterator[SlotState]:
        """Yield ``beta_t`` for ``t = start, ..., start + horizon - 1``."""
        for t in range(start, start + horizon):
            yield self.state(t, rng)

    def reset(self) -> None:
        """Restore mobility and fault state between independent runs."""
        self._positions = self.network.device_positions()
        if self.faults is not None and hasattr(self.faults, "reset"):
            self.faults.reset()


@dataclass
class Scenario:
    """A complete, reproducible experimental setup.

    Attributes:
        network: Static topology.
        generator: Per-slot state generator.
        seeds: Root seed bank; components draw named child streams.
        budget: Default time-average energy-cost budget ``Cbar``.
    """

    network: MECNetwork
    generator: StateGenerator
    seeds: SeedBank
    budget: float

    def state_rng(self) -> Rng:
        """Fresh generator over the scenario's state stream."""
        return self.seeds.rng("states")

    def controller_rng(self, name: str = "controller") -> Rng:
        """Fresh generator for a controller's internal randomness."""
        return self.seeds.rng(name)

    def fresh_states(self, horizon: int) -> Iterator[SlotState]:
        """A reproducible state sequence of length *horizon*.

        Each call restarts the stream from the scenario seed (and resets
        mobility), so different controllers can be fed *identical*
        realisations -- a paired comparison.
        """
        self.generator.reset()
        return self.generator.states(horizon, self.state_rng())
