"""State generation: composing substrates into the per-slot ``beta_t``.

A :class:`StateGenerator` owns a workload generator, a channel model, a
price model, and a mobility model, and emits :class:`SlotState` objects.
A :class:`Scenario` bundles the static topology with a state generator
and a seed bank -- the unit the examples and benchmarks operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.state import SlotState
from repro.energy.pricing import (
    ConstantPriceModel,
    PeriodicPriceModel,
    PriceModel,
    TracePriceModel,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.network.coverage import coverage_matrix
from repro.network.topology import MECNetwork
from repro.radio.channel import ChannelModel, UniformChannelModel
from repro.radio.fronthaul import FronthaulModel, StaticFronthaul
from repro.radio.mobility import MobilityModel, StaticMobility
from repro.sim.faults import FaultPlan, NoOutages, OutageModel
from repro.sim.seeding import SeedBank
from repro.types import FloatArray, Rng
from repro.workload.generators import TaskGenerator, UniformTaskGenerator


class StateGenerator:
    """Produces the system state ``beta_t`` slot by slot.

    Args:
        network: Static topology (positions, radii).
        tasks: Per-slot task draws (``f_t, d_t``).
        channel: Spectral-efficiency model (``h_t``).
        prices: Electricity price model (``p_t``).
        mobility: Device movement; static by default (the paper's
            setting keeps coverage fixed while channels fluctuate).
        price_scale: Multiplier converting the price model's units into
            cost-per-watt-per-slot.  With $/MWh prices and hourly slots,
            ``1e-6`` yields energy costs in dollars per slot.
        fronthaul: Optional time-varying fronthaul efficiency model; the
            static topology values are used when omitted (the paper's
            setting).
        faults: Optional server-outage model; every server is always up
            when omitted (the paper's setting).
    """

    def __init__(
        self,
        network: MECNetwork,
        tasks: TaskGenerator,
        channel: ChannelModel,
        prices: PriceModel,
        *,
        mobility: MobilityModel | None = None,
        price_scale: float = 1.0,
        fronthaul: "FronthaulModel | None" = None,
        faults: "OutageModel | None" = None,
    ) -> None:
        if tasks.num_devices != network.num_devices:
            raise ConfigurationError(
                f"task generator covers {tasks.num_devices} devices but the "
                f"network has {network.num_devices}"
            )
        self.network = network
        self.tasks = tasks
        self.channel = channel
        self.prices = prices
        self.mobility = mobility if mobility is not None else StaticMobility()
        if price_scale <= 0.0:
            raise ConfigurationError("price_scale must be positive")
        self.price_scale = float(price_scale)
        self.fronthaul = fronthaul
        self.faults = faults
        self._positions = network.device_positions()
        self._bs_positions = network.base_station_positions()
        self._radii = np.array([b.coverage_radius for b in network.base_stations])

    @property
    def positions(self) -> FloatArray:
        """Current device positions (mutated by mobility)."""
        return self._positions.copy()

    def state(self, t: int, rng: Rng) -> SlotState:
        """Draw ``beta_t`` for slot *t*, advancing mobility first."""
        self._positions = self.mobility.step(self._positions, rng)
        coverage = coverage_matrix(self._positions, self._bs_positions, self._radii)
        batch = self.tasks.generate(t, rng)
        h = self.channel.spectral_efficiency(
            t, self._positions, self._bs_positions, coverage, rng
        )
        price = self.prices.price(t, rng) * self.price_scale
        fronthaul_se = None
        if self.fronthaul is not None:
            fronthaul_se = self.fronthaul.spectral_efficiency(
                t, self.network.fronthaul_se, rng
            )
        available = None
        if self.faults is not None:
            available = self.faults.availability(t, self.network, rng)
        return SlotState(
            t=t,
            cycles=batch.cycles,
            bits=batch.bits,
            spectral_efficiency=h,
            price=price,
            fronthaul_se=fronthaul_se,
            available_servers=available,
        )

    def states(self, horizon: int, rng: Rng, *, start: int = 0) -> Iterator[SlotState]:
        """Yield ``beta_t`` for ``t = start, ..., start + horizon - 1``."""
        for t in range(start, start + horizon):
            yield self.state(t, rng)

    def _price_consumes_rng(self) -> bool:
        """Whether the price model draws randomness per slot."""
        prices = self.prices
        if type(prices) is ConstantPriceModel or type(prices) is TracePriceModel:
            return False
        if type(prices) is PeriodicPriceModel:
            return prices.noise_std > 0.0
        return True  # unknown model: assume it draws

    def compile_states(
        self, horizon: int, rng: Rng, *, chunk: int = 32, start: int = 0
    ) -> Iterator[SlotState]:
        """Yield the exact same states as :meth:`states`, compiled.

        Bit-identical to :meth:`states` for every model composition: the
        per-slot RNG consumption order is preserved, only the way the
        draws are issued changes.  Three tiers, chosen by inspecting the
        composed models:

        * **Chunk-blocked** -- static mobility, uniform tasks, uniform
          channel, and no other per-slot randomness (constant/trace
          prices or zero price noise, static fronthaul, no fault
          model).  All of a chunk's uniform draws come from one
          ``rng.random((chunk, S))`` call; a ``(chunk, S)`` block
          consumes the bit stream exactly like ``chunk`` sequential
          per-slot draws, and ``lo + u * (hi - lo)`` is bitwise
          ``Generator.uniform``.
        * **Slot-fused** -- as above but some model (price noise, a
          fronthaul or outage model) draws between slots.  Each slot
          issues one ``rng.random(S)`` for its uniform draws and calls
          the interleaving models in :meth:`states`'s order; scaling
          and coverage-masking still run once per chunk.
        * **Fallback** -- any other composition (mobility, non-uniform
          workload/channel models): delegate to the per-slot path,
          which is trivially identical.

        On the compiled tiers the static-mobility short-circuit
        computes coverage once per call instead of per slot, and states
        are built through :meth:`SlotState.trusted` after one
        whole-chunk validation pass.

        Args:
            horizon: Number of slots to yield.
            rng: The state stream (consumed identically to
                :meth:`states`).
            chunk: Slots drawn/validated per block; latency/memory
                knob only -- results do not depend on it.
            start: First slot index.
        """
        if chunk < 1:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        if horizon <= 0:
            return
        fused = (
            type(self.mobility) is StaticMobility
            and type(self.tasks) is UniformTaskGenerator
            and type(self.channel) is UniformChannelModel
        )
        if not fused:
            yield from self.states(horizon, rng, start=start)
            return
        interleaved = (
            self._price_consumes_rng()
            or not (self.fronthaul is None or type(self.fronthaul) is StaticFronthaul)
            or not (self.faults is None or type(self.faults) is NoOutages)
        )

        # Static mobility: one (rng-free) step, one coverage matrix.
        self._positions = self.mobility.step(self._positions, rng)
        coverage = coverage_matrix(self._positions, self._bs_positions, self._radii)
        uncovered = ~coverage
        num_devices = self.tasks.num_devices
        num_bs = coverage.shape[1]
        c_lo, c_hi = self.tasks.cycles_range
        b_lo, b_hi = self.tasks.bits_range
        se_lo, se_hi = self.channel.se_min, self.channel.se_max
        # One slot's uniform doubles: cycles, bits, then the channel
        # matrix -- the order states() consumes them in.
        span = 2 * num_devices + num_devices * num_bs

        for begin in range(start, start + horizon, chunk):
            m = min(chunk, start + horizon - begin)
            prices: list[float] = []
            fronthauls: list[FloatArray | None] = []
            availables: list["np.ndarray | None"] = []
            if interleaved:
                block = np.empty((m, span))
                for j, t in enumerate(range(begin, begin + m)):
                    rng.random(out=block[j])
                    prices.append(self.prices.price(t, rng) * self.price_scale)
                    fronthauls.append(
                        self.fronthaul.spectral_efficiency(
                            t, self.network.fronthaul_se, rng
                        )
                        if self.fronthaul is not None
                        else None
                    )
                    availables.append(
                        self.faults.availability(t, self.network, rng)
                        if self.faults is not None
                        else None
                    )
            else:
                block = rng.random((m, span))
                for t in range(begin, begin + m):
                    prices.append(self.prices.price(t, rng) * self.price_scale)
                fronthauls = [None] * m
                availables = [None] * m

            cycles = c_lo + block[:, :num_devices] * (c_hi - c_lo)
            bits = b_lo + block[:, num_devices : 2 * num_devices] * (b_hi - b_lo)
            h = se_lo + block[:, 2 * num_devices :].reshape(
                m, num_devices, num_bs
            ) * (se_hi - se_lo)
            h[:, uncovered] = 0.0

            # The chunk-level stand-in for the per-slot constructor
            # checks.  Positive uniform ranges make the demand/price
            # checks unfailable here, but the invariants are cheap to
            # assert on the stacked arrays and guard future models.
            if cycles.min(initial=0.0) < 0.0 or bits.min(initial=0.0) < 0.0:
                raise ValidationError("task sizes must be non-negative")
            if h.min(initial=0.0) < 0.0:
                raise ValidationError("spectral efficiencies must be non-negative")
            if min(prices, default=0.0) < 0.0:
                raise ValidationError("price must be non-negative")
            for fr in fronthauls:
                if fr is not None and (
                    fr.ndim != 1 or fr.size != num_bs or fr.min(initial=1.0) <= 0.0
                ):
                    raise ValidationError("fronthaul_se entries must be positive")
            for avail in availables:
                if avail is not None and not avail.any():
                    raise ValidationError(
                        "available_servers cannot mark every server as down"
                    )

            for j in range(m):
                yield SlotState.trusted(
                    t=begin + j,
                    cycles=cycles[j],
                    bits=bits[j],
                    spectral_efficiency=h[j],
                    price=prices[j],
                    fronthaul_se=fronthauls[j],
                    available_servers=availables[j],
                )

    def reset(self) -> None:
        """Restore mobility and per-model state between independent runs."""
        self._positions = self.network.device_positions()
        for name in self._STATEFUL_MODELS:
            model = getattr(self, name)
            if model is not None and hasattr(model, "reset"):
                model.reset()

    # Component models that may carry cross-slot state.  Positions are
    # always captured; a model participates iff it exposes state_dict().
    _STATEFUL_MODELS = ("tasks", "channel", "prices", "mobility", "fronthaul", "faults")

    def state_dict(self) -> dict:
        """Serializable generator state (for checkpoint/resume).

        Captures device positions plus the state of every component
        model that exposes ``state_dict()``.  Models with hidden state
        and no ``state_dict()`` make a resumed run diverge; the
        checkpoint layer warns about them via :meth:`unresumable_models`.
        """
        out: dict = {"positions": self._positions.tolist()}
        models: dict = {}
        for name in self._STATEFUL_MODELS:
            model = getattr(self, name)
            if model is not None and hasattr(model, "state_dict"):
                models[name] = model.state_dict()
        out["models"] = models
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore generator state captured by :meth:`state_dict`."""
        self._positions = np.asarray(state["positions"], dtype=float)
        models = state.get("models", {})
        for name in self._STATEFUL_MODELS:
            model = getattr(self, name)
            if model is not None and hasattr(model, "load_state_dict"):
                model.load_state_dict(models.get(name, {}))

    def unresumable_models(self) -> list[str]:
        """Names of stateful-looking models that cannot be checkpointed.

        A model is suspect when it has a ``reset`` or ``step`` method
        (suggesting cross-slot state) but no ``state_dict``.
        """
        suspects = []
        for name in self._STATEFUL_MODELS:
            model = getattr(self, name)
            if model is None or hasattr(model, "state_dict"):
                continue
            if hasattr(model, "reset"):
                suspects.append(name)
        return suspects


@dataclass
class Scenario:
    """A complete, reproducible experimental setup.

    Attributes:
        network: Static topology.
        generator: Per-slot state generator.
        seeds: Root seed bank; components draw named child streams.
        budget: Default time-average energy-cost budget ``Cbar``.
        fault_plan: Optional composable fault-injection plan applied to
            every drawn state from its own seeded stream
            (:meth:`fault_rng`), so the base state stream -- and the
            compiled pipeline -- stays bit-identical with or without it.
    """

    network: MECNetwork
    generator: StateGenerator
    seeds: SeedBank
    budget: float
    fault_plan: "FaultPlan | None" = None

    def state_rng(self) -> Rng:
        """Fresh generator over the scenario's state stream."""
        return self.seeds.rng("states")

    def controller_rng(self, name: str = "controller") -> Rng:
        """Fresh generator for a controller's internal randomness."""
        return self.seeds.rng(name)

    def fault_rng(self) -> Rng:
        """Fresh generator over the fault plan's dedicated stream."""
        return self.seeds.rng("fault-plan")

    def _with_faults(self, states: Iterator[SlotState], tracer=None):
        if self.fault_plan is None or not self.fault_plan:
            return states
        self.fault_plan.reset()
        return self.fault_plan.stream(
            states, self.network, self.fault_rng(), tracer
        )

    def fresh_states(self, horizon: int, *, tracer=None) -> Iterator[SlotState]:
        """A reproducible state sequence of length *horizon*.

        Each call restarts the stream from the scenario seed (and resets
        mobility), so different controllers can be fed *identical*
        realisations -- a paired comparison.  When the scenario carries a
        :attr:`fault_plan` it is reset and applied on top; fault events
        go to *tracer* when one is given.
        """
        self.generator.reset()
        return self._with_faults(
            self.generator.states(horizon, self.state_rng()), tracer
        )

    def fresh_compiled_states(
        self, horizon: int, *, chunk: int = 32, tracer=None
    ) -> Iterator[SlotState]:
        """:meth:`fresh_states` through the compiled pipeline.

        Bit-identical states (same seed, same stream, same values); see
        :meth:`StateGenerator.compile_states` for the tiers and the
        ``chunk`` knob.  The :attr:`fault_plan`, when present, wraps the
        compiled stream without touching its RNG consumption.
        """
        self.generator.reset()
        return self._with_faults(
            self.generator.compile_states(horizon, self.state_rng(), chunk=chunk),
            tracer,
        )
