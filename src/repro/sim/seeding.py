"""Reproducible, independent random streams.

Every stochastic component of a scenario (topology draw, workload,
channel, prices, controller) gets its own child generator derived from
one root seed via :class:`numpy.random.SeedSequence`, so changing the
number of draws in one component never perturbs another -- a requirement
for clean algorithm comparisons on "the same" random instance.
"""

from __future__ import annotations

import numpy as np

from repro.types import Rng


class SeedBank:
    """Named independent RNG streams under one root seed.

    Example:
        >>> bank = SeedBank(42)
        >>> workload_rng = bank.rng("workload")
        >>> channel_rng = bank.rng("channel")

    Repeated requests for the same name return fresh generators over the
    *same* stream (identical draws), so two controllers constructed from
    the same bank see identical randomness.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def rng(self, name: str) -> Rng:
        """A generator for the stream *name* (deterministic in (seed, name))."""
        # Stable, platform-independent derivation: hash the name into
        # spawn-key integers via its UTF-8 bytes.
        key = [self._seed] + list(name.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence(key))

    def child(self, name: str) -> "SeedBank":
        """A nested bank, for per-run sub-streams."""
        derived = np.random.SeedSequence(
            [self._seed] + list(name.encode("utf-8"))
        ).generate_state(1)[0]
        return SeedBank(int(derived))
